//! Vendored stand-in for the `crossbeam` crate (API-compatible subset).
//!
//! Only [`channel`] is provided — an unbounded MPMC channel built on
//! `std::sync::{Mutex, Condvar}`. Unlike `std::sync::mpsc`, senders are
//! `Sync` (the cluster runtime shares `Arc<Vec<Sender<_>>>` across
//! worker threads) and disconnect tracking works from both ends.

#![forbid(unsafe_code)]

/// Unbounded MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; clonable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (MPMC) and movable across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // As upstream: the payload may not be Debug; elide it.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock().expect("channel poisoned");
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, remaining)
                    .expect("channel poisoned");
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return if self.disconnected() {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Non-blocking drain of one message, if present.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }

        /// Number of messages currently queued (as upstream: a
        /// point-in-time snapshot, immediately stale under concurrency).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty (see [`Receiver::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_fires_and_disconnect_is_detected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_are_shareable_by_reference() {
            let (tx, rx) = unbounded::<u32>();
            let txs = std::sync::Arc::new(vec![tx]);
            std::thread::scope(|s| {
                for i in 0..8u32 {
                    let txs = std::sync::Arc::clone(&txs);
                    s.spawn(move || txs[0].send(i).unwrap());
                }
            });
            let mut got: Vec<u32> = (0..8).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
