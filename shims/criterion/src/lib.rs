//! Vendored stand-in for `criterion` (API-compatible subset).
//!
//! The build environment has no network access, so this crate keeps the
//! workspace's `cargo bench` targets compiling and running: it measures
//! each benchmark with plain wall-clock timing (median of per-iteration
//! means over a few samples) and prints one line per benchmark. No
//! statistical analysis, plots or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name is the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, currently not printed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per second, decimal multiples.
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean per-iteration time of the best sample, filled by `iter`.
    best: Duration,
    samples: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One calibration call (also serves as warm-up).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim each sample at ~1/samples of the measurement budget.
        let per_sample = self.measurement_time / self.samples as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let mean = t.elapsed() / iters;
            best = best.min(mean);
        }
        self.best = best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget (accepted; warm-up here is the calibration call).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Record throughput for subsequent benchmarks (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best: Duration::ZERO,
            samples: self.sample_size.min(10),
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        println!(
            "{}/{:<40} {:>12.3} µs/iter",
            self.name,
            id.into_id(),
            b.best.as_secs_f64() * 1e6
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs > 0);
    }
}
