//! Vendored stand-in for `proptest` (API-compatible subset).
//!
//! The build environment has no network access, so this crate provides
//! the exact property-testing surface the workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`],
//! range/tuple/[`Just`]/[`any`] strategies, [`collection::vec`],
//! [`prop_oneof!`], [`prop_assert!`]/[`prop_assert_eq!`] and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike upstream there is no shrinking: a failing case panics with
//! its case number and the values involved (tests here already format
//! their inputs into assertion messages). Case generation is
//! deterministic — seeded from the test name and case index — so
//! failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng as _, SampleUniform, SeedableRng};

/// Deterministic per-case random source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Generator for `case` of the test named `name` — a pure function
    /// of both, so any failure is reproducible by rerunning the test.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }

    /// Uniform draw from a half-open range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.0.gen_range(range)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.gen::<u64>()
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy combinators that need a named home.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives; must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.bits() as u8
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.bits() as u16
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.bits() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.bits()
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.bits() as usize
    }
}

/// The whole-domain strategy for `T` — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive size bound for [`vec`]; build from a `usize`
    /// (exact length) or `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Assert inside a [`proptest!`] body; the panic carries the case tag.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            );
        }
    }};
}

/// Inequality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "prop_assert_ne failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            );
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @impl $config;
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @impl $crate::ProptestConfig::default();
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
    (
        @impl $config:expr;
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.0f64..1.5, n in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.5).contains(&f));
            prop_assert!(n < 5);
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (1u64..6, 1u64..4).prop_map(|(l, o)| (l * 10, o))) {
            prop_assert!((10..60).contains(&a) && a % 10 == 0, "a={a}");
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn vectors_hit_the_size_range(v in collection::vec(any::<bool>(), 1..300)) {
            prop_assert!((1..300).contains(&v.len()));
        }

        #[test]
        fn exact_size_vectors(v in collection::vec(any::<u32>(), 200)) {
            prop_assert_eq!(v.len(), 200);
        }

        #[test]
        fn oneof_draws_every_arm(x in prop_oneof![Just(1u32), Just(2u32), (5u32..7)]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.bits(), b.bits());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.bits(), c.bits());
    }
}
