//! Vendored stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no network access and no crates.io cache,
//! so the workspace ships this minimal, dependency-free implementation
//! of exactly the surface the repository uses: [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`rngs::SmallRng`],
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! All generators are the same deterministic xoshiro256++ core seeded
//! through SplitMix64 — runs remain bit-reproducible per seed, which is
//! the only property the workspace relies on ("we keep the random
//! generator seed of every experiment", paper §4). The value *streams*
//! differ from upstream `rand`; nothing in-tree pins upstream streams.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire-style rejection-free enough for simulation use:
                // widening multiply keeps bias below 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as Self)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Argument of [`Rng::gen_range`]: currently half-open ranges only.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the full domain (or `[0,1)` for floats).
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Draw a value of `T` from its standard distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — fast, tiny, and high quality; one core serves both
/// [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed through SplitMix64, as upstream `rand` does for `u64` seeds.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    macro_rules! named_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug, PartialEq, Eq)]
            pub struct $name(Xoshiro256PlusPlus);

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    $name(Xoshiro256PlusPlus::new(seed))
                }
            }

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }
        };
    }

    named_rng!(
        /// Deterministic general-purpose generator (upstream: ChaCha12).
        StdRng
    );
    named_rng!(
        /// Deterministic small/fast generator (upstream: xoshiro256++).
        SmallRng
    );
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` iff empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement (subset of `rand::seq::index`).
    pub mod index {
        use super::super::{Rng, RngCore};

        /// The sampled indices, iterable as `usize` in draw order.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Is the sample empty?
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates over a dense index table.
        ///
        /// # Panics
        /// Panics if `amount > length` (as upstream does).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} from {length} without replacement"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(8.0..90.0);
            assert!((8.0..90.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for amount in [0usize, 1, 7, 63, 64] {
            let idx = sample(&mut rng, 64, amount).into_vec();
            assert_eq!(idx.len(), amount);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), amount, "duplicates in {idx:?}");
            assert!(idx.iter().all(|&i| i < 64));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
