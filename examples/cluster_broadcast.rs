//! The same protocol on a "real" cluster: thread-per-rank runtime.
//!
//! The protocol state machines that the simulator drives under LogP
//! timing run unchanged on `ct-runtime`'s in-process cluster (the
//! stand-in for the paper's MPI prototype, §4.4). This example
//! benchmarks three variants OSU-style — native binomial, Corrected
//! Trees, and Corrected Trees with two emulated rank crashes — and
//! prints median wall-clock latencies.
//!
//! Run with: `cargo run --release --example cluster_broadcast`

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::TreeKind;
use corrected_trees::logp::LogP;
use corrected_trees::runtime::{harness, BenchConfig};

fn main() {
    let p = 64;
    let logp = LogP::PAPER;

    let native = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let corrected = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );

    println!("running OSU-style broadcast benchmarks on {p} worker threads…\n");
    println!(
        "{:<34} {:>11} {:>11} {:>11}",
        "variant", "median(µs)", "p25(µs)", "p75(µs)"
    );

    let fault_free = BenchConfig::new(p).with_iterations(5, 20);
    for (name, spec) in [
        ("binomial (no correction)", &native),
        ("corrected binomial d=2", &corrected),
    ] {
        let r = harness::run_bench(spec, logp, &fault_free).expect("bench");
        assert_eq!(r.incomplete, 0);
        println!(
            "{name:<34} {:>11.1} {:>11.1} {:>11.1}",
            r.median_us, r.p25_us, r.p75_us
        );
    }

    // Crash two ranks: the corrected variant still completes every
    // iteration; the plain tree would leave their subtrees unreached.
    let faulty = BenchConfig::new(p)
        .with_iterations(5, 20)
        .with_dead_ranks(&[9, 40]);
    let r = harness::run_bench(&corrected, logp, &faulty).expect("bench");
    assert_eq!(r.incomplete, 0, "correction must absorb the crashes");
    println!(
        "{:<34} {:>11.1} {:>11.1} {:>11.1}",
        "corrected binomial d=2 + 2 crashes", r.median_us, r.p25_us, r.p75_us
    );

    let r = harness::run_bench(&native, logp, &faulty.clone()).expect("bench");
    println!(
        "\nplain binomial with the same crashes missed {} iterations (no fault tolerance)",
        r.incomplete
    );
}
