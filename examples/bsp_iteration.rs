//! A bulk-synchronous-parallel application surviving node failures.
//!
//! The paper's motivation (§1): BSP programs broadcast in every
//! superstep, and one dead rank normally hangs or crashes the whole MPI
//! job. This example runs a BSP-style loop — one reliable broadcast per
//! superstep — while processes keep dying between supersteps, and shows
//! the collective completing for the survivors every time, with latency
//! and message cost barely moving.
//!
//! Run with: `cargo run --release --example bsp_iteration`

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::prelude::*;
use corrected_trees::sim::FaultPlan as Plan;

fn main() {
    let p: u32 = 4096;
    let logp = LogP::PAPER;
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );

    // Failures accumulate across supersteps: roughly 0.2% of the
    // machine dies per superstep (deterministic seeded choice).
    let mut dead: Vec<Rank> = Vec::new();
    println!("superstep  dead  colored-live  quiescence  msgs/process");
    for superstep in 0..10u64 {
        // New casualties this superstep.
        let fresh = Plan::random_count(p, 8, 1000 + superstep).expect("plan");
        for r in fresh.failed_ranks() {
            if !dead.contains(&r) {
                dead.push(r);
            }
        }
        let plan = Plan::from_ranks(p, &dead).expect("plan");
        let failed = plan.count();

        let outcome = Simulation::builder(p, logp)
            .faults(plan)
            .seed(superstep)
            .build()
            .run(&spec)
            .expect("valid configuration");

        assert!(
            outcome.all_live_colored(),
            "superstep {superstep}: broadcast must reach all survivors"
        );
        println!(
            "{superstep:>9}  {failed:>4}  {:>12}  {:>10}  {:>12.2}",
            p - failed - outcome.uncolored_live().len() as u32,
            outcome.quiescence,
            outcome.messages_per_process(),
        );
    }
    println!("\nall 10 supersteps completed despite accumulating failures");
}
