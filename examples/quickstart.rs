//! Quickstart: one reliable broadcast, end to end.
//!
//! Builds an interleaved binomial tree for 1024 processes, injects five
//! random fail-stop failures, runs the Corrected Tree broadcast
//! (overlapped optimized opportunistic correction, d = 4) in the LogP
//! simulator, and prints what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use corrected_trees::core::correction::CorrectionKind as Correction;
use corrected_trees::core::tree::Ordering;
use corrected_trees::prelude::*;

fn main() {
    let p = 1024;
    let logp = LogP::PAPER; // L = 2, o = 1 — the paper's parameters

    // 1. Pick a broadcast variant: interleaved binomial dissemination
    //    followed by optimized opportunistic correction.
    let spec = BroadcastSpec::corrected_tree(
        TreeKind::Binomial {
            order: Ordering::Interleaved,
        },
        Correction::OpportunisticOptimized { distance: 4 },
    );

    // 2. Kill five random processes (never the root) — fail-stop: they
    //    receive nothing, send nothing, and nobody is told.
    let faults = FaultPlan::random_count(p, 5, /* seed */ 42).expect("valid plan");
    println!(
        "failing ranks: {:?}",
        faults.failed_ranks().collect::<Vec<_>>()
    );

    // 3. Simulate one broadcast.
    let outcome = Simulation::builder(p, logp)
        .faults(faults)
        .seed(42)
        .build()
        .run(&spec)
        .expect("valid configuration");

    // 4. Despite the failures, every live process got the payload.
    assert!(outcome.all_live_colored());
    println!("protocol          : {}", outcome.label);
    println!("coloring latency  : {} steps", outcome.coloring_latency);
    println!("quiescence latency: {} steps", outcome.quiescence);
    println!(
        "messages          : {} total ({:.2} per process: {} tree + {} correction)",
        outcome.messages.total(),
        outcome.messages_per_process(),
        outcome.messages.tree,
        outcome.messages.correction,
    );
    println!(
        "colored by correction: {} processes",
        outcome.correction_colored()
    );

    // Compare with the same tree *without* correction: the orphaned
    // subtrees stay dark.
    let plain = BroadcastSpec::plain_tree(TreeKind::Binomial {
        order: Ordering::Interleaved,
    });
    let faults = FaultPlan::random_count(p, 5, 42).expect("valid plan");
    let unprotected = Simulation::builder(p, logp)
        .faults(faults)
        .seed(42)
        .build()
        .run(&plain)
        .expect("valid configuration");
    println!(
        "\nwithout correction the same failures leave {} live processes unreached",
        unprotected.uncolored_live().len()
    );
}
