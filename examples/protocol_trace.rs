//! Full event trace of one broadcast — a Figure 5 style timeline.
//!
//! Reproduces the paper's Figure 5 setting (Lamé tree, k = 3, P = 9,
//! L = o = 1, which makes the tree latency-optimal) and prints every
//! send/arrival/delivery plus an ASCII sender/receiver timeline. Then
//! repeats the run with a failure to show correction kicking in.
//!
//! Run with: `cargo run --release --example protocol_trace`

use corrected_trees::core::correction::CorrectionKind;
use corrected_trees::core::protocol::BroadcastSpec;
use corrected_trees::core::tree::{Ordering, TreeKind};
use corrected_trees::logp::LogP;
use corrected_trees::sim::{FaultPlan, Simulation};

fn main() {
    let p = 9;
    let logp = LogP::FIG5; // L = o = 1 ⇒ Lamé k=3 is optimal (Figure 5)
    let lame3 = TreeKind::Lame {
        k: 3,
        order: Ordering::Interleaved,
    };

    println!("=== Figure 5: fault-free Lamé k=3 dissemination, P=9 ===\n");
    let spec = BroadcastSpec::plain_tree(lame3);
    let (out, trace) = Simulation::builder(p, logp)
        .build()
        .run_traced(&spec)
        .expect("valid configuration");
    for e in &trace.events {
        println!("{e}");
    }
    println!("\nsender/receiver timeline (S = sending, R = receiving):");
    print!("{}", trace.ascii_timeline(p, logp.o()));
    println!("coloring latency: {} steps", out.coloring_latency);

    println!("\n=== same broadcast, rank 1 failed, checked correction ===\n");
    let spec = BroadcastSpec::corrected_tree_sync(lame3, CorrectionKind::Checked);
    let faults = FaultPlan::from_ranks(p, &[1]).expect("plan");
    let (out, trace) = Simulation::builder(p, logp)
        .faults(faults)
        .build()
        .run_traced(&spec)
        .expect("valid configuration");
    for e in &trace.events {
        println!("{e}");
    }
    assert!(out.all_live_colored());
    println!(
        "\nall live processes colored; {} were rescued by correction",
        out.correction_colored()
    );
    println!("quiescence: {} steps", out.quiescence);
}
