//! Fault-tolerant reduction: correction *before* dissemination.
//!
//! The paper's composition hint (§1) run forward: every process
//! replicates its contribution to `d` ring neighbors, then a
//! schedule-driven gather mirrors the dissemination tree toward the
//! root — no acknowledgments, no failure detector, and a dead inner
//! node no longer swallows its subtree's contributions.
//!
//! Run with: `cargo run --release --example reliable_reduce`

use corrected_trees::core::reduce;
use corrected_trees::core::tree::{Ordering, TreeKind};
use corrected_trees::logp::LogP;
use corrected_trees::sim::FaultPlan;

fn main() {
    let p = 1024u32;
    let logp = LogP::PAPER;
    let tree = TreeKind::BINOMIAL.build(p, &logp).expect("valid tree");

    // Kill 1% of the machine, including (statistically) inner nodes.
    let faults = FaultPlan::random_rate(p, 0.01, 7).expect("plan");
    println!(
        "failing ranks: {:?}",
        faults.failed_ranks().collect::<Vec<_>>()
    );

    println!("\nreplication d   lost contributions   messages   latency");
    for d in [0u32, 1, 2, 4] {
        let out = reduce::simulate(&tree, d, faults.mask(), &logp);
        println!(
            "{d:>13}   {:>18}   {:>8}   {:>7}",
            out.lost(faults.mask()).len(),
            out.messages(),
            out.latency,
        );
    }

    // The interleaving is what makes replication effective: on an
    // in-order tree the orphaned block's replicas land on other orphans.
    let in_order = TreeKind::Binomial {
        order: Ordering::InOrder,
    }
    .build(p, &logp)
    .expect("valid tree");
    let mut one_fault = vec![false; p as usize];
    one_fault[1] = true; // a root child: orphans a big subtree
    let io = reduce::simulate(&in_order, 2, &one_fault, &logp);
    let il = reduce::simulate(&tree, 2, &one_fault, &logp);
    println!(
        "\none dead root child, d=2: in-order loses {} contributions, interleaved loses {}",
        io.lost(&one_fault).len(),
        il.lost(&one_fault).len(),
    );
    assert_eq!(il.lost(&one_fault).len(), 0);
}
