//! Explore tree shapes, interleaving and failure gaps.
//!
//! Prints the four paper topologies for a small process count, verifies
//! Definition 1 on each, and shows how the same failure produces one
//! big ring gap under in-order numbering but scattered unit gaps under
//! interleaving — the crux of Figure 1.
//!
//! Run with: `cargo run --release --example tree_explorer`

use corrected_trees::core::tree::{interleaving, ring, stats, Ordering, Topology, TreeKind};
use corrected_trees::logp::LogP;

fn draw(kind: TreeKind, p: u32, logp: &LogP) {
    let tree = kind.build(p, logp).expect("valid");
    let s = stats::tree_stats(&tree);
    println!(
        "\n=== {kind}  (P={p}, height {}, leaves {}, max fan-out {}) ===",
        s.height, s.leaves, s.max_fanout
    );
    for r in 0..p {
        if !tree.children(r).is_empty() {
            println!("  {r:>3} → {:?}", tree.children(r));
        }
    }
    match interleaving::find_violation(&tree) {
        None => println!("  Definition 1: interleaved ✓"),
        Some(v) => println!(
            "  Definition 1: violated by pair {:?} in subtree {} (LCA {})",
            v.pair, v.subtree_root, v.lca
        ),
    }
}

fn gaps_after_failure(kind: TreeKind, p: u32, failed_rank: u32, logp: &LogP) {
    let tree = kind.build(p, logp).expect("valid");
    let mut failed = vec![false; p as usize];
    failed[failed_rank as usize] = true;
    let colored = ring::color_after_dissemination(&tree, &failed);
    let gaps = ring::gaps(&colored);
    println!(
        "  {kind}: rank {failed_rank} fails → {} gap(s), g_max = {}  {:?}",
        gaps.len(),
        ring::max_gap(&colored),
        gaps.iter().map(|g| (g.start, g.len)).collect::<Vec<_>>()
    );
}

fn main() {
    let logp = LogP::PAPER;

    for kind in [
        TreeKind::Binomial {
            order: Ordering::Interleaved,
        },
        TreeKind::Binomial {
            order: Ordering::InOrder,
        },
        TreeKind::Kary {
            k: 2,
            order: Ordering::Interleaved,
        },
        TreeKind::Lame {
            k: 3,
            order: Ordering::Interleaved,
        },
        TreeKind::Optimal {
            order: Ordering::Interleaved,
        },
    ] {
        draw(kind, 16, &logp);
    }

    println!("\n=== Figure 1: one failure, two numbering schemes (P=64) ===");
    // Fail an inner node near the root: rank 1 heads a big subtree.
    gaps_after_failure(
        TreeKind::Binomial {
            order: Ordering::InOrder,
        },
        64,
        1,
        &logp,
    );
    gaps_after_failure(
        TreeKind::Binomial {
            order: Ordering::Interleaved,
        },
        64,
        1,
        &logp,
    );
    println!(
        "\nthe interleaved tree turns one subtree-sized gap into scattered\n\
         unit gaps, which is exactly what keeps ring correction cheap"
    );
}
