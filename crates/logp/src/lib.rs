//! # ct-logp — the LogP machine model
//!
//! Shared primitives for the Corrected Trees reproduction: process
//! [`Rank`]s, discrete [`Time`] steps, and the [`LogP`] parameter set of
//! Culler et al. (PPoPP'93) as specialized by the paper (§2.2):
//!
//! * `P` processes communicate over a reliable interconnect that neither
//!   loses nor reorders messages;
//! * every transmission costs a send overhead `o` at the sender and a
//!   receive overhead `o` at the receiver;
//! * the wire adds a uniform latency `L`;
//! * the gap `g` satisfies `g ≤ o` in the small-message regime and is
//!   therefore ignored by all protocols (a process can inject messages
//!   back-to-back every `o` steps);
//! * a process can overlap one send with one receive, but processes at
//!   most one of each at a time.
//!
//! All quantities are positive integers (`{o, L} ⊂ ℤ⁺`), so simulation is
//! exact and bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;
pub mod rank;
pub mod time;

pub use params::LogP;
pub use rank::{ring_add, ring_distance, ring_gap_ccw, ring_gap_cw, ring_sub, Rank};
pub use time::Time;
