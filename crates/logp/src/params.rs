//! LogP parameter sets.
//!
//! The paper's communication model (§2.2) is LogP restricted to the
//! small-message regime: `g ≤ o` always holds and `g` is effectively
//! ignored — a process can process messages in direct succession, one
//! send (and, overlapped, one receive) every `o` steps.

use core::fmt;
use std::str::FromStr;

use crate::time::Time;

/// The LogP parameters `(L, o, g)` used by analysis, simulation and the
/// tree builders. `P` (the process count) is carried separately by each
/// topology/experiment, matching the paper's presentation.
///
/// Invariants enforced by [`LogP::new`]:
/// * `L ≥ 1`, `o ≥ 1` (the paper assumes `{o, L} ∈ ℤ⁺`),
/// * `1 ≤ g ≤ o` (small-message assumption, §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LogP {
    l: u64,
    o: u64,
    g: u64,
}

/// Error returned by [`LogP::new`] / [`LogP::from_str`] for parameter
/// combinations outside the paper's model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogPError {
    /// `L` must be a positive integer.
    ZeroLatency,
    /// `o` must be a positive integer.
    ZeroOverhead,
    /// The small-message assumption requires `1 ≤ g ≤ o`.
    GapOutOfRange {
        /// The offending gap value.
        g: u64,
        /// The overhead it must not exceed.
        o: u64,
    },
    /// A `"L=..,o=..[,g=..]"` string could not be parsed.
    Parse(String),
}

impl fmt::Display for LogPError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogPError::ZeroLatency => write!(f, "LogP latency L must be ≥ 1"),
            LogPError::ZeroOverhead => write!(f, "LogP overhead o must be ≥ 1"),
            LogPError::GapOutOfRange { g, o } => {
                write!(
                    f,
                    "LogP gap g={g} violates small-message assumption 1 ≤ g ≤ o={o}"
                )
            }
            LogPError::Parse(s) => write!(f, "cannot parse LogP parameters from {s:?}"),
        }
    }
}

impl std::error::Error for LogPError {}

impl LogP {
    /// The configuration used throughout the paper's evaluation (§4):
    /// `L = 2, o = 1`, "which corresponds to the range of LogP parameters
    /// measured on real systems".
    pub const PAPER: LogP = LogP { l: 2, o: 1, g: 1 };

    /// The `L = o = 1` toy system of Figure 5, which makes the order-3
    /// Lamé tree latency-optimal (`2o + L = 3 = k`).
    pub const FIG5: LogP = LogP { l: 1, o: 1, g: 1 };

    /// Construct a validated parameter set with `g = min(o, g)` supplied
    /// explicitly.
    pub fn new(l: u64, o: u64, g: u64) -> Result<Self, LogPError> {
        if l == 0 {
            return Err(LogPError::ZeroLatency);
        }
        if o == 0 {
            return Err(LogPError::ZeroOverhead);
        }
        if g == 0 || g > o {
            return Err(LogPError::GapOutOfRange { g, o });
        }
        Ok(LogP { l, o, g })
    }

    /// Construct with the gap pinned to 1 step (its value is irrelevant
    /// under the small-message assumption as long as `g ≤ o`).
    pub fn with_lo(l: u64, o: u64) -> Result<Self, LogPError> {
        Self::new(l, o, 1)
    }

    /// Wire latency `L`.
    #[inline]
    pub const fn l(&self) -> u64 {
        self.l
    }

    /// Per-message CPU overhead `o` (paid on both sides).
    #[inline]
    pub const fn o(&self) -> u64 {
        self.o
    }

    /// Inter-message gap `g` (`≤ o`, ignored by the protocols).
    #[inline]
    pub const fn g(&self) -> u64 {
        self.g
    }

    /// Wire latency as a [`Time`] duration.
    #[inline]
    pub const fn latency(&self) -> Time {
        Time::new(self.l)
    }

    /// Overhead as a [`Time`] duration.
    #[inline]
    pub const fn overhead(&self) -> Time {
        Time::new(self.o)
    }

    /// End-to-end transit time of one message, send-start to
    /// processing-complete: `2o + L`.
    #[inline]
    pub const fn transit(&self) -> Time {
        Time::new(2 * self.o + self.l)
    }

    /// Same as [`LogP::transit`], as a raw step count. This is the `k`
    /// for which an order-`k` Lamé tree is latency-optimal (§3.2.3).
    #[inline]
    pub const fn transit_steps(&self) -> u64 {
        2 * self.o + self.l
    }

    /// `⌊L/o⌋`, the quantity appearing in Lemma 2 and Corollary 1.
    #[inline]
    pub const fn l_over_o(&self) -> u64 {
        self.l / self.o
    }
}

impl Default for LogP {
    fn default() -> Self {
        LogP::PAPER
    }
}

impl fmt::Display for LogP {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L={},o={},g={}", self.l, self.o, self.g)
    }
}

impl FromStr for LogP {
    type Err = LogPError;

    /// Parses `"L=2,o=1"` or `"L=2,o=1,g=1"` (keys case-insensitive, any
    /// order, whitespace tolerated).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut l = None;
        let mut o = None;
        let mut g = None;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| LogPError::Parse(s.to_owned()))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| LogPError::Parse(s.to_owned()))?;
            match key.trim().to_ascii_lowercase().as_str() {
                "l" => l = Some(value),
                "o" => o = Some(value),
                "g" => g = Some(value),
                _ => return Err(LogPError::Parse(s.to_owned())),
            }
        }
        let l = l.ok_or_else(|| LogPError::Parse(s.to_owned()))?;
        let o = o.ok_or_else(|| LogPError::Parse(s.to_owned()))?;
        LogP::new(l, o, g.unwrap_or(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_evaluation_setup() {
        let p = LogP::PAPER;
        assert_eq!(p.l(), 2);
        assert_eq!(p.o(), 1);
        assert_eq!(p.transit_steps(), 4);
        assert_eq!(p.l_over_o(), 2);
    }

    #[test]
    fn fig5_preset_is_lame3_optimal() {
        // 2o + L = 3, the k of Figure 5's Lamé tree.
        assert_eq!(LogP::FIG5.transit_steps(), 3);
    }

    #[test]
    fn validation_rejects_degenerate_params() {
        assert_eq!(LogP::new(0, 1, 1), Err(LogPError::ZeroLatency));
        assert_eq!(LogP::new(1, 0, 1), Err(LogPError::ZeroOverhead));
        assert_eq!(
            LogP::new(1, 2, 3),
            Err(LogPError::GapOutOfRange { g: 3, o: 2 })
        );
        assert_eq!(
            LogP::new(1, 2, 0),
            Err(LogPError::GapOutOfRange { g: 0, o: 2 })
        );
    }

    #[test]
    fn accepts_g_up_to_o() {
        let p = LogP::new(4, 3, 3).unwrap();
        assert_eq!(p.g(), 3);
        assert_eq!(p.transit_steps(), 10);
    }

    #[test]
    fn parse_roundtrip() {
        let p: LogP = "L=2,o=1".parse().unwrap();
        assert_eq!(p, LogP::PAPER);
        let p: LogP = " o = 3 , g = 2 , L = 5 ".parse().unwrap();
        assert_eq!((p.l(), p.o(), p.g()), (5, 3, 2));
        let shown = p.to_string();
        let back: LogP = shown.parse().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<LogP>().is_err());
        assert!("L=2".parse::<LogP>().is_err());
        assert!("L=2,o=x".parse::<LogP>().is_err());
        assert!("L=2,o=1,q=3".parse::<LogP>().is_err());
        assert!("L=0,o=1".parse::<LogP>().is_err());
    }

    #[test]
    fn transit_time_is_two_o_plus_l() {
        for l in 1..6u64 {
            for o in 1..6u64 {
                let p = LogP::new(l, o, 1).unwrap();
                assert_eq!(p.transit(), Time::new(2 * o + l));
            }
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LogP::default(), LogP::PAPER);
    }
}
