//! Discrete simulation time.
//!
//! The paper assumes `{o, L} ∈ ℤ⁺`, so all event times are exact
//! non-negative integers. [`Time`] is a thin newtype over `u64` with
//! saturating arithmetic and a [`Time::NEVER`] sentinel used for "this
//! event is not scheduled".

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A point in (or duration of) discrete simulated time, in LogP steps.
///
/// `Time` is totally ordered and supports saturating `+`, `-` and `*`
/// with both `Time` and plain `u64` step counts. Subtraction saturates at
/// zero, addition at [`Time::NEVER`]; `NEVER` is absorbing for addition,
/// which makes "schedule at `deadline + o`" safe even for unscheduled
/// deadlines.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero: the instant the root starts sending the first message.
    pub const ZERO: Time = Time(0);
    /// One LogP step.
    pub const STEP: Time = Time(1);
    /// Sentinel for "never happens"; absorbing under addition.
    pub const NEVER: Time = Time(u64::MAX);

    /// Construct a time from a raw step count.
    #[inline]
    pub const fn new(steps: u64) -> Self {
        Time(steps)
    }

    /// The raw step count.
    #[inline]
    pub const fn steps(self) -> u64 {
        self.0
    }

    /// `true` iff this is the [`Time::NEVER`] sentinel.
    #[inline]
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating addition of a raw step count.
    #[inline]
    pub const fn plus(self, steps: u64) -> Self {
        Time(self.0.saturating_add(steps))
    }

    /// Saturating subtraction of a raw step count (floors at zero).
    #[inline]
    pub const fn minus(self, steps: u64) -> Self {
        Time(self.0.saturating_sub(steps))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times (`NEVER` loses against anything).
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Duration between two points, `self - earlier`, saturating at zero.
    #[inline]
    pub const fn since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "Time(NEVER)")
        } else {
            write!(f, "Time({})", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `f.pad` honors width/alignment requested by the caller.
        if self.is_never() {
            f.pad("∞")
        } else {
            f.pad(&self.0.to_string())
        }
    }
}

impl From<u64> for Time {
    fn from(steps: u64) -> Self {
        Time(steps)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: u64) -> Time {
        self.plus(rhs)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<u64> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: u64) -> Time {
        self.minus(rhs)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_step() {
        assert_eq!(Time::ZERO.steps(), 0);
        assert_eq!(Time::STEP.steps(), 1);
        assert_eq!(Time::ZERO + Time::STEP, Time::new(1));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::new(3) < Time::new(5));
        assert!(Time::NEVER > Time::new(u64::MAX - 1));
        assert_eq!(Time::new(7).max(Time::new(3)), Time::new(7));
        assert_eq!(Time::new(7).min(Time::new(3)), Time::new(3));
    }

    #[test]
    fn never_is_absorbing_for_add() {
        assert_eq!(Time::NEVER + 5, Time::NEVER);
        assert_eq!(Time::NEVER + Time::new(123), Time::NEVER);
        assert!(Time::NEVER.is_never());
        assert!(!(Time::ZERO).is_never());
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        assert_eq!(Time::new(3) - 10u64, Time::ZERO);
        assert_eq!(Time::new(10) - Time::new(3), Time::new(7));
        assert_eq!(Time::new(3).since(Time::new(10)), Time::ZERO);
        assert_eq!(Time::new(10).since(Time::new(4)), Time::new(6));
    }

    #[test]
    fn multiplication_scales_steps() {
        assert_eq!(Time::new(3) * 4, Time::new(12));
        assert_eq!(Time::NEVER * 2, Time::NEVER);
        let zero_scale = 0u64;
        assert_eq!(Time::new(5) * zero_scale, Time::ZERO);
    }

    #[test]
    fn assign_ops() {
        let mut t = Time::new(2);
        t += 3u64;
        assert_eq!(t, Time::new(5));
        t += Time::new(1);
        assert_eq!(t, Time::new(6));
        t -= Time::new(2);
        assert_eq!(t, Time::new(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::new(42).to_string(), "42");
        assert_eq!(Time::NEVER.to_string(), "∞");
        assert_eq!(format!("{:?}", Time::NEVER), "Time(NEVER)");
        assert_eq!(format!("{:?}", Time::new(2)), "Time(2)");
    }
}
