//! Process ranks and ring geometry.
//!
//! A broadcast involves `P` processes with ranks `0, …, P-1`; the root is
//! always rank 0 (§2). The correction phase arranges all ranks on a
//! *linear ring* in rank order, with rank `P-1` adjacent to rank 0
//! (§3.1). The helpers here compute directed and undirected distances on
//! that ring; all tree-to-ring mappings in `ct-core` are expressed with
//! them.

/// A process rank, `0 ≤ rank < P`.
///
/// `u32` comfortably covers the paper's largest experiment (`P = 2¹⁹`)
/// while keeping per-process bookkeeping compact at 64K+ processes.
pub type Rank = u32;

/// Clockwise (ascending-rank) distance from `from` to `to` on a ring of
/// `p` processes: the number of hops walking `from → from+1 → …` until
/// reaching `to`, wrapping at `p`.
///
/// # Panics
/// Panics if `p == 0` or either rank is out of range (debug builds).
#[inline]
pub fn ring_gap_cw(from: Rank, to: Rank, p: u32) -> u32 {
    debug_assert!(p > 0 && from < p && to < p);
    if to >= from {
        to - from
    } else {
        p - from + to
    }
}

/// Counter-clockwise (descending-rank) distance from `from` to `to`.
#[inline]
pub fn ring_gap_ccw(from: Rank, to: Rank, p: u32) -> u32 {
    debug_assert!(p > 0 && from < p && to < p);
    ring_gap_cw(to, from, p)
}

/// Undirected ring distance: `min(cw, ccw)`.
#[inline]
pub fn ring_distance(a: Rank, b: Rank, p: u32) -> u32 {
    let cw = ring_gap_cw(a, b, p);
    cw.min(p - cw)
}

/// The rank `steps` positions clockwise (ascending) from `r` on a ring of
/// `p` processes.
#[inline]
pub fn ring_add(r: Rank, steps: u32, p: u32) -> Rank {
    debug_assert!(p > 0 && r < p);
    (((r as u64) + (steps as u64)) % (p as u64)) as Rank
}

/// The rank `steps` positions counter-clockwise (descending) from `r`.
#[inline]
pub fn ring_sub(r: Rank, steps: u32, p: u32) -> Rank {
    debug_assert!(p > 0 && r < p);
    let steps = (steps as u64) % (p as u64);
    let r = r as u64;
    let p = p as u64;
    ((r + p - steps) % p) as Rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cw_gap_wraps() {
        assert_eq!(ring_gap_cw(0, 3, 8), 3);
        assert_eq!(ring_gap_cw(6, 2, 8), 4);
        assert_eq!(ring_gap_cw(5, 5, 8), 0);
        assert_eq!(ring_gap_cw(7, 0, 8), 1);
    }

    #[test]
    fn ccw_gap_is_reverse_cw() {
        for p in [1u32, 2, 3, 8, 13] {
            for a in 0..p {
                for b in 0..p {
                    assert_eq!(ring_gap_ccw(a, b, p), ring_gap_cw(b, a, p));
                }
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        for p in [1u32, 2, 5, 16] {
            for a in 0..p {
                for b in 0..p {
                    let d = ring_distance(a, b, p);
                    assert_eq!(d, ring_distance(b, a, p));
                    assert!(d <= p / 2);
                    if a == b {
                        assert_eq!(d, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn ring_add_sub_roundtrip() {
        for p in [1u32, 2, 7, 64] {
            for r in 0..p {
                for s in 0..(2 * p + 1) {
                    let fwd = ring_add(r, s, p);
                    assert!(fwd < p);
                    assert_eq!(ring_sub(fwd, s, p), r);
                }
            }
        }
    }

    #[test]
    fn ring_add_large_steps_no_overflow() {
        // (MAX-1) + MAX ≡ MAX-1 (mod MAX): adding a full lap is a no-op.
        assert_eq!(ring_add(u32::MAX - 1, u32::MAX, u32::MAX), u32::MAX - 1);
        assert_eq!(ring_sub(0, u32::MAX, u32::MAX), 0);
    }
}
