//! Topic-multiplexed concurrent broadcasts over one worker pool.
//!
//! A [`TopicTable`] names a set of independent broadcast topics — each
//! its own [`BroadcastSpec`] (tree shape, root, correction), failure
//! mask and seed, resolved through the same topology cache single
//! broadcasts use. [`Cluster::run_pubsub`] drives `rounds` broadcasts
//! of every topic with up to `k` of them in flight at once, round-robin
//! admitted (round-major, topic-minor) so no topic starves.
//!
//! Scheduling stays rank-granular: one quantum drains a rank's mailbox
//! once and serves *all* of its installed iterations, so batch
//! claiming, the lost-wakeup recheck and the bounded-mailbox
//! backpressure story are exactly those of single-broadcast mode —
//! multiplexing adds per-iteration state, not new scheduler paths. The
//! win is pipelining: a corrected-tree broadcast spends most of its
//! wall-clock waiting (correction pacing, synchronized-start barriers),
//! and concurrent topics fill those gaps with each other's work.
//!
//! ## Completion is quiescence, not coloring
//!
//! A single broadcast tears down when every live rank is colored,
//! truncating whatever the correction machines were still doing — fine
//! when the iteration owns the cluster, fatal for exact message
//! accounting under multiplexing. Here a broadcast retires only at
//! *quiescence*: every live rank colored, every protocol machine
//! reported [`ct_core::protocol::SendPoll::Done`], and every message
//! sent also consumed (delivered or dead-dropped — nothing in flight).
//! Fault-free checked-correction topics therefore report exactly the
//! `(P-1) + M·P` total of Corollary 1 regardless of interleaving.
//! Topics whose machines never report `Done` (failure-proof gossip
//! correction idles forever) only retire via the per-broadcast
//! watchdog deadline; use checked correction for pub/sub workloads.
//!
//! [`BroadcastOutcome::latency`] is admission → last live rank colored
//! (the consumer-visible metric); retirement happens later, at
//! quiescence, without extending the reported latency.

use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use ct_core::protocol::{BroadcastSpec, BuildCtx, ProtocolFactory};
use ct_logp::{Rank, Time};
use ct_obs::event::phases;
use ct_obs::flight::{FlightKind as Fk, NO_RANK};
use ct_obs::{Event as ObsEvent, EventKind as ObsEventKind, EventSink, NullSink};

use crate::cluster::{Cluster, ClusterError, CoordMsg, IterState};

/// One broadcast topic: a protocol spec plus the failure mask and seed
/// its broadcasts run under.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Display label (campaign cell name, monitor stream tag).
    pub label: String,
    /// The protocol to broadcast (tree, root, correction, start mode).
    pub spec: BroadcastSpec,
    /// Per-rank crash mask, length P.
    pub dead: Vec<bool>,
    /// Base build seed; round `r` builds with `seed + r` so repeated
    /// rounds of a shuffled topic use distinct permutations while a
    /// solo re-run of `(topic, round)` stays reproducible.
    pub seed: u64,
}

impl Topic {
    /// A fault-free topic of `p` ranks.
    pub fn new(label: impl Into<String>, spec: BroadcastSpec, p: u32, seed: u64) -> Topic {
        Topic {
            label: label.into(),
            spec,
            dead: vec![false; p as usize],
            seed,
        }
    }

    /// Replace the failure mask.
    pub fn with_dead(mut self, dead: Vec<bool>) -> Topic {
        self.dead = dead;
        self
    }
}

/// The set of topics a pub/sub run multiplexes.
#[derive(Clone, Debug, Default)]
pub struct TopicTable {
    topics: Vec<Topic>,
}

impl TopicTable {
    /// An empty table.
    pub fn new() -> TopicTable {
        TopicTable::default()
    }

    /// Append a topic; its index is the `topic` field of every
    /// [`BroadcastOutcome`] it produces.
    pub fn push(&mut self, topic: Topic) {
        self.topics.push(topic);
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The topics, in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }

    /// Topic at `index`.
    pub fn get(&self, index: usize) -> Option<&Topic> {
        self.topics.get(index)
    }
}

/// Tunables for [`Cluster::run_pubsub`].
#[derive(Clone, Copy, Debug)]
pub struct PubsubOptions {
    /// Maximum broadcasts in flight at once (≥ 1).
    pub k: usize,
    /// Broadcast rounds per topic (≥ 1); the run performs
    /// `rounds × topics` broadcasts in total.
    pub rounds: usize,
}

impl Default for PubsubOptions {
    fn default() -> PubsubOptions {
        PubsubOptions { k: 4, rounds: 1 }
    }
}

/// Result of one broadcast of one topic within a pub/sub run.
#[derive(Clone, Debug)]
pub struct BroadcastOutcome {
    /// Index into the [`TopicTable`].
    pub topic: usize,
    /// Round number (0-based).
    pub round: usize,
    /// The broadcast id its messages and events carry.
    pub id: u64,
    /// Admission → last live rank colored. Equal to the watchdog
    /// timeout when the broadcast never fully colored.
    pub latency: Duration,
    /// Total messages sent; exact (not truncated) when `completed`.
    pub messages: u64,
    /// Whether the broadcast reached quiescence before its deadline.
    pub completed: bool,
    /// Live ranks never colored (empty when fully colored).
    pub uncolored: Vec<Rank>,
}

/// Result of a whole pub/sub run.
#[derive(Clone, Debug)]
pub struct PubsubReport {
    /// One outcome per admitted broadcast, in admission order.
    pub outcomes: Vec<BroadcastOutcome>,
    /// Wall-clock time from first admission to last retirement.
    pub elapsed: Duration,
}

impl PubsubReport {
    /// Did every broadcast reach quiescence?
    pub fn completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed)
    }

    /// Aggregate throughput: broadcasts retired per wall-clock second.
    pub fn broadcasts_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / secs
    }
}

/// Coordinator-side state of one in-flight broadcast.
struct Active {
    topic: usize,
    round: usize,
    id: u64,
    live: u32,
    colored: Vec<bool>,
    colored_count: u32,
    /// Live ranks whose protocol machine reported `Done`.
    done: u32,
    /// Messages pushed on behalf of this broadcast.
    sent: u64,
    /// Messages taken off mailboxes (delivered or dead-dropped).
    consumed: u64,
    epoch: Instant,
    deadline: Instant,
    /// Set the moment `colored_count` reached `live`.
    latency: Option<Duration>,
    record: bool,
}

impl Active {
    fn quiescent(&self) -> bool {
        self.colored_count == self.live && self.done == self.live && self.sent == self.consumed
    }
}

impl Cluster {
    /// Run `opts.rounds` broadcasts of every topic in `table`, up to
    /// `opts.k` in flight at once over the shared worker pool. Topics
    /// are admitted round-robin (round-major, topic-minor) as slots
    /// free up; each broadcast gets the cluster's watchdog timeout from
    /// its own admission. See the module docs for the quiescence-based
    /// completion rule.
    pub fn run_pubsub(
        &mut self,
        table: &TopicTable,
        opts: &PubsubOptions,
    ) -> Result<PubsubReport, ClusterError> {
        let mut sinks: Vec<NullSink> = table.iter().map(|_| NullSink).collect();
        let mut refs: Vec<&mut dyn EventSink> =
            sinks.iter_mut().map(|s| s as &mut dyn EventSink).collect();
        self.run_pubsub_observed(table, opts, &mut refs)
    }

    /// Like [`Cluster::run_pubsub`], additionally streaming each
    /// topic's observability events into its sink (`sinks[i]` receives
    /// topic `i`; lengths must match). Every event is stamped with its
    /// broadcast id ([`ObsEvent::with_bcast`]) and each broadcast is
    /// wrapped in its own `broadcast` phase span, so one topic's stream
    /// filtered by id replays exactly like a solo run's.
    pub fn run_pubsub_observed(
        &mut self,
        table: &TopicTable,
        opts: &PubsubOptions,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<PubsubReport, ClusterError> {
        let result = self.run_pubsub_inner(table, opts, sinks);
        if let Err(ClusterError::WorkerPanicked) = &result {
            let _ = self.capture_postmortem("worker_panic", None);
        }
        result
    }

    fn run_pubsub_inner(
        &mut self,
        table: &TopicTable,
        opts: &PubsubOptions,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<PubsubReport, ClusterError> {
        assert!(!table.is_empty(), "pub/sub needs at least one topic");
        assert_eq!(
            sinks.len(),
            table.len(),
            "one event sink per topic (use NullSink for unobserved topics)"
        );
        for topic in table.iter() {
            assert_eq!(topic.dead.len(), self.p as usize);
        }
        let k = opts.k.max(1);
        let rounds = opts.rounds.max(1);
        let total = rounds * table.len();
        let started = Instant::now();

        let mut admitted = 0usize;
        let mut active: Vec<Active> = Vec::with_capacity(k);
        let mut outcomes: Vec<BroadcastOutcome> = Vec::with_capacity(total);
        while outcomes.len() < total {
            // Refill the in-flight window (round-major, topic-minor).
            while active.len() < k && admitted < total {
                let topic = admitted % table.len();
                let round = admitted / table.len();
                admitted += 1;
                let record = sinks[topic].enabled();
                active.push(self.admit(&table.topics[topic], topic, round, record)?);
            }
            self.publish_gauges(&active);

            // Retire everything retirable before blocking: a broadcast
            // can already be quiescent at admission (zero live ranks)
            // or past its deadline.
            let now = Instant::now();
            let mut retired_any = false;
            let mut i = 0;
            while i < active.len() {
                let quiescent = active[i].quiescent();
                if quiescent || now >= active[i].deadline {
                    let a = active.remove(i);
                    let sink = &mut *sinks[a.topic];
                    outcomes.push(self.retire(a, quiescent, table, sink)?);
                    retired_any = true;
                } else {
                    i += 1;
                }
            }
            if retired_any {
                // Freed slots: admit before waiting on the channel.
                continue;
            }
            if active.is_empty() {
                break; // defensive: nothing in flight, nothing admissible
            }

            let earliest = active.iter().map(|a| a.deadline).min().expect("non-empty");
            let remaining = earliest.saturating_duration_since(Instant::now());
            match self.from_workers.recv_timeout(remaining) {
                Ok(CoordMsg::Colored { id, ranks }) => {
                    if let Some(a) = active.iter_mut().find(|a| a.id == id) {
                        for rank in ranks {
                            if !a.colored[rank as usize] {
                                a.colored[rank as usize] = true;
                                a.colored_count += 1;
                            }
                        }
                        if a.colored_count == a.live && a.latency.is_none() {
                            a.latency = Some(a.epoch.elapsed());
                        }
                    }
                }
                Ok(CoordMsg::Progress {
                    id,
                    sent,
                    consumed,
                    done,
                }) => {
                    if let Some(a) = active.iter_mut().find(|a| a.id == id) {
                        a.sent += sent;
                        a.consumed += consumed;
                        a.done += done;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::WorkerPanicked),
            }
        }

        // Everything retired: drop leftover wake-ups (a straggler timer
        // of an expired broadcast only costs a no-op quantum) and
        // retire the gauges.
        self.shared
            .sched
            .lock()
            .map_err(|_| ClusterError::WorkerPanicked)?
            .timers
            .clear();
        if let Some(t) = &self.shared.telemetry {
            t.set_iter_progress(0, 0);
            t.set_iter_active(0);
        }
        // Admission order, not retirement order: stable for reports.
        outcomes.sort_by_key(|o| o.id);
        Ok(PubsubReport {
            outcomes,
            elapsed: started.elapsed(),
        })
    }

    /// Install one broadcast of `topic` on every rank and make them
    /// runnable — the pub/sub counterpart of the single-broadcast
    /// install loop, minus the exclusivity: other iterations keep
    /// running while this one is pushed.
    fn admit(
        &mut self,
        topic: &Topic,
        tix: usize,
        round: usize,
        record: bool,
    ) -> Result<Active, ClusterError> {
        let id = self.next_id;
        self.next_id += 1;
        let ctx = BuildCtx {
            p: self.p,
            logp: self.logp,
            seed: topic.seed.wrapping_add(round as u64),
        };
        topic.spec.build_into(&ctx, &mut self.procs)?;
        assert_eq!(self.procs.len(), self.p as usize);
        let live: u32 = topic.dead.iter().filter(|&&d| !d).count() as u32;
        let epoch = Instant::now();
        let epoch_us = epoch.duration_since(self.shared.base).as_micros() as u64;
        for rank in (0..self.p).rev() {
            let process = self.procs.pop().expect("one per rank");
            let mut st = self.shared.ranks[rank as usize]
                .state
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            debug_assert!(st.last_installed < id, "installs must be id-ordered");
            st.iters.push(IterState {
                id,
                process,
                dead: topic.dead[rank as usize],
                epoch,
                epoch_us,
                record,
                sent: 0,
                notified: false,
                done_notified: false,
                events: Vec::new(),
            });
            st.last_installed = id;
        }
        // Unconditional enqueue-all, for the same reason as the
        // single-broadcast install — and doubly so here: it is also
        // what guarantees a quantum that re-examines messages parked in
        // `pending` by ranks that outran this install.
        {
            let mut sched = self
                .shared
                .sched
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            for rank in 0..self.p {
                self.shared.ranks[rank as usize]
                    .scheduled
                    .store(true, std::sync::atomic::Ordering::SeqCst);
                sched.runq.push_back(rank);
            }
        }
        self.shared.sched_cv.notify_all();
        if let Some(f) = self.shared.flight.as_deref() {
            f.record(self.shared.workers, Fk::IterStart, NO_RANK, id, 0, epoch_us);
        }
        Ok(Active {
            topic: tix,
            round,
            id,
            live,
            colored: vec![false; self.p as usize],
            colored_count: 0,
            done: 0,
            sent: 0,
            consumed: 0,
            epoch,
            deadline: epoch + self.timeout,
            latency: None,
            record,
        })
    }

    /// Remove broadcast `a` from every rank, harvest its message count
    /// and events, and emit its event stream (sorted, phase-wrapped,
    /// id-stamped) into the topic's sink.
    fn retire(
        &mut self,
        a: Active,
        quiescent: bool,
        table: &TopicTable,
        sink: &mut dyn EventSink,
    ) -> Result<BroadcastOutcome, ClusterError> {
        let mut messages = 0u64;
        let mut recorded: Vec<ObsEvent> = Vec::new();
        for rank in 0..self.p {
            let cell = &self.shared.ranks[rank as usize];
            let mut st = cell
                .state
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            let pos = st
                .iters
                .iter()
                .position(|i| i.id == a.id)
                .expect("iteration installed");
            let mut iter = st.iters.swap_remove(pos);
            st.pending.retain(|m| m.id != a.id);
            drop(st);
            messages += iter.sent;
            recorded.append(&mut iter.events);
            if !quiescent {
                // An expired broadcast may still have messages queued;
                // a quiescent one by definition has none. Purge by id —
                // concurrent topics' traffic must survive.
                cell.mailbox
                    .lock()
                    .map_err(|_| ClusterError::WorkerPanicked)?
                    .purge_id(a.id);
            }
        }
        let latency = a.latency.unwrap_or(self.timeout);
        if let Some(f) = self.shared.flight.as_deref() {
            f.record(
                self.shared.workers,
                Fk::IterEnd,
                NO_RANK,
                u64::from(quiescent),
                latency.as_micros() as u64,
                self.shared.now_us(),
            );
        }
        if a.record {
            // Same deterministic order as single-broadcast harvests:
            // stable (time, order_class) sort restores
            // cause-before-effect at equal timestamps.
            recorded.sort_by_key(|e| (e.time, e.kind.order_class()));
            let end = recorded.last().map_or(Time::ZERO, |e| e.time);
            sink.emit(
                &ObsEvent::wall(
                    Time::ZERO,
                    0,
                    ObsEventKind::PhaseBegin {
                        name: phases::BROADCAST.into(),
                    },
                )
                .with_bcast(a.id),
            );
            for e in recorded {
                sink.emit(&e.with_bcast(a.id));
            }
            sink.emit(
                &ObsEvent::wall(
                    end,
                    end.steps(),
                    ObsEventKind::PhaseEnd {
                        name: phases::BROADCAST.into(),
                    },
                )
                .with_bcast(a.id),
            );
        }
        let uncolored = a
            .colored
            .iter()
            .zip(&table.topics[a.topic].dead)
            .enumerate()
            .filter_map(|(r, (&c, &d))| (!c && !d).then_some(r as Rank))
            .collect();
        Ok(BroadcastOutcome {
            topic: a.topic,
            round: a.round,
            id: a.id,
            latency,
            messages,
            completed: quiescent,
            uncolored,
        })
    }

    /// Publish the concurrency-aware iteration gauges: `iter.active` is
    /// the in-flight broadcast count, `iter.live`/`iter.colored` sum
    /// over them (the shape the `stall_precursor` health rule expects).
    fn publish_gauges(&self, active: &[Active]) {
        if let Some(t) = &self.shared.telemetry {
            let live: u64 = active.iter().map(|a| u64::from(a.live)).sum();
            let colored: u64 = active.iter().map(|a| u64::from(a.colored_count)).sum();
            t.set_iter_active(active.len() as u64);
            t.set_iter_progress(live, colored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use ct_core::correction::CorrectionKind;
    use ct_core::tree::TreeKind;
    use ct_logp::LogP;
    use ct_obs::{EventKind, VecSink};

    /// `3 + ⌈l/o⌉` for [`LogP::PAPER`] (l=2, o=1): the per-process
    /// checked-correction message count of Corollary 1.
    const M_PAPER: u64 = 5;

    fn plain_topics(p: u32, n: usize) -> TopicTable {
        let mut table = TopicTable::new();
        for t in 0..n {
            let mut spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
            spec.root = (t as u32 * 7) % p;
            table.push(Topic::new(format!("t{t}"), spec, p, t as u64));
        }
        table
    }

    #[test]
    fn concurrent_plain_topics_complete_with_exact_totals() {
        let p = 32;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let table = plain_topics(p, 3);
        let opts = PubsubOptions { k: 2, rounds: 2 };
        let report = cluster.run_pubsub(&table, &opts).unwrap();
        assert_eq!(report.outcomes.len(), 6);
        assert!(report.completed(), "outcomes: {:?}", report.outcomes);
        for o in &report.outcomes {
            assert_eq!(o.messages, u64::from(p) - 1, "outcome {o:?}");
            assert!(o.uncolored.is_empty());
        }
        // Round-robin admission: ids are monotone in (round, topic).
        let order: Vec<(usize, usize)> =
            report.outcomes.iter().map(|o| (o.round, o.topic)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn checked_paced_topics_report_corollary1_totals_at_any_k() {
        let p = 16;
        let mut spec = BroadcastSpec::corrected_tree_sync(
            TreeKind::BINOMIAL,
            CorrectionKind::checked_paced(&LogP::PAPER, 2_000),
        );
        // Provision the synchronized start as a real wall-clock barrier
        // well past tree dissemination: with every rank tree-colored
        // before correction begins, all P machines participate and each
        // sends exactly M messages — the Corollary 1 count. (The
        // default `cached_deadline` start is a few µs — discrete-model
        // scale, long before a wall-clock tree completes — which turns
        // stragglers into correction-colored non-participants and
        // breaks the exact count.)
        spec.sync_start_override = Some(20_000);
        let expected = u64::from(p) - 1 + M_PAPER * u64::from(p);
        for k in [1usize, 4] {
            let mut cluster = Cluster::new(p, LogP::PAPER);
            let mut table = TopicTable::new();
            for t in 0..4 {
                table.push(Topic::new(format!("cp{t}"), spec, p, 100 + t));
            }
            let report = cluster
                .run_pubsub(&table, &PubsubOptions { k, rounds: 2 })
                .unwrap();
            assert!(report.completed(), "k={k}: {:?}", report.outcomes);
            for o in &report.outcomes {
                assert_eq!(
                    o.messages, expected,
                    "k={k} topic={} round={}",
                    o.topic, o.round
                );
            }
        }
    }

    #[test]
    fn faulty_corrected_topic_mixes_with_fault_free_neighbors() {
        let p = 64;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let mut table = plain_topics(p, 2);
        let mut dead = vec![false; p as usize];
        dead[3] = true;
        dead[17] = true;
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        table.push(Topic::new("faulty", spec, p, 9).with_dead(dead));
        let report = cluster
            .run_pubsub(&table, &PubsubOptions { k: 3, rounds: 1 })
            .unwrap();
        for o in &report.outcomes {
            assert!(o.uncolored.is_empty(), "outcome {o:?}");
            assert!(o.latency < cluster.shared.base.elapsed());
        }
    }

    #[test]
    fn capacity_one_mailboxes_backpressure_two_topics_without_deadlock() {
        let p = 32;
        let cfg = ClusterConfig::new()
            .mailbox_capacity(1)
            .timeout(Duration::from_secs(20));
        let mut cluster = Cluster::with_config(p, LogP::PAPER, cfg);
        let table = plain_topics(p, 2);
        let report = cluster
            .run_pubsub(&table, &PubsubOptions { k: 2, rounds: 3 })
            .unwrap();
        assert!(report.completed(), "outcomes: {:?}", report.outcomes);
        for o in &report.outcomes {
            assert_eq!(o.messages, u64::from(p) - 1);
        }
    }

    #[test]
    fn per_topic_sinks_see_only_their_own_stamped_broadcasts() {
        let p = 16;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let table = plain_topics(p, 2);
        let mut s0 = VecSink::new();
        let mut s1 = VecSink::new();
        let report = {
            let mut sinks: Vec<&mut dyn EventSink> = vec![&mut s0, &mut s1];
            cluster
                .run_pubsub_observed(&table, &PubsubOptions { k: 2, rounds: 2 }, &mut sinks)
                .unwrap()
        };
        assert!(report.completed());
        for (tix, sink) in [(0usize, &s0), (1usize, &s1)] {
            let ids: Vec<u64> = report
                .outcomes
                .iter()
                .filter(|o| o.topic == tix)
                .map(|o| o.id)
                .collect();
            assert_eq!(ids.len(), 2);
            assert!(!sink.events.is_empty());
            for e in &sink.events {
                let b = e.bcast.expect("pub/sub events carry a broadcast id");
                assert!(ids.contains(&b), "event {e:?} not from topic {tix}");
            }
            // Each broadcast's span carries a full coloring.
            for id in ids {
                let colored = sink
                    .events
                    .iter()
                    .filter(|e| e.bcast == Some(id) && matches!(e.kind, EventKind::Colored { .. }))
                    .count();
                assert_eq!(colored, p as usize, "broadcast {id}");
            }
        }
    }
}
