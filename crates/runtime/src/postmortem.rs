//! `ct-postmortem-v1`: the structured dump written when a run dies.
//!
//! A [`Postmortem`] bundles everything the runtime knows at the moment
//! of failure — the watchdog's [`StallReport`] (when the failure *was*
//! a stall), a [`TelemetrySnapshot`] of the counter hub, and the frozen
//! flight-recorder rings ([`FlightDump`]) — plus two derived views
//! computed at render time: the merged time-ordered event tail across
//! all workers and the last-K actions of each rank of interest (the
//! stranded ranks when a stall report is present). The dump is a single
//! deterministic JSON object consumed by `ct postmortem` /
//! `ct analyze --view postmortem`, which reconstruct a per-rank causal
//! story: last poll, last mailbox push and who sent it, pending timers.

use std::path::Path;

use ct_obs::flight::{FlightDump, FlightRecord, NO_RANK};
use ct_obs::health::HealthEvent;
use ct_obs::json::JsonObject;
use ct_obs::TelemetrySnapshot;

use crate::stall::StallReport;

/// Schema tag stamped into every dump; bump on incompatible layout
/// changes.
pub const SCHEMA: &str = "ct-postmortem-v1";

/// Merged-tail length bound: the last this-many records across all
/// shards land in the dump's `tail` section.
pub const TAIL_MAX: usize = 256;

/// Per-rank history bound: the last this-many records involving each
/// rank of interest land in its `ranks[].last` section.
pub const RANK_LAST_K: usize = 16;

/// When no stall report narrows the focus, at most this many distinct
/// ranks (those seen in the merged tail) get per-rank sections.
const RANK_FALLBACK_MAX: usize = 32;

/// Everything captured when a run died: see the module docs.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Why the dump was taken: `watchdog_stall`, `worker_panic` or
    /// `monitor_violation`.
    pub reason: String,
    /// Total ranks in the run.
    pub p: u32,
    /// The watchdog's diagnosis, when the failure was a stall.
    pub stall: Option<StallReport>,
    /// Counter-hub snapshot at capture time, when a hub was attached.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Precursor timeline: every health event the continuous sampler
    /// fired before the capture (empty without a sampler). On a stall
    /// this is where the `stall_precursor` event shows the wedge was
    /// visible windows before the watchdog expired.
    pub health: Vec<HealthEvent>,
    /// The frozen flight-recorder rings.
    pub flight: FlightDump,
}

impl Postmortem {
    /// The ranks that get per-rank `last` sections: the stall report's
    /// stranded ranks when present, otherwise every rank seen in the
    /// merged tail (ascending, capped).
    pub fn focus_ranks(&self) -> Vec<u32> {
        if let Some(stall) = &self.stall {
            return stall.stranded();
        }
        let mut seen: Vec<u32> = self
            .flight
            .merged_tail(TAIL_MAX)
            .iter()
            .filter(|(_, r)| r.rank != NO_RANK)
            .map(|(_, r)| r.rank)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.truncate(RANK_FALLBACK_MAX);
        seen
    }

    /// Render the dump as one deterministic JSON object (schema
    /// [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_str("reason", &self.reason);
        obj.field_u64("p", u64::from(self.p));
        match &self.stall {
            Some(s) => obj.field_raw("stall", &s.to_json()),
            None => obj.field_null("stall"),
        };
        match &self.telemetry {
            Some(t) => obj.field_raw("telemetry", &t.to_json()),
            None => obj.field_null("telemetry"),
        };
        let mut health = String::from("[");
        for (i, e) in self.health.iter().enumerate() {
            if i > 0 {
                health.push(',');
            }
            health.push_str(&e.to_json());
        }
        health.push(']');
        obj.field_raw("health", &health);
        obj.field_raw("flight", &self.flight.to_json());
        let mut tail = String::from("[");
        for (i, (shard, r)) in self.flight.merged_tail(TAIL_MAX).iter().enumerate() {
            if i > 0 {
                tail.push(',');
            }
            tail.push_str(&record_json(*shard, r));
        }
        tail.push(']');
        obj.field_raw("tail", &tail);
        let mut ranks = String::from("[");
        for (i, rank) in self.focus_ranks().iter().enumerate() {
            if i > 0 {
                ranks.push(',');
            }
            let mut robj = JsonObject::new();
            robj.field_u64("rank", u64::from(*rank));
            let mut last = String::from("[");
            for (j, (shard, r)) in self.flight.rank_tail(*rank, RANK_LAST_K).iter().enumerate() {
                if j > 0 {
                    last.push(',');
                }
                last.push_str(&record_json(*shard, r));
            }
            last.push(']');
            robj.field_raw("last", &last);
            ranks.push_str(&robj.finish());
        }
        ranks.push(']');
        obj.field_raw("ranks", &ranks);
        obj.finish()
    }

    /// Write the dump (plus a trailing newline) to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// One tail entry: a flight record prefixed with the shard it came
/// from.
fn record_json(shard: usize, r: &FlightRecord) -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("shard", shard as u64);
    obj.field_u64("seq", r.seq);
    obj.field_str("kind", r.kind.name());
    if r.rank == NO_RANK {
        obj.field_null("rank");
    } else {
        obj.field_u64("rank", u64::from(r.rank));
    }
    obj.field_u64("aux", r.aux);
    obj.field_u64("step", r.step);
    obj.field_u64("wall_us", r.wall_us);
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::RankStall;
    use ct_obs::flight::{FlightKind, FlightRecorder};

    fn dump() -> FlightDump {
        let rec = FlightRecorder::new(2, 8);
        rec.record(1, FlightKind::IterStart, NO_RANK, 1, 0, 1_000);
        rec.record(0, FlightKind::QuantumStart, 3, 1, 10, 1_010);
        rec.record(0, FlightKind::MailboxPush, 5, 3, 12, 1_012);
        rec.freeze();
        rec.dump()
    }

    fn stall() -> StallReport {
        StallReport {
            id: 1,
            timeout_ms: 200,
            p: 8,
            live: 7,
            colored: 4,
            runq_depth: 0,
            pending_timers: 0,
            coord_in_flight: 0,
            now_us: 201_000,
            epoch_us: 1_000,
            ranks: vec![RankStall {
                rank: 3,
                scheduled: false,
                mailbox_len: 0,
                mailbox_spilled: 0,
                last_poll_us: Some(1_010),
            }],
        }
    }

    #[test]
    fn json_is_schema_tagged_and_deterministic() {
        let pm = Postmortem {
            reason: "watchdog_stall".to_owned(),
            p: 8,
            stall: Some(stall()),
            telemetry: None,
            health: Vec::new(),
            flight: dump(),
        };
        let json = pm.to_json();
        assert!(
            json.starts_with(
                "{\"schema\":\"ct-postmortem-v1\",\"reason\":\"watchdog_stall\",\"p\":8"
            ),
            "{json}"
        );
        assert!(json.contains("\"telemetry\":null"), "{json}");
        assert!(json.contains("\"stall\":{\"id\":1"), "{json}");
        assert!(
            json.contains("\"tail\":[{\"shard\":1,\"seq\":0,\"kind\":\"iter_start\""),
            "{json}"
        );
        assert!(json.contains("\"ranks\":[{\"rank\":3,\"last\":["), "{json}");
        assert_eq!(json, pm.to_json());
    }

    #[test]
    fn focus_follows_the_stall_report_when_present() {
        let pm = Postmortem {
            reason: "watchdog_stall".to_owned(),
            p: 8,
            stall: Some(stall()),
            telemetry: None,
            health: Vec::new(),
            flight: dump(),
        };
        assert_eq!(pm.focus_ranks(), vec![3]);
    }

    #[test]
    fn focus_falls_back_to_tail_ranks_without_a_stall() {
        let pm = Postmortem {
            reason: "worker_panic".to_owned(),
            p: 8,
            stall: None,
            telemetry: None,
            health: Vec::new(),
            flight: dump(),
        };
        assert_eq!(pm.focus_ranks(), vec![3, 5]);
    }

    #[test]
    fn rank_sections_include_pushes_to_the_rank() {
        let pm = Postmortem {
            reason: "watchdog_stall".to_owned(),
            p: 8,
            stall: Some(stall()),
            telemetry: None,
            health: Vec::new(),
            flight: dump(),
        };
        let json = pm.to_json();
        // Rank 3's history includes the push it originated (aux names
        // it as the pusher).
        assert!(
            json.contains("\"kind\":\"mailbox_push\",\"rank\":5,\"aux\":3"),
            "{json}"
        );
    }
}
