//! OSU-style latency benchmark (§4.4).
//!
//! The paper used the `osu_bcast` benchmark: "repeatedly executes
//! MPI_Bcast and measures its runtime across all the processes". This
//! harness does the same against [`Cluster`]: a warmup phase, then `N`
//! measured broadcasts, reporting the median and 25%/75% percentiles of
//! per-iteration latency — the statistics plotted in Figures 11 and 12.

use std::time::{Duration, Instant};

use ct_core::protocol::ProtocolFactory;
use ct_logp::{LogP, Rank, Time};
use ct_obs::event::phases;
use ct_obs::{Event as ObsEvent, EventKind as ObsEventKind, EventSink, NullSink};

use crate::cluster::{Cluster, ClusterError};

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Number of ranks.
    pub p: u32,
    /// Unmeasured warmup iterations (default 5).
    pub warmup: u32,
    /// Measured iterations (default 20).
    pub iterations: u32,
    /// Ranks emulated as crashed for every iteration.
    pub dead_ranks: Vec<Rank>,
    /// Per-iteration completion deadline.
    pub timeout: Duration,
    /// Base seed; iteration `i` uses `seed + i`.
    pub seed: u64,
}

impl BenchConfig {
    /// Fault-free defaults for `p` ranks.
    pub fn new(p: u32) -> BenchConfig {
        BenchConfig {
            p,
            warmup: 5,
            iterations: 20,
            dead_ranks: Vec::new(),
            timeout: Duration::from_secs(30),
            seed: 0,
        }
    }

    /// Emulate these ranks as crashed (must not include rank 0).
    pub fn with_dead_ranks(mut self, ranks: &[Rank]) -> BenchConfig {
        assert!(!ranks.contains(&0), "the root must stay alive");
        self.dead_ranks = ranks.to_vec();
        self
    }

    /// Set warmup/measured iteration counts.
    pub fn with_iterations(mut self, warmup: u32, iterations: u32) -> BenchConfig {
        assert!(iterations >= 1);
        self.warmup = warmup;
        self.iterations = iterations;
        self
    }
}

/// Aggregated benchmark result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Protocol label.
    pub label: String,
    /// Rank count.
    pub p: u32,
    /// Per-iteration latencies (measured iterations only, completed or
    /// not), in microseconds.
    pub latencies_us: Vec<f64>,
    /// Median latency (µs).
    pub median_us: f64,
    /// 25% percentile (µs).
    pub p25_us: f64,
    /// 75% percentile (µs).
    pub p75_us: f64,
    /// Iterations that missed the completion deadline.
    pub incomplete: u32,
    /// Mean messages per iteration.
    pub mean_messages: f64,
}

/// Run the benchmark for one protocol variant on a fresh cluster.
pub fn run_bench(
    factory: &dyn ProtocolFactory,
    logp: LogP,
    config: &BenchConfig,
) -> Result<BenchResult, ClusterError> {
    run_bench_observed(factory, logp, config, &mut NullSink)
}

/// Like [`run_bench`], streaming the events of every *measured*
/// iteration into `sink` (warmup runs are never observed). Each
/// iteration is bracketed by `rep <i>` phase spans stamped with
/// wall-clock time since the start of the measurement phase, so the
/// stream doubles as a benchmark timeline.
pub fn run_bench_observed(
    factory: &dyn ProtocolFactory,
    logp: LogP,
    config: &BenchConfig,
    sink: &mut dyn EventSink,
) -> Result<BenchResult, ClusterError> {
    let mut cluster = Cluster::new(config.p, logp);
    cluster.set_timeout(config.timeout);
    let mut dead = vec![false; config.p as usize];
    for &r in &config.dead_ranks {
        dead[r as usize] = true;
    }

    for i in 0..config.warmup {
        let _ = cluster.run_broadcast(factory, &dead, config.seed.wrapping_add(i as u64))?;
    }

    let observing = sink.enabled();
    let bench_epoch = Instant::now();
    let wall = |epoch: Instant| epoch.elapsed().as_micros() as u64;
    let mut latencies_us = Vec::with_capacity(config.iterations as usize);
    let mut incomplete = 0u32;
    let mut total_messages = 0u64;
    for i in 0..config.iterations {
        let seed = config.seed.wrapping_add((config.warmup + i) as u64);
        let rep = format!("{} {i}", phases::REP);
        if observing {
            let w = wall(bench_epoch);
            sink.emit(&ObsEvent::wall(
                Time::new(w),
                w,
                ObsEventKind::PhaseBegin { name: rep.clone() },
            ));
        }
        let report = cluster.run_broadcast_observed(factory, &dead, seed, sink)?;
        if observing {
            let w = wall(bench_epoch);
            sink.emit(&ObsEvent::wall(
                Time::new(w),
                w,
                ObsEventKind::PhaseEnd { name: rep },
            ));
        }
        latencies_us.push(report.latency.as_secs_f64() * 1e6);
        if !report.completed {
            incomplete += 1;
        }
        total_messages += report.messages;
    }

    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q = |p: f64| {
        let idx = ((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    };
    Ok(BenchResult {
        label: factory.label(),
        p: config.p,
        median_us: q(0.5),
        p25_us: q(0.25),
        p75_us: q(0.75),
        latencies_us,
        incomplete,
        mean_messages: total_messages as f64 / config.iterations as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::correction::CorrectionKind;
    use ct_core::protocol::BroadcastSpec;
    use ct_core::tree::TreeKind;

    #[test]
    fn bench_produces_consistent_statistics() {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 2 },
        );
        let config = BenchConfig::new(16).with_iterations(2, 8);
        let result = run_bench(&spec, LogP::PAPER, &config).unwrap();
        assert_eq!(result.latencies_us.len(), 8);
        assert_eq!(result.incomplete, 0);
        assert!(result.p25_us <= result.median_us);
        assert!(result.median_us <= result.p75_us);
        assert!(result.median_us > 0.0);
        assert!(result.mean_messages >= 15.0);
    }

    #[test]
    fn bench_with_emulated_failures_still_completes() {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let config = BenchConfig::new(32)
            .with_iterations(1, 5)
            .with_dead_ranks(&[3, 17]);
        let result = run_bench(&spec, LogP::PAPER, &config).unwrap();
        assert_eq!(result.incomplete, 0, "correction must heal the crashes");
    }

    #[test]
    #[should_panic(expected = "root")]
    fn dead_root_is_rejected() {
        let _ = BenchConfig::new(8).with_dead_ranks(&[0]);
    }
}
