//! Hashed timer wheel for protocol wake-ups.
//!
//! `SendPoll::WaitUntil` asks the driver to poll a rank again at a
//! logical time. The old cluster translated that into P blocked
//! `recv_timeout` calls — one OS timer per rank. The M:N scheduler
//! instead funnels every pending wake-up into one shared [`TimerWheel`]
//! serviced by the worker pool: a classic hashed wheel of
//! [`SLOTS`] buckets at [`GRANULARITY_US`] µs per slot, with a binary
//! heap catching deadlines beyond one wheel revolution.
//!
//! Deadlines are `u64` microseconds relative to the cluster's base
//! `Instant`, so the wheel never touches the clock itself — callers
//! pass `now` in. Firing a timer only makes a rank runnable; a stale
//! timer (the rank already progressed past its wait) is harmless
//! because polling a protocol state machine is idempotent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ct_logp::Rank;

/// Number of buckets in the wheel (one revolution = `SLOTS × GRANULARITY_US` µs).
const SLOTS: usize = 512;
/// Microseconds per bucket.
const GRANULARITY_US: u64 = 16;

/// Horizon of one revolution in µs (8.192 ms with the defaults).
const HORIZON_US: u64 = SLOTS as u64 * GRANULARITY_US;

/// Hashed timer wheel mapping µs deadlines to runnable ranks.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, Rank)>>,
    /// Deadlines at or beyond one revolution from the cursor.
    overflow: BinaryHeap<Reverse<(u64, Rank)>>,
    /// µs timestamp the cursor has been advanced to.
    cursor_us: u64,
    /// Pending entry count (slots + overflow).
    pending: usize,
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor_us: 0,
            pending: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Schedule `rank` to become runnable at `deadline_us`. Deadlines
    /// already in the past are clamped to the cursor so they fire on
    /// the next `expire` call.
    pub fn insert(&mut self, deadline_us: u64, rank: Rank) {
        let deadline_us = deadline_us.max(self.cursor_us);
        if deadline_us >= self.cursor_us + HORIZON_US {
            self.overflow.push(Reverse((deadline_us, rank)));
        } else {
            let slot = (deadline_us / GRANULARITY_US) as usize % SLOTS;
            self.slots[slot].push((deadline_us, rank));
        }
        self.pending += 1;
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        let mut best: Option<u64> = self.overflow.peek().map(|Reverse((d, _))| *d);
        // The wheel only holds deadlines within one revolution of the
        // cursor, so a linear scan over occupied slots is exact.
        for slot in &self.slots {
            for &(d, _) in slot {
                if best.map(|b| d < b).unwrap_or(true) {
                    best = Some(d);
                }
            }
        }
        best
    }

    /// Advance the cursor to `now_us`, appending every expired rank to
    /// `due`. Entries whose deadline is still in the future stay put.
    /// Returns the number of overflow-heap entries cascaded down into
    /// wheel slots (telemetry; zero when nothing crossed the horizon).
    pub fn expire(&mut self, now_us: u64, due: &mut Vec<Rank>) -> u64 {
        if now_us < self.cursor_us {
            return 0;
        }
        if self.pending == 0 {
            self.cursor_us = now_us;
            return 0;
        }
        // Walk at most one full revolution of buckets; each bucket is
        // visited once per revolution regardless of how far the clock
        // jumped.
        let from_slot = self.cursor_us / GRANULARITY_US;
        let to_slot = now_us / GRANULARITY_US;
        let steps = (to_slot - from_slot).min(SLOTS as u64);
        for s in from_slot..=from_slot + steps {
            let idx = (s as usize) % SLOTS;
            if self.slots[idx].is_empty() {
                continue;
            }
            let mut keep = Vec::new();
            for (d, rank) in self.slots[idx].drain(..) {
                if d <= now_us {
                    due.push(rank);
                    self.pending -= 1;
                } else {
                    keep.push((d, rank));
                }
            }
            self.slots[idx] = keep;
        }
        self.cursor_us = now_us;
        // Pull overflow entries that are now due or have come within
        // the horizon.
        let mut cascaded = 0u64;
        while let Some(Reverse((d, rank))) = self.overflow.peek().copied() {
            if d <= now_us {
                self.overflow.pop();
                due.push(rank);
                self.pending -= 1;
            } else if d < self.cursor_us + HORIZON_US {
                self.overflow.pop();
                let slot = (d / GRANULARITY_US) as usize % SLOTS;
                self.slots[slot].push((d, rank));
                cascaded += 1;
            } else {
                break;
            }
        }
        cascaded
    }

    /// Drop every pending timer (iteration teardown).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.overflow.clear();
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_within_horizon() {
        let mut w = TimerWheel::new();
        w.insert(300, 3);
        w.insert(100, 1);
        w.insert(200, 2);
        assert_eq!(w.next_deadline(), Some(100));
        let mut due = Vec::new();
        w.expire(150, &mut due);
        assert_eq!(due, vec![1]);
        w.expire(400, &mut due);
        due.sort();
        assert_eq!(due, vec![1, 2, 3]);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn past_deadlines_fire_on_next_expire() {
        let mut w = TimerWheel::new();
        let mut due = Vec::new();
        w.expire(10_000, &mut due);
        assert!(due.is_empty());
        w.insert(5, 7); // already past the cursor — clamped
        assert_eq!(w.next_deadline(), Some(10_000));
        w.expire(10_000, &mut due);
        assert_eq!(due, vec![7]);
    }

    #[test]
    fn overflow_beyond_horizon_still_fires() {
        let mut w = TimerWheel::new();
        let far = HORIZON_US * 3 + 42;
        w.insert(far, 9);
        w.insert(50, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_deadline(), Some(50));
        let mut due = Vec::new();
        // Advance in hops smaller than the horizon.
        let mut t = 0;
        while t < far {
            t += HORIZON_US / 2;
            w.expire(t.min(far), &mut due);
        }
        due.sort();
        assert_eq!(due, vec![1, 9]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn big_clock_jump_expires_everything_due() {
        let mut w = TimerWheel::new();
        for r in 0..20 {
            w.insert((r as u64) * 37, r);
        }
        w.insert(HORIZON_US * 10, 99);
        let mut due = Vec::new();
        w.expire(HORIZON_US * 20, &mut due);
        assert_eq!(due.len(), 21);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn clear_drops_pending() {
        let mut w = TimerWheel::new();
        w.insert(10, 0);
        w.insert(HORIZON_US * 2, 1);
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
        let mut due = Vec::new();
        w.expire(HORIZON_US * 5, &mut due);
        assert!(due.is_empty());
    }
}
