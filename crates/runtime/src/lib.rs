//! # ct-runtime — in-process message-passing cluster
//!
//! The stand-in for the paper's MPI prototype on Piz Daint (§4.4, their
//! `dying-tree`). One OS thread per rank, crossbeam channels as the
//! reliable, non-reordering interconnect, and emulated crash failures
//! ("faults were emulated as crash failures and deadlocks without
//! noticeable differences", §4.4 — a dead rank here simply discards all
//! traffic and sends nothing).
//!
//! The same protocol state machines that run under the LogP simulator
//! run here unmodified, driven by wall-clock time (microseconds since
//! broadcast start) instead of LogP steps. As on the real cluster,
//! globally synchronized correction is impractical ("problematic due to
//! limited clock synchronisation precision"), so cluster experiments use
//! overlapped correction and round-limited gossip — exactly the paper's
//! prototype scope.
//!
//! [`harness`] layers an OSU-benchmark-style measurement loop on top:
//! repeated broadcasts with warmup, reporting per-iteration latency from
//! the root's start until every live rank holds the payload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod harness;

pub use cluster::{Cluster, ClusterError, RunReport};
pub use harness::{BenchConfig, BenchResult};
