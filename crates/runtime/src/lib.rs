//! # ct-runtime — in-process message-passing cluster
//!
//! The stand-in for the paper's MPI prototype on Piz Daint (§4.4, their
//! `dying-tree`). A fixed pool of worker threads M:N-schedules all P
//! rank state machines ([`cluster::default_threads`]-sized, `CT_THREADS`
//! override); each rank owns a bounded mailbox (fixed-capacity ring,
//! heap spill only under overload) and ranks become runnable on message
//! arrival or via a shared timer wheel, so P=4096 needs no 4096 OS
//! threads. Crash failures are emulated ("faults were emulated as crash
//! failures and deadlocks without noticeable differences", §4.4 — a dead
//! rank here simply discards all traffic and sends nothing).
//!
//! The same protocol state machines that run under the LogP simulator
//! run here unmodified, driven by wall-clock time (microseconds since
//! broadcast start) instead of LogP steps. As on the real cluster,
//! globally synchronized correction is impractical ("problematic due to
//! limited clock synchronisation precision"), so cluster experiments use
//! overlapped correction and round-limited gossip — exactly the paper's
//! prototype scope.
//!
//! [`harness`] layers an OSU-benchmark-style measurement loop on top:
//! repeated broadcasts with warmup, reporting per-iteration latency from
//! the root's start until every live rank holds the payload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod harness;
mod mailbox;
pub mod postmortem;
pub mod pubsub;
pub mod stall;
mod timer;

pub use cluster::{
    default_flight_cap, default_threads, Cluster, ClusterConfig, ClusterError, RunReport,
};
pub use harness::{BenchConfig, BenchResult};
pub use postmortem::Postmortem;
pub use pubsub::{BroadcastOutcome, PubsubOptions, PubsubReport, Topic, TopicTable};
pub use stall::{RankStall, StallReport};
