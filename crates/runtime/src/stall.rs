//! Structured stall diagnostics for the cluster watchdog.
//!
//! Before this module, an iteration that failed to color every live
//! rank within the deadline surfaced as nothing but
//! `completed == false` and a list of uncolored ranks — the lost-wakeup
//! race of PR 5 was only diagnosable by reading scheduler code. The
//! watchdog now assembles a [`StallReport`] at the moment of timeout,
//! *before* teardown clears any state: for every stranded rank it
//! captures the `scheduled` flag, mailbox occupancy and spill count and
//! the time of its last scheduling quantum, plus the global run-queue
//! depth, pending-timer count and the coordinator's in-flight batch
//! backlog. A stuck rank with a non-empty mailbox and `scheduled ==
//! false` is a lost wake-up; `scheduled == true` with an old last-poll
//! stamp is a worker that never got to it; an empty mailbox with no
//! pending timers is a protocol that legitimately has nothing to do
//! (e.g. an orphaned subtree under a dead parent).

use ct_logp::Rank;
use ct_obs::json::JsonObject;

/// Diagnostic state of one stranded (live but uncolored) rank, captured
/// at watchdog timeout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankStall {
    /// The stranded rank.
    pub rank: Rank,
    /// Whether the rank sat in the run queue / a worker batch.
    pub scheduled: bool,
    /// Messages queued in its mailbox (ring + spill).
    pub mailbox_len: usize,
    /// Lifetime spill count of its mailbox.
    pub mailbox_spilled: u64,
    /// µs timestamp (cluster timeline) of its last scheduling quantum
    /// in this iteration; `None` if it was never polled.
    pub last_poll_us: Option<u64>,
}

impl RankStall {
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("rank", u64::from(self.rank));
        obj.field_bool("scheduled", self.scheduled);
        obj.field_u64("mailbox_len", self.mailbox_len as u64);
        obj.field_u64("mailbox_spilled", self.mailbox_spilled);
        match self.last_poll_us {
            Some(v) => obj.field_u64("last_poll_us", v),
            None => obj.field_null("last_poll_us"),
        };
        obj.finish()
    }
}

/// What the watchdog saw when a broadcast iteration timed out — the
/// structured replacement for an opaque "not completed" (see module
/// docs). Attached to `RunReport::stall` on incomplete iterations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallReport {
    /// Broadcast iteration id that stalled.
    pub id: u64,
    /// The deadline that expired, in milliseconds.
    pub timeout_ms: u64,
    /// Total ranks.
    pub p: u32,
    /// Live (non-dead) ranks.
    pub live: u32,
    /// Live ranks the coordinator saw colored before the deadline.
    pub colored: u32,
    /// Run-queue depth at report time.
    pub runq_depth: usize,
    /// Pending timer-wheel entries at report time.
    pub pending_timers: usize,
    /// Coordinator notifications received but not yet processed
    /// (in-flight batch backlog) at report time.
    pub coord_in_flight: usize,
    /// µs since the iteration epoch at report time (for aging
    /// [`RankStall::last_poll_us`] stamps, which share the cluster
    /// timeline via `epoch_us`).
    pub now_us: u64,
    /// µs since the cluster base at the iteration epoch — subtract from
    /// a `last_poll_us` stamp to place it on the iteration clock.
    pub epoch_us: u64,
    /// Per-rank diagnostics for every stranded rank, ascending.
    pub ranks: Vec<RankStall>,
}

impl StallReport {
    /// Ranks the report names as stranded, ascending.
    pub fn stranded(&self) -> Vec<Rank> {
        self.ranks.iter().map(|r| r.rank).collect()
    }

    /// Render as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("id", self.id);
        obj.field_u64("timeout_ms", self.timeout_ms);
        obj.field_u64("p", u64::from(self.p));
        obj.field_u64("live", u64::from(self.live));
        obj.field_u64("colored", u64::from(self.colored));
        obj.field_u64("runq_depth", self.runq_depth as u64);
        obj.field_u64("pending_timers", self.pending_timers as u64);
        obj.field_u64("coord_in_flight", self.coord_in_flight as u64);
        obj.field_u64("now_us", self.now_us);
        obj.field_u64("epoch_us", self.epoch_us);
        let mut ranks = String::from("[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                ranks.push(',');
            }
            ranks.push_str(&r.to_json());
        }
        ranks.push(']');
        obj.field_raw("ranks", &ranks);
        obj.finish()
    }

    /// Render as a human-readable multi-line diagnostic.
    pub fn render_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stall: broadcast {} timed out after {} ms ({}/{} live ranks colored, p={})",
            self.id, self.timeout_ms, self.colored, self.live, self.p
        );
        let _ = writeln!(
            out,
            "  run queue: {} | pending timers: {} | coordinator in-flight: {}",
            self.runq_depth, self.pending_timers, self.coord_in_flight
        );
        for r in &self.ranks {
            let age = match r.last_poll_us {
                Some(t) => {
                    let iter_us = t.saturating_sub(self.epoch_us);
                    format!(
                        "last poll at {} µs ({} µs ago)",
                        iter_us,
                        self.now_us.saturating_sub(iter_us)
                    )
                }
                None => "never polled".to_owned(),
            };
            let _ = writeln!(
                out,
                "  rank {:>5}: scheduled={} mailbox={} (spilled {}) {}",
                r.rank, r.scheduled, r.mailbox_len, r.mailbox_spilled, age
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StallReport {
        StallReport {
            id: 7,
            timeout_ms: 200,
            p: 8,
            live: 7,
            colored: 4,
            runq_depth: 0,
            pending_timers: 1,
            coord_in_flight: 0,
            now_us: 200_500,
            epoch_us: 1_000,
            ranks: vec![
                RankStall {
                    rank: 3,
                    scheduled: false,
                    mailbox_len: 0,
                    mailbox_spilled: 0,
                    last_poll_us: Some(1_012),
                },
                RankStall {
                    rank: 5,
                    scheduled: false,
                    mailbox_len: 2,
                    mailbox_spilled: 1,
                    last_poll_us: None,
                },
            ],
        }
    }

    #[test]
    fn stranded_lists_ranks_in_order() {
        assert_eq!(report().stranded(), vec![3, 5]);
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let json = report().to_json();
        assert!(json.starts_with("{\"id\":7,\"timeout_ms\":200"), "{json}");
        assert!(json.contains("\"ranks\":[{\"rank\":3"), "{json}");
        assert!(json.contains("\"last_poll_us\":null"), "{json}");
        assert_eq!(json, report().to_json());
    }

    #[test]
    fn text_names_every_stranded_rank() {
        let text = report().render_text();
        assert!(
            text.contains("broadcast 7 timed out after 200 ms"),
            "{text}"
        );
        assert!(text.contains("4/7 live ranks colored"), "{text}");
        assert!(text.contains("rank     3"), "{text}");
        assert!(text.contains("never polled"), "{text}");
        assert!(text.contains("mailbox=2 (spilled 1)"), "{text}");
    }
}
