//! Bounded per-rank mailboxes.
//!
//! Every rank owns one [`Mailbox`]: a fixed-capacity ring buffer of
//! in-flight [`Msg`]s with a heap-allocated overflow queue behind it.
//! The ring is allocated once when the cluster is built, so in the
//! steady state a message travels sender → ring slot → receiver without
//! any per-message heap allocation. The spill queue exists purely for
//! safety: a rank that is scheduled behind a burst larger than the ring
//! (or a deliberately tiny `CT_MAILBOX_CAP` override) must neither
//! deadlock the sending worker nor drop an in-iteration message, so
//! excess messages degrade to heap queueing instead.
//!
//! FIFO order is global across the ring/spill boundary: once a message
//! has spilled, later pushes keep spilling until the spill queue has
//! drained back to empty, so a receiver always observes sender order —
//! the per-channel FIFO invariant `MonitorSink` checks.

use std::collections::VecDeque;

use ct_core::protocol::Payload;
use ct_logp::Rank;

/// One rank-to-rank message of a broadcast iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Msg {
    /// Broadcast iteration id (stale messages are discarded by id).
    pub id: u64,
    /// Sending rank.
    pub from: Rank,
    /// Message kind.
    pub payload: Payload,
}

/// Fixed-capacity ring with an overflow spill queue (see module docs).
pub(crate) struct Mailbox {
    ring: Box<[Option<Msg>]>,
    /// Index of the oldest ring entry.
    head: usize,
    /// Occupied ring entries.
    len: usize,
    /// Overflow beyond the ring capacity; empty in the steady state.
    spill: VecDeque<Msg>,
    /// Lifetime count of messages that had to spill.
    spilled: u64,
}

impl Mailbox {
    /// A mailbox whose ring holds `capacity` messages (≥ 1).
    pub fn new(capacity: usize) -> Mailbox {
        assert!(capacity >= 1, "mailbox capacity must be at least 1");
        Mailbox {
            ring: vec![None; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            spill: VecDeque::new(),
            spilled: 0,
        }
    }

    /// Number of queued messages (ring + spill).
    pub fn len(&self) -> usize {
        self.len + self.spill.len()
    }

    /// Is the mailbox empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Lifetime count of messages that overflowed into the spill queue.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Append a message. Never blocks, never drops: a full ring spills
    /// to the heap. Pushes go to the spill queue whenever it is
    /// non-empty so FIFO order survives the overflow path. Returns
    /// whether this push spilled.
    pub fn push(&mut self, msg: Msg) -> bool {
        if self.spill.is_empty() && self.len < self.ring.len() {
            let tail = (self.head + self.len) % self.ring.len();
            self.ring[tail] = Some(msg);
            self.len += 1;
            false
        } else {
            self.spill.push_back(msg);
            self.spilled += 1;
            true
        }
    }

    /// Remove the oldest message, if any.
    pub fn pop(&mut self) -> Option<Msg> {
        if self.len > 0 {
            let msg = self.ring[self.head].take();
            self.head = (self.head + 1) % self.ring.len();
            self.len -= 1;
            msg
        } else {
            self.spill.pop_front()
        }
    }

    /// Move up to `max` oldest messages into `out`; returns how many.
    pub fn drain_into(&mut self, out: &mut Vec<Msg>, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            match self.pop() {
                Some(m) => {
                    out.push(m);
                    moved += 1;
                }
                None => break,
            }
        }
        moved
    }

    /// Discard every message belonging to broadcast `id`, keeping the
    /// relative order of everything else (pub/sub retirement of one
    /// topic must not disturb the FIFO streams of its neighbours).
    /// Returns how many messages were purged.
    pub fn purge_id(&mut self, id: u64) -> usize {
        let before = self.len();
        let spilled = self.spilled;
        let mut keep: VecDeque<Msg> = VecDeque::with_capacity(before);
        while let Some(m) = self.pop() {
            if m.id != id {
                keep.push_back(m);
            }
        }
        for m in keep {
            self.push(m);
        }
        // Re-queueing survivors is not new traffic; keep the lifetime
        // spill counter unchanged.
        self.spilled = spilled;
        before - self.len()
    }

    /// Discard everything (iteration teardown).
    pub fn clear(&mut self) {
        for slot in self.ring.iter_mut() {
            *slot = None;
        }
        self.head = 0;
        self.len = 0;
        self.spill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, from: Rank) -> Msg {
        Msg {
            id,
            from,
            payload: Payload::Tree,
        }
    }

    #[test]
    fn fifo_within_ring() {
        let mut mb = Mailbox::new(4);
        for i in 0..4 {
            mb.push(msg(1, i));
        }
        assert_eq!(mb.len(), 4);
        for i in 0..4 {
            assert_eq!(mb.pop().unwrap().from, i);
        }
        assert!(mb.is_empty());
        assert_eq!(mb.spilled(), 0);
    }

    #[test]
    fn overflow_spills_and_preserves_global_fifo() {
        let mut mb = Mailbox::new(2);
        for i in 0..7 {
            mb.push(msg(1, i));
        }
        assert_eq!(mb.len(), 7);
        assert_eq!(mb.spilled(), 5);
        // Interleave pops and pushes: order must stay strict-FIFO even
        // while the spill queue drains.
        assert_eq!(mb.pop().unwrap().from, 0);
        mb.push(msg(1, 7));
        for i in 1..8 {
            assert_eq!(mb.pop().unwrap().from, i);
        }
        assert!(mb.is_empty());
    }

    #[test]
    fn ring_wraps_around() {
        let mut mb = Mailbox::new(3);
        for round in 0..10u32 {
            mb.push(msg(1, round));
            assert_eq!(mb.pop().unwrap().from, round);
        }
        assert_eq!(mb.spilled(), 0);
    }

    #[test]
    fn drain_into_respects_max() {
        let mut mb = Mailbox::new(2);
        for i in 0..5 {
            mb.push(msg(1, i));
        }
        let mut out = Vec::new();
        assert_eq!(mb.drain_into(&mut out, 3), 3);
        assert_eq!(mb.drain_into(&mut out, 10), 2);
        let from: Vec<Rank> = out.iter().map(|m| m.from).collect();
        assert_eq!(from, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn purge_id_keeps_other_topics_in_order() {
        let mut mb = Mailbox::new(2);
        for i in 0..6 {
            mb.push(msg(u64::from(i % 2) + 1, i));
        }
        let spilled = mb.spilled();
        assert_eq!(mb.purge_id(1), 3);
        assert_eq!(mb.spilled(), spilled);
        let from: Vec<Rank> = std::iter::from_fn(|| mb.pop()).map(|m| m.from).collect();
        assert_eq!(from, vec![1, 3, 5]);
        assert_eq!(mb.purge_id(2), 0);
    }

    #[test]
    fn clear_resets_ring_and_spill() {
        let mut mb = Mailbox::new(1);
        mb.push(msg(1, 0));
        mb.push(msg(1, 1));
        mb.clear();
        assert!(mb.is_empty());
        assert_eq!(mb.pop(), None);
        mb.push(msg(2, 9));
        assert_eq!(mb.pop().unwrap().from, 9);
    }
}
