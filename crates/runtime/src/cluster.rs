//! M:N rank scheduler, bounded mailboxes and the per-broadcast drive loop.
//!
//! A [`Cluster`] emulates `P` single-process nodes on a fixed pool of
//! worker threads ([`default_threads`]-sized, `CT_THREADS` override) —
//! M:N scheduling instead of the thread-per-rank design this module
//! started with. Each rank is a passive state machine: a protocol
//! [`Process`] plus a bounded SPSC-style mailbox (fixed-capacity ring,
//! no per-message heap allocation in the steady state). Workers pull
//! batches of *runnable* ranks off a shared run queue and drive each
//! one for a quantum: drain the mailbox, deliver messages, poll the
//! protocol for sends, and hand outgoing messages straight to the
//! destination mailbox. Protocol-requested wake-ups
//! (`SendPoll::WaitUntil`) go into a shared hashed timer wheel the pool
//! services between quanta, so idle ranks cost nothing — no P blocked
//! `recv_timeout` calls.
//!
//! Coordinator traffic is batched: a worker accumulates colored
//! notifications, wake-ups and timer arms over a scheduling quantum and
//! flushes them once (one channel send per iteration id, one run-queue
//! lock). Iteration start reuses per-rank `Process` slots via
//! [`ProtocolFactory::build_into`] rather than shipping fresh boxes
//! through channels, and iteration teardown harvests per-rank message
//! counts and event buffers directly from the shared state — there is
//! no per-rank stop/ack round-trip.
//!
//! Stale messages are discarded by broadcast id, so iterations cannot
//! bleed into one another even with messages still queued.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ct_core::protocol::{BuildCtx, Process, ProtocolError, ProtocolFactory, SendPoll};
use ct_logp::{LogP, Rank, Time};
use ct_obs::event::phases;
use ct_obs::flight::{FlightKind as Fk, FlightRecorder, NO_RANK};
use ct_obs::health::{HealthConfig, HealthEvent};
use ct_obs::series::{Sampler, SeriesStore, DEFAULT_SERIES_CAP};
use ct_obs::telemetry::{Counter as Tc, Dist as Td, TelemetryHub};
use ct_obs::{Event as ObsEvent, EventKind as ObsEventKind, EventSink, NullSink};

use crate::mailbox::{Mailbox, Msg};
use crate::postmortem::Postmortem;
use crate::stall::{RankStall, StallReport};
use crate::timer::TimerWheel;

/// Upper bound on ranks a worker claims per run-queue lock.
const MAX_BATCH: usize = 32;

/// Worker-pool size: the `CT_THREADS` environment variable when set to
/// a positive integer, else [`std::thread::available_parallelism`],
/// else 4. The same knob (and the same default) the experiment
/// campaigns use for their simulator worker pools.
pub fn default_threads() -> usize {
    match std::env::var("CT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    }
}

/// Mailbox ring capacity: `CT_MAILBOX_CAP` when set to a positive
/// integer, else 64 slots per rank.
fn default_mailbox_capacity() -> usize {
    match std::env::var("CT_MAILBOX_CAP")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => 64,
    }
}

/// Watchdog (per-iteration completion) timeout in milliseconds:
/// `CT_WATCHDOG_MS` when set to a positive integer, else 30 000. The
/// generous default means a completed iteration never waits on it and
/// CPU contention on oversubscribed machines does not turn into
/// spurious incompleteness; stress tests and CI set the variable to
/// fail fast instead.
fn default_watchdog_ms() -> u64 {
    parse_watchdog_ms(std::env::var("CT_WATCHDOG_MS").ok().as_deref())
}

/// `CT_WATCHDOG_MS` parsing, factored out for deterministic testing:
/// positive integers win, anything else falls back to 30 000.
fn parse_watchdog_ms(raw: Option<&str>) -> u64 {
    match raw.and_then(|s| s.trim().parse::<u64>().ok()) {
        Some(ms) if ms >= 1 => ms,
        _ => 30_000,
    }
}

/// Flight-recorder ring capacity (records per worker shard) used when
/// [`ClusterConfig::flight`] is enabled without an explicit size:
/// `CT_FLIGHT_CAP` when set to a positive integer, else 4096. At 40
/// bytes per record the default costs ~160 KiB per worker.
pub fn default_flight_cap() -> usize {
    match std::env::var("CT_FLIGHT_CAP")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => 4096,
    }
}

/// Tunables for a [`Cluster`]; [`ClusterConfig::new`] reads the
/// environment (`CT_THREADS`, `CT_MAILBOX_CAP`, `CT_WATCHDOG_MS`) so
/// tests can pin exact values without mutating process state.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Worker-pool size (clamped to `1..=p` at cluster construction).
    pub threads: usize,
    /// Per-rank mailbox ring capacity (≥ 1; overflow spills to the
    /// heap, so this bounds steady-state allocation, not correctness).
    pub mailbox_capacity: usize,
    /// Per-iteration completion deadline (the watchdog).
    pub timeout: Duration,
    /// Live-telemetry hub the workers feed; `None` (the default) keeps
    /// every instrumented path on its zero-cost branch, exactly like a
    /// disabled [`EventSink`].
    pub telemetry: Option<Arc<TelemetryHub>>,
    /// Flight-recorder ring capacity (records per worker shard);
    /// `None` (the default) attaches no recorder and keeps the
    /// instrumented paths on their zero-cost branch.
    pub flight: Option<usize>,
    /// Where to write the `ct-postmortem-v1` dump when the run dies
    /// (watchdog stall or worker panic) with a flight recorder
    /// attached; `None` keeps the dump in-memory only
    /// ([`RunReport::postmortem`]).
    pub postmortem: Option<PathBuf>,
    /// Continuous-sampling interval: with a telemetry hub attached, a
    /// background [`Sampler`] polls it this often into a `ct-series-v1`
    /// ring and evaluates the health rules per window
    /// ([`Cluster::series`], [`RunReport::health`]). `None` (the
    /// default) spawns no thread — same zero-cost discipline as the
    /// hub and the recorder. `ct` enables it with the
    /// `CT_SAMPLE_MS`-driven [`ct_obs::series::default_sample_ms`].
    pub sample: Option<Duration>,
}

impl ClusterConfig {
    /// Environment-driven defaults: [`default_threads`] workers, 64-slot
    /// mailboxes (`CT_MAILBOX_CAP` override) and a generous 30 s
    /// watchdog timeout (`CT_WATCHDOG_MS` override).
    pub fn new() -> ClusterConfig {
        ClusterConfig {
            threads: default_threads(),
            mailbox_capacity: default_mailbox_capacity(),
            timeout: Duration::from_millis(default_watchdog_ms()),
            telemetry: None,
            flight: None,
            postmortem: None,
            sample: None,
        }
    }

    /// Replace the worker-pool size.
    pub fn threads(mut self, threads: usize) -> ClusterConfig {
        self.threads = threads;
        self
    }

    /// Replace the per-rank mailbox ring capacity.
    pub fn mailbox_capacity(mut self, capacity: usize) -> ClusterConfig {
        self.mailbox_capacity = capacity;
        self
    }

    /// Replace the per-iteration completion deadline.
    pub fn timeout(mut self, timeout: Duration) -> ClusterConfig {
        self.timeout = timeout;
        self
    }

    /// Attach a live-telemetry hub for the workers to feed.
    pub fn telemetry(mut self, hub: Arc<TelemetryHub>) -> ClusterConfig {
        self.telemetry = Some(hub);
        self
    }

    /// Attach a flight recorder with `cap`-record rings (one ring per
    /// worker plus one for the coordinator). See [`default_flight_cap`]
    /// for the `CT_FLIGHT_CAP`-driven default size.
    pub fn flight(mut self, cap: usize) -> ClusterConfig {
        self.flight = Some(cap);
        self
    }

    /// Write the `ct-postmortem-v1` dump to `path` when a run dies with
    /// a flight recorder attached.
    pub fn postmortem(mut self, path: PathBuf) -> ClusterConfig {
        self.postmortem = Some(path);
        self
    }

    /// Enable continuous sampling at `interval` (requires
    /// [`ClusterConfig::telemetry`] to have any effect).
    pub fn sample(mut self, interval: Duration) -> ClusterConfig {
        self.sample = Some(interval);
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig::new()
    }
}

/// Worker → coordinator notifications (batched per scheduling quantum).
pub(crate) enum CoordMsg {
    /// `ranks` became colored in broadcast `id`.
    Colored { id: u64, ranks: Vec<Rank> },
    /// Quiescence-tracking deltas for broadcast `id`, accumulated over a
    /// scheduling quantum: `sent` messages pushed, `consumed` messages
    /// taken off mailboxes (delivered or dead-dropped), `done` live
    /// ranks whose protocol reported [`SendPoll::Done`] for the first
    /// time. The pub/sub coordinator retires a broadcast when
    /// `colored == live && done == live && sent == consumed` — every
    /// live rank colored, every protocol machine finished, no message
    /// still in flight — which keeps per-broadcast message totals exact
    /// instead of truncating machines mid-correction at teardown. The
    /// single-broadcast coordinator ignores these.
    Progress {
        id: u64,
        sent: u64,
        consumed: u64,
        done: u32,
    },
}

/// Errors from cluster operation.
#[derive(Debug)]
pub enum ClusterError {
    /// The protocol factory failed.
    Protocol(ProtocolError),
    /// A worker thread panicked (observed as a poisoned rank lock or as
    /// every worker having exited), so the iteration's state cannot be
    /// trusted or collected.
    WorkerPanicked,
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::Protocol(e) => write!(f, "protocol: {e}"),
            ClusterError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ProtocolError> for ClusterError {
    fn from(e: ProtocolError) -> Self {
        ClusterError::Protocol(e)
    }
}

/// Result of one broadcast iteration on the cluster.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock time from the iteration epoch (the zero point of
    /// every recorded event timestamp) until the last live rank
    /// reported the payload (coloring latency). The epoch is taken
    /// before the per-rank install loop so events can never predate
    /// it, which means latency includes O(P) uncontended lock
    /// acquisitions of setup — low microseconds even at P=4096, but a
    /// systematic inclusion to keep in mind for cross-P comparisons
    /// (see DESIGN.md "Cluster runtime", *One clock*).
    pub latency: Duration,
    /// Live ranks that never got colored before the timeout (empty on
    /// success).
    pub uncolored: Vec<Rank>,
    /// Total messages sent by all ranks.
    pub messages: u64,
    /// Whether the iteration completed before the deadline.
    pub completed: bool,
    /// Watchdog diagnostics, captured at the moment of timeout and
    /// before teardown; `None` on completed iterations.
    pub stall: Option<StallReport>,
    /// The `ct-postmortem-v1` bundle captured on a stall when a flight
    /// recorder is attached ([`ClusterConfig::flight`]); also written
    /// to [`ClusterConfig::postmortem`] when a path is set. `None` on
    /// completed iterations and on runs without a recorder.
    pub postmortem: Option<Postmortem>,
    /// Health events the continuous sampler fired during this
    /// iteration ([`ClusterConfig::sample`]); empty without a sampler.
    /// On a stalled iteration the `stall_precursor` event lands here —
    /// fired K sample windows into the wedge, well before the watchdog
    /// gave up.
    pub health: Vec<HealthEvent>,
}

/// One in-flight broadcast iteration on a rank. A rank holds one of
/// these per concurrently installed topic (exactly one in
/// single-broadcast mode, up to `k` under pub/sub multiplexing), so all
/// per-iteration progress lives here rather than on [`RankState`].
pub(crate) struct IterState {
    pub(crate) id: u64,
    pub(crate) process: Box<dyn Process>,
    pub(crate) dead: bool,
    pub(crate) epoch: Instant,
    /// `epoch` on the cluster-wide µs timeline (for timer deadlines).
    pub(crate) epoch_us: u64,
    pub(crate) record: bool,
    /// Messages this rank sent during this iteration.
    pub(crate) sent: u64,
    /// Whether the coordinator has been told this rank is colored.
    pub(crate) notified: bool,
    /// Whether the coordinator has been told this rank's protocol
    /// machine reported [`SendPoll::Done`] (quiescence tracking).
    pub(crate) done_notified: bool,
    /// Buffered observability events (when recording).
    pub(crate) events: Vec<ObsEvent>,
}

/// Mutable per-rank state a worker locks for the span of one quantum.
pub(crate) struct RankState {
    /// The broadcast iterations currently installed on this rank; one
    /// quantum drains the rank's mailbox once and serves all of them.
    pub(crate) iters: Vec<IterState>,
    /// Messages drained ahead of their topic's installation on this
    /// rank (possible only under concurrent pub/sub admission: a peer
    /// already installed can send before this rank's install). They are
    /// re-examined each quantum; the admitting coordinator's
    /// unconditional enqueue-all guarantees a quantum after install.
    pub(crate) pending: Vec<Msg>,
    /// Highest broadcast id ever installed on this rank — installs
    /// happen in increasing id order, so a drained message with
    /// `id <= last_installed` that matches no installed iteration is
    /// stale (its iteration was torn down) and is dropped.
    pub(crate) last_installed: u64,
    /// Cluster-timeline µs stamp of this rank's last installed-state
    /// quantum in the current iteration (`None` until first polled).
    /// Always maintained — one `Instant` read per quantum — so the
    /// watchdog's [`StallReport`] can tell "never polled" from "polled
    /// long ago" even on runs without telemetry.
    pub(crate) last_poll_us: Option<u64>,
}

/// One rank: a schedule flag, a mailbox and the protocol state.
///
/// Lock order: `state` before `mailbox`; `mailbox` and the scheduler
/// lock are leaves (never held while taking another lock); no two
/// `state` locks are ever held at once.
pub(crate) struct RankCell {
    /// Set while the rank sits in the run queue or a worker's batch.
    /// Senders and timer expiry that win the `false → true` CAS take
    /// responsibility for enqueueing; iteration start enqueues
    /// *unconditionally* (a stale quantum may clear the flag without
    /// looking at the fresh state, so start must not rely on it); the
    /// end-of-quantum recheck — on the stale path too — closes the
    /// clear-flag/new-work race. Duplicate run-queue entries are
    /// possible and harmless (extra no-op quanta).
    pub(crate) scheduled: AtomicBool,
    pub(crate) mailbox: Mutex<Mailbox>,
    pub(crate) state: Mutex<RankState>,
}

/// Scheduler state shared by the pool.
pub(crate) struct Sched {
    pub(crate) runq: VecDeque<Rank>,
    pub(crate) timers: TimerWheel,
    pub(crate) shutdown: bool,
}

pub(crate) struct Shared {
    pub(crate) ranks: Vec<RankCell>,
    pub(crate) sched: Mutex<Sched>,
    pub(crate) sched_cv: Condvar,
    /// Zero point of the cluster-wide µs timeline timers live on.
    pub(crate) base: Instant,
    pub(crate) workers: usize,
    /// Live-telemetry hub; `None` keeps instrumentation zero-cost.
    pub(crate) telemetry: Option<Arc<TelemetryHub>>,
    /// Flight recorder (shard per worker + one coordinator shard);
    /// `None` keeps instrumentation zero-cost.
    pub(crate) flight: Option<Arc<FlightRecorder>>,
}

impl Shared {
    pub(crate) fn now_us(&self) -> u64 {
        self.base.elapsed().as_micros() as u64
    }
}

/// Per-worker scratch buffers, reused across quanta.
#[derive(Default)]
struct Scratch {
    /// Mailbox drain target.
    msgs: Vec<Msg>,
    /// Ranks made runnable by this batch's sends (CAS already won).
    wakes: Vec<Rank>,
    /// Timer arms `(deadline_us, rank)` to flush into the wheel.
    timers: Vec<(u64, Rank)>,
    /// Colored notifications `(id, rank)` to flush to the coordinator.
    colored: Vec<(u64, Rank)>,
    /// Quiescence deltas `(id, sent, consumed, done)` to flush to the
    /// coordinator; merged by id at accumulation time (at most one
    /// entry per in-flight broadcast per batch).
    progress: Vec<(u64, u64, u64, u32)>,
    /// Timer-expiry drain target.
    due: Vec<Rank>,
}

/// Merge a quiescence delta for broadcast `id` into the batch's scratch
/// list (linear scan: at most `k` in-flight broadcasts at a time).
fn bump_progress(
    progress: &mut Vec<(u64, u64, u64, u32)>,
    id: u64,
    sent: u64,
    consumed: u64,
    done: u32,
) {
    if sent == 0 && consumed == 0 && done == 0 {
        return;
    }
    match progress.iter_mut().find(|e| e.0 == id) {
        Some(e) => {
            e.1 += sent;
            e.2 += consumed;
            e.3 += done;
        }
        None => progress.push((id, sent, consumed, done)),
    }
}

/// Worker-side poisoned-lock marker: the holder panicked, so the
/// observing worker exits and lets the coordinator surface
/// [`ClusterError::WorkerPanicked`].
struct Poisoned;

/// A pool of worker threads emulating a cluster of `P` single-process
/// nodes over a reliable in-memory interconnect.
pub struct Cluster {
    pub(crate) p: u32,
    pub(crate) logp: LogP,
    pub(crate) shared: Arc<Shared>,
    pub(crate) from_workers: Receiver<CoordMsg>,
    handles: Vec<JoinHandle<()>>,
    pub(crate) next_id: u64,
    pub(crate) timeout: Duration,
    /// Reusable per-rank protocol slots (`ProtocolFactory::build_into`).
    pub(crate) procs: Vec<Box<dyn Process>>,
    /// Where [`Cluster::capture_postmortem`] writes its dump.
    postmortem_path: Option<PathBuf>,
    /// Continuous sampler ([`ClusterConfig::sample`]); owns the
    /// background thread and the shared series store.
    sampler: Option<Sampler>,
}

impl Cluster {
    /// A cluster of `p` ranks with environment-driven defaults
    /// ([`ClusterConfig::new`]). `logp` is only forwarded to protocol
    /// factories (tree construction); transport timing is real.
    pub fn new(p: u32, logp: LogP) -> Cluster {
        Cluster::with_config(p, logp, ClusterConfig::new())
    }

    /// A cluster of `p` ranks with explicit tunables.
    pub fn with_config(p: u32, logp: LogP, cfg: ClusterConfig) -> Cluster {
        assert!(p >= 1);
        let workers = cfg.threads.clamp(1, p as usize);
        let capacity = cfg.mailbox_capacity.max(1);
        // The sampler only reads the hub, so it can start before the
        // workers exist; its clock is the cluster's lifetime.
        let sampler = match (&cfg.telemetry, cfg.sample) {
            (Some(hub), Some(interval)) => Some(Sampler::spawn(
                Arc::clone(hub),
                "cluster",
                interval,
                DEFAULT_SERIES_CAP,
                HealthConfig::default(),
            )),
            _ => None,
        };
        let ranks = (0..p)
            .map(|_| RankCell {
                scheduled: AtomicBool::new(false),
                mailbox: Mutex::new(Mailbox::new(capacity)),
                state: Mutex::new(RankState {
                    iters: Vec::new(),
                    pending: Vec::new(),
                    last_installed: 0,
                    last_poll_us: None,
                }),
            })
            .collect();
        let shared = Arc::new(Shared {
            ranks,
            sched: Mutex::new(Sched {
                runq: VecDeque::with_capacity(p as usize),
                timers: TimerWheel::new(),
                shutdown: false,
            }),
            sched_cv: Condvar::new(),
            base: Instant::now(),
            workers,
            telemetry: cfg.telemetry,
            flight: cfg
                .flight
                .map(|cap| Arc::new(FlightRecorder::new(workers + 1, cap))),
        });
        let (coord_tx, from_workers) = unbounded::<CoordMsg>();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let coord = coord_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ct-worker-{i}"))
                    .spawn(move || worker_main(shared, coord, i))
                    .expect("spawn worker thread"),
            );
        }
        // Workers own the only senders: when every worker has exited,
        // the coordinator's receiver disconnects.
        drop(coord_tx);
        Cluster {
            p,
            logp,
            shared,
            from_workers,
            handles,
            next_id: 1,
            timeout: cfg.timeout,
            procs: Vec::with_capacity(p as usize),
            postmortem_path: cfg.postmortem,
            sampler,
        }
    }

    /// The continuous sampler's shared store — the live series ring
    /// plus health log behind the `/series.jsonl` and `/health`
    /// endpoints. `None` unless [`ClusterConfig::sample`] and
    /// [`ClusterConfig::telemetry`] are both set.
    pub fn series(&self) -> Option<Arc<SeriesStore>> {
        self.sampler.as_ref().map(Sampler::store)
    }

    /// Number of ranks.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Change the per-iteration completion deadline (default 30 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Run one broadcast of `factory`'s protocol with `dead` marking
    /// emulated crash failures. The protocol's initiating rank (rank 0,
    /// or `BroadcastSpec::root` for rotated broadcasts) must be alive —
    /// a dead initiator simply times out with nobody colored.
    pub fn run_broadcast(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
    ) -> Result<RunReport, ClusterError> {
        self.run_broadcast_observed(factory, dead, seed, &mut NullSink)
    }

    /// Like [`Cluster::run_broadcast`], additionally returning the
    /// iteration's raw observability events — the input `ct-analyze`
    /// consumes for causal-path analysis of real (wall-clock) runs.
    pub fn run_broadcast_traced(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
    ) -> Result<(RunReport, Vec<ObsEvent>), ClusterError> {
        let mut sink = ct_obs::VecSink::new();
        let report = self.run_broadcast_observed(factory, dead, seed, &mut sink)?;
        Ok((report, sink.events))
    }

    /// Like [`Cluster::run_broadcast`], additionally streaming the
    /// iteration's observability events into `sink` — the same schema
    /// the simulator emits, each event stamped with both logical time
    /// (microseconds since the iteration epoch; the clock the protocol
    /// state machines see) and wall-clock microseconds.
    ///
    /// Recording is decided once per iteration from
    /// [`EventSink::enabled`]: with a disabled sink (the default
    /// [`NullSink`]) workers buffer nothing and the iteration behaves
    /// exactly like an unobserved one. Events are buffered per rank and
    /// merged time-sorted after the iteration, so observation adds no
    /// cross-thread traffic on the hot path.
    pub fn run_broadcast_observed(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
        sink: &mut dyn EventSink,
    ) -> Result<RunReport, ClusterError> {
        let result = self.run_observed_inner(factory, dead, seed, sink);
        if let Err(ClusterError::WorkerPanicked) = &result {
            // The black box outlives the crash: freeze the rings and
            // dump whatever the workers managed to record before dying.
            let _ = self.capture_postmortem("worker_panic", None);
        }
        result
    }

    fn run_observed_inner(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
        sink: &mut dyn EventSink,
    ) -> Result<RunReport, ClusterError> {
        assert_eq!(dead.len(), self.p as usize);
        let record = sink.enabled();
        let id = self.next_id;
        self.next_id += 1;
        let ctx = BuildCtx {
            p: self.p,
            logp: self.logp,
            seed,
        };
        factory.build_into(&ctx, &mut self.procs)?;
        assert_eq!(self.procs.len(), self.p as usize);

        let live: u32 = dead.iter().filter(|&&d| !d).count() as u32;
        // Mark the health log so this iteration's report carries only
        // events fired from here on; publish the iteration gauges the
        // stall-precursor rule reads ("iteration installed, these many
        // live ranks, none colored yet").
        let health_mark = self.sampler.as_ref().map(|s| s.store().events_len());
        if let Some(t) = &self.shared.telemetry {
            t.set_iter_progress(u64::from(live), 0);
            t.set_iter_active(1);
        }
        // The iteration epoch: zero point of event timestamps AND of
        // the latency measurement, taken before any rank is installed
        // so the two clocks agree.
        let epoch = Instant::now();
        let epoch_us = epoch.duration_since(self.shared.base).as_micros() as u64;
        for rank in (0..self.p).rev() {
            let process = self.procs.pop().expect("one per rank");
            let mut st = self.shared.ranks[rank as usize]
                .state
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            debug_assert!(st.iters.is_empty(), "single-broadcast mode is exclusive");
            st.iters.push(IterState {
                id,
                process,
                dead: dead[rank as usize],
                epoch,
                epoch_us,
                record,
                sent: 0,
                notified: false,
                done_notified: false,
                events: Vec::new(),
            });
            st.pending.clear();
            st.last_installed = id;
            st.last_poll_us = None;
            // The mailbox is NOT cleared here: the previous harvest
            // already emptied it, and a rank installed earlier in this
            // loop may legitimately have started sending to this one.
        }
        // Make every rank runnable for its initial protocol poll only
        // once all of them are installed, so no quantum can outrun a
        // peer's installation. The enqueue is deliberately
        // *unconditional*: eliding it when `scheduled` is already true
        // would race with a stale quantum that observed `iter == None`
        // before the install and is about to clear the flag and return
        // without doing any work — the initial poll would be lost and
        // the iteration would stall. A duplicate run-queue entry (the
        // rank was already queued by a straggler wake-up) only costs a
        // harmless extra quantum.
        {
            let mut sched = self
                .shared
                .sched
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            for rank in 0..self.p {
                self.shared.ranks[rank as usize]
                    .scheduled
                    .store(true, Ordering::SeqCst);
                sched.runq.push_back(rank);
            }
        }
        self.shared.sched_cv.notify_all();
        if let Some(f) = self.shared.flight.as_deref() {
            // The coordinator owns the extra shard past the workers.
            f.record(self.shared.workers, Fk::IterStart, NO_RANK, id, 0, epoch_us);
        }

        let deadline = epoch + self.timeout;
        let mut colored = vec![false; self.p as usize];
        let mut colored_count = 0u32;
        let mut completed = false;
        let mut latency = self.timeout;
        while colored_count < live {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.from_workers.recv_timeout(remaining) {
                Ok(CoordMsg::Colored { id: mid, ranks }) if mid == id => {
                    for rank in ranks {
                        if !colored[rank as usize] {
                            colored[rank as usize] = true;
                            colored_count += 1;
                        }
                    }
                    // One relaxed store per coordinator batch keeps the
                    // progress gauge fresh for the sampler.
                    if let Some(t) = &self.shared.telemetry {
                        t.set_iter_progress(u64::from(live), u64::from(colored_count));
                    }
                }
                Ok(_) => {} // stale notification from a previous iteration
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::WorkerPanicked),
            }
        }
        if colored_count == live {
            completed = true;
            latency = epoch.elapsed();
        }
        // Diagnose a stall *before* teardown wipes the evidence: the
        // stranded ranks' scheduled flags, mailboxes and last-poll
        // stamps still describe the stuck state at this point.
        let stall = if completed {
            None
        } else {
            Some(self.stall_report(id, dead, &colored, colored_count, live, epoch, epoch_us)?)
        };
        // Freeze the flight recorder and bundle the dump while the
        // evidence is fresh; on completed iterations, stamp the
        // iteration end instead (a no-op once frozen by an earlier
        // stall in the same cluster's lifetime).
        let postmortem = match &stall {
            Some(report) => self.capture_postmortem("watchdog_stall", Some(report)),
            None => None,
        };
        if let Some(f) = self.shared.flight.as_deref() {
            f.record(
                self.shared.workers,
                Fk::IterEnd,
                NO_RANK,
                u64::from(completed),
                latency.as_micros() as u64,
                self.shared.now_us(),
            );
        }
        // The iteration is over (one way or the other): retire the
        // gauges — after the postmortem capture, so a stalled run's
        // final samples still describe the wedge — and harvest the
        // events this iteration fired.
        if let Some(t) = &self.shared.telemetry {
            t.set_iter_progress(u64::from(live), u64::from(colored_count));
            t.set_iter_active(0);
        }
        let health = match (&self.sampler, health_mark) {
            (Some(s), Some(mark)) => s.store().events_from(mark),
            _ => Vec::new(),
        };

        // Tear down: reclaim each rank's protocol slot and harvest its
        // message count and event buffer directly. Locking the state
        // waits out any in-flight quantum on that rank; once `iter` is
        // taken, later quanta see a stale rank and do nothing.
        let mut messages = 0u64;
        let mut recorded: Vec<ObsEvent> = Vec::new();
        for rank in 0..self.p {
            let cell = &self.shared.ranks[rank as usize];
            let mut st = cell
                .state
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            let mut iter = st.iters.pop().expect("iteration installed");
            debug_assert!(st.iters.is_empty(), "single-broadcast mode is exclusive");
            messages += iter.sent;
            recorded.append(&mut iter.events);
            drop(st);
            self.procs.push(iter.process);
            cell.mailbox
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?
                .clear();
        }
        // Drop wake-ups the dead iteration left behind; a straggler
        // flushed after this point only triggers a harmless no-op
        // quantum.
        self.shared
            .sched
            .lock()
            .map_err(|_| ClusterError::WorkerPanicked)?
            .timers
            .clear();

        if record {
            // Per-rank buffers are harvested in rank order, so
            // cross-rank events stamped in the same microsecond would
            // otherwise interleave arbitrarily — an `Arrive` could
            // surface before its `SendStart`. Sorting by
            // `(time, order_class)` restores cause-before-effect at
            // equal timestamps (send < arrive < deliver < colored) and
            // the stable sort keeps each rank's own in-order stream
            // intact. `MonitorSink` applies the same key before
            // checking cross-rank invariants, so either layer alone
            // suffices; doing it here also makes recorded cluster
            // traces deterministic for diffing.
            recorded.sort_by_key(|e| (e.time, e.kind.order_class()));
            let end = recorded.last().map_or(Time::ZERO, |e| e.time);
            sink.emit(&ObsEvent::wall(
                Time::ZERO,
                0,
                ObsEventKind::PhaseBegin {
                    name: phases::BROADCAST.into(),
                },
            ));
            for e in &recorded {
                sink.emit(e);
            }
            sink.emit(&ObsEvent::wall(
                end,
                end.steps(),
                ObsEventKind::PhaseEnd {
                    name: phases::BROADCAST.into(),
                },
            ));
        }

        let uncolored = colored
            .iter()
            .zip(dead)
            .enumerate()
            .filter_map(|(r, (&c, &d))| (!c && !d).then_some(r as Rank))
            .collect();
        Ok(RunReport {
            latency,
            uncolored,
            messages,
            completed,
            stall,
            postmortem,
            health,
        })
    }

    /// Assemble the watchdog's [`StallReport`] for iteration `id`: one
    /// [`RankStall`] per live-but-uncolored rank plus global scheduler
    /// state. Called with the stalled iteration still installed, so the
    /// evidence (flags, mailboxes, last-poll stamps) is intact; the
    /// system is stuck, so the brief per-rank lock holds cannot perturb
    /// a healthy run.
    #[allow(clippy::too_many_arguments)]
    fn stall_report(
        &self,
        id: u64,
        dead: &[bool],
        colored: &[bool],
        colored_count: u32,
        live: u32,
        epoch: Instant,
        epoch_us: u64,
    ) -> Result<StallReport, ClusterError> {
        let (runq_depth, pending_timers) = {
            let sched = self
                .shared
                .sched
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            (sched.runq.len(), sched.timers.len())
        };
        let mut ranks = Vec::new();
        for rank in 0..self.p {
            let r = rank as usize;
            if dead[r] || colored[r] {
                continue;
            }
            let cell = &self.shared.ranks[r];
            let last_poll_us = cell
                .state
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?
                .last_poll_us;
            let scheduled = cell.scheduled.load(Ordering::SeqCst);
            let mb = cell
                .mailbox
                .lock()
                .map_err(|_| ClusterError::WorkerPanicked)?;
            ranks.push(RankStall {
                rank,
                scheduled,
                mailbox_len: mb.len(),
                mailbox_spilled: mb.spilled(),
                last_poll_us,
            });
        }
        Ok(StallReport {
            id,
            timeout_ms: self.timeout.as_millis() as u64,
            p: self.p,
            live,
            colored: colored_count,
            runq_depth,
            pending_timers,
            coord_in_flight: self.from_workers.len(),
            now_us: epoch.elapsed().as_micros() as u64,
            epoch_us,
            ranks,
        })
    }

    /// Freeze the flight recorder and bundle a [`Postmortem`]: the
    /// given `reason` (`watchdog_stall`, `worker_panic`,
    /// `monitor_violation`), the stall report when the failure was a
    /// stall, a telemetry snapshot when a hub is attached, the health
    /// precursor timeline when a sampler is attached, and the frozen
    /// rings. Written to [`ClusterConfig::postmortem`] when a
    /// path is configured. Returns `None` without a flight recorder
    /// ([`ClusterConfig::flight`]); recording never resumes afterwards
    /// — the black box keeps the crash evidence for the process
    /// lifetime of this cluster.
    pub fn capture_postmortem(
        &self,
        reason: &str,
        stall: Option<&StallReport>,
    ) -> Option<Postmortem> {
        let recorder = self.shared.flight.as_deref()?;
        recorder.freeze();
        let pm = Postmortem {
            reason: reason.to_owned(),
            p: self.p,
            stall: stall.cloned(),
            telemetry: self
                .shared
                .telemetry
                .as_ref()
                .map(|hub| hub.snapshot().with_source("cluster")),
            // The precursor timeline: everything the health engine
            // fired over this cluster's lifetime, stall precursors
            // included — fired windows before the watchdog gave up.
            health: self
                .sampler
                .as_ref()
                .map(|s| s.store().events())
                .unwrap_or_default(),
            flight: recorder.dump(),
        };
        if let Some(path) = &self.postmortem_path {
            if let Err(e) = pm.write(path) {
                eprintln!("ct: failed to write postmortem {}: {e}", path.display());
            }
        }
        Some(pm)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Ok(mut sched) = self.shared.sched.lock() {
            sched.shutdown = true;
        }
        self.shared.sched_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Microseconds since the iteration epoch, as protocol [`Time`].
fn now_since(epoch: Instant) -> Time {
    Time::new(epoch.elapsed().as_micros() as u64)
}

/// Scheduler loop: claim a batch of runnable ranks (servicing the timer
/// wheel while idle), drive a quantum per rank, flush batched effects.
///
/// `widx` names this worker's telemetry shard; with no hub attached
/// every instrumented path reduces to one `Option` branch.
fn worker_main(shared: Arc<Shared>, coord: Sender<CoordMsg>, widx: usize) {
    let tel = shared.telemetry.clone();
    let tel = tel.as_deref();
    let fl = shared.flight.clone();
    let fl = fl.as_deref();
    let mut scratch = Scratch::default();
    let mut batch: Vec<Rank> = Vec::with_capacity(MAX_BATCH);
    loop {
        batch.clear();
        {
            let mut sched = match shared.sched.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            loop {
                if sched.shutdown {
                    return;
                }
                let now = shared.now_us();
                scratch.due.clear();
                let cascaded = sched.timers.expire(now, &mut scratch.due);
                if let Some(t) = tel {
                    if cascaded > 0 {
                        t.add(widx, Tc::TimerCascades, cascaded);
                    }
                    if !scratch.due.is_empty() {
                        t.add(widx, Tc::TimerFires, scratch.due.len() as u64);
                    }
                }
                for &rank in &scratch.due {
                    if let Some(f) = fl {
                        f.record(widx, Fk::TimerFire, rank, 0, 0, now);
                    }
                    if !shared.ranks[rank as usize]
                        .scheduled
                        .swap(true, Ordering::SeqCst)
                    {
                        sched.runq.push_back(rank);
                    }
                }
                if !sched.runq.is_empty() {
                    break;
                }
                match sched.timers.next_deadline() {
                    Some(d) => {
                        // Cap the sleep so a far-future deadline still
                        // re-checks shutdown/wake state periodically.
                        let wait_us = d.saturating_sub(now).clamp(1, 1_000_000);
                        match shared
                            .sched_cv
                            .wait_timeout(sched, Duration::from_micros(wait_us))
                        {
                            Ok((g, _)) => sched = g,
                            Err(_) => return,
                        }
                    }
                    None => match shared.sched_cv.wait(sched) {
                        Ok(g) => sched = g,
                        Err(_) => return,
                    },
                }
            }
            // Claim a fair share of the queue in one lock acquisition.
            if let Some(t) = tel {
                t.observe(widx, Td::RunqDepth, sched.runq.len() as u64);
                t.set_runq_depth(sched.runq.len() as u64);
                t.set_timers_pending(sched.timers.len() as u64);
            }
            let share = sched
                .runq
                .len()
                .div_ceil(shared.workers)
                .clamp(1, MAX_BATCH);
            for _ in 0..share {
                match sched.runq.pop_front() {
                    Some(rank) => batch.push(rank),
                    None => break,
                }
            }
        }
        if let Some(t) = tel {
            t.inc(widx, Tc::SchedBatches);
            t.observe(widx, Td::BatchSize, batch.len() as u64);
        }
        for &rank in &batch {
            let quantum_start = tel.map(|_| Instant::now());
            if run_quantum(&shared, rank, &mut scratch, tel, fl, widx).is_err() {
                // Another worker panicked; the coordinator will surface
                // WorkerPanicked and the cluster is unrecoverable.
                // Still flush best-effort so ranks whose wake-up CAS
                // was already won are not abandoned scheduled=true with
                // no run-queue entry, should poisoning ever be made
                // survivable.
                let _ = flush(&shared, &coord, &mut scratch, tel, fl, widx);
                return;
            }
            if let (Some(t), Some(start)) = (tel, quantum_start) {
                let us = start.elapsed().as_micros() as u64;
                t.inc(widx, Tc::SchedQuanta);
                t.add(widx, Tc::SchedBusyUs, us);
                t.observe(widx, Td::QuantumUs, us);
            }
        }
        if flush(&shared, &coord, &mut scratch, tel, fl, widx).is_err() {
            return;
        }
    }
}

/// Drive one rank for a quantum: drain its mailbox, deliver current-id
/// messages, poll the protocol for sends, report coloring. Effects that
/// need shared locks (wake-ups, timers, coordinator traffic) accumulate
/// in `scratch` and are flushed once per batch.
fn run_quantum(
    shared: &Shared,
    rank: Rank,
    scratch: &mut Scratch,
    tel: Option<&TelemetryHub>,
    fl: Option<&FlightRecorder>,
    widx: usize,
) -> Result<(), Poisoned> {
    let cell = &shared.ranks[rank as usize];
    let mut guard = cell.state.lock().map_err(|_| Poisoned)?;
    let st = &mut *guard;
    if st.iters.is_empty() {
        // Stale wake-up between iterations: the mailbox is left alone
        // (it may hold early traffic of an iteration being installed;
        // the coordinator schedules every rank once installation is
        // done) and the quantum does no work. Clearing the flag gets
        // the same recheck as the normal end-of-quantum path: an
        // install or a message that raced in while this quantum held
        // the flag may have elided its enqueue on the strength of it,
        // so if state or mailbox turn out non-empty now, this quantum
        // must take the wake-up back or the rank sleeps forever.
        drop(guard);
        if let Some(t) = tel {
            t.inc(widx, Tc::SchedStaleQuanta);
        }
        if let Some(f) = fl {
            f.record(widx, Fk::StaleQuantum, rank, 0, 0, shared.now_us());
        }
        cell.scheduled.store(false, Ordering::SeqCst);
        let installed = !cell.state.lock().map_err(|_| Poisoned)?.iters.is_empty();
        if (installed || !cell.mailbox.lock().map_err(|_| Poisoned)?.is_empty())
            && !cell.scheduled.swap(true, Ordering::SeqCst)
        {
            scratch.wakes.push(rank);
            if let Some(t) = tel {
                t.inc(widx, Tc::SchedRechecks);
                t.inc(widx, Tc::SchedWakes);
            }
            if let Some(f) = fl {
                f.record(widx, Fk::Recheck, rank, 0, 0, shared.now_us());
            }
        }
        return Ok(());
    }
    // Always-on and cheap (one Instant read per quantum): the stamp the
    // watchdog's StallReport ages stranded ranks by.
    let poll_us = shared.now_us();
    st.last_poll_us = Some(poll_us);
    // One quantum serves every iteration installed on this rank. The
    // flight record names the broadcast when there is exactly one (the
    // single-broadcast invariant) and 0 for a multiplexed quantum; its
    // step is measured from the oldest installed epoch.
    let quantum_aux = if st.iters.len() == 1 {
        st.iters[0].id
    } else {
        0
    };
    let oldest_epoch_us = st.iters.iter().map(|i| i.epoch_us).min().unwrap_or(0);
    if let Some(f) = fl {
        f.record(
            widx,
            Fk::QuantumStart,
            rank,
            quantum_aux,
            poll_us.saturating_sub(oldest_epoch_us),
            poll_us,
        );
    }

    scratch.msgs.clear();
    let drained = cell
        .mailbox
        .lock()
        .map_err(|_| Poisoned)?
        .drain_into(&mut scratch.msgs, usize::MAX);
    if drained > 0 {
        if let Some(f) = fl {
            f.record(widx, Fk::MailboxDrain, rank, drained as u64, 0, poll_us);
        }
    }
    if let Some(t) = tel {
        t.observe(widx, Td::MailboxDrained, drained as u64);
    }

    // Route every queued message — earlier-quantum leftovers first so
    // per-channel FIFO order survives a topic's late installation, then
    // this drain, in arrival order. A message either matches an
    // installed iteration (delivered, or observably dropped on a dead
    // rank), outruns installation (a peer of a topic being admitted got
    // ahead of this rank's install; parked in `pending` until the
    // admitting coordinator's enqueue-all lands), or is stale (its
    // iteration already retired) and is discarded.
    let parked = std::mem::take(&mut st.pending);
    let routed = std::mem::take(&mut scratch.msgs);
    let mut delivered = 0u64;
    let mut stale_dropped = 0u64;
    for &m in parked.iter().chain(routed.iter()) {
        match st.iters.iter_mut().find(|i| i.id == m.id) {
            Some(iter) => {
                bump_progress(&mut scratch.progress, m.id, 0, 1, 0);
                let now = now_since(iter.epoch);
                if iter.dead {
                    // Crash emulation: drop the message, but observably.
                    if iter.record {
                        iter.events.push(ObsEvent::wall(
                            now,
                            now.steps(),
                            ObsEventKind::DropDead {
                                from: m.from,
                                to: rank,
                                payload: m.payload,
                            },
                        ));
                    }
                } else {
                    delivered += 1;
                    if iter.record {
                        iter.events.push(ObsEvent::wall(
                            now,
                            now.steps(),
                            ObsEventKind::Arrive {
                                from: m.from,
                                to: rank,
                                payload: m.payload,
                            },
                        ));
                    }
                    iter.process.on_message(m.from, m.payload, now);
                    if iter.record {
                        let done = now_since(iter.epoch);
                        iter.events.push(ObsEvent::wall(
                            done,
                            done.steps(),
                            ObsEventKind::Deliver {
                                from: m.from,
                                to: rank,
                                payload: m.payload,
                            },
                        ));
                    }
                }
            }
            None if m.id > st.last_installed => st.pending.push(m),
            None => stale_dropped += 1,
        }
    }
    scratch.msgs = routed;
    scratch.msgs.clear();
    if let Some(t) = tel {
        t.add(widx, Tc::MsgsStaleDropped, stale_dropped);
        t.add(widx, Tc::MsgsDelivered, delivered);
    }

    // Drive each installed protocol as far as it goes right now.
    for idx in 0..st.iters.len() {
        let iter = &mut st.iters[idx];
        if iter.dead {
            continue;
        }
        let sent_before = iter.sent;
        let mut machine_done = false;
        loop {
            let now = now_since(iter.epoch);
            match iter.process.poll_send(now) {
                SendPoll::Now { to, payload } => {
                    iter.sent += 1;
                    if iter.record {
                        iter.events.push(ObsEvent::wall(
                            now,
                            now.steps(),
                            ObsEventKind::SendStart {
                                from: rank,
                                to,
                                payload,
                            },
                        ));
                    }
                    let peer = &shared.ranks[to as usize];
                    {
                        let mut mb = peer.mailbox.lock().map_err(|_| Poisoned)?;
                        let spilled = mb.push(Msg {
                            id: iter.id,
                            from: rank,
                            payload,
                        });
                        if let Some(t) = tel {
                            t.inc(widx, Tc::MsgsSent);
                            t.inc(widx, Tc::MailboxPushes);
                            if spilled {
                                t.inc(widx, Tc::MailboxSpills);
                            }
                            t.mailbox_depth(to as usize, mb.len() as u64);
                        }
                        if let Some(f) = fl {
                            // aux packs broadcast id and pusher: the
                            // black box can answer "who last fed this
                            // mailbox, on behalf of which topic".
                            f.record(
                                widx,
                                Fk::MailboxPush,
                                to,
                                (iter.id << 32) | u64::from(rank),
                                now.steps(),
                                iter.epoch_us.saturating_add(now.steps()),
                            );
                        }
                    }
                    if !peer.scheduled.swap(true, Ordering::SeqCst) {
                        scratch.wakes.push(to);
                        if let Some(t) = tel {
                            t.inc(widx, Tc::SchedWakes);
                        }
                        if let Some(f) = fl {
                            f.record(
                                widx,
                                Fk::Wake,
                                to,
                                u64::from(rank),
                                now.steps(),
                                iter.epoch_us.saturating_add(now.steps()),
                            );
                        }
                    }
                }
                SendPoll::WaitUntil(t) => {
                    if !t.is_never() {
                        // Always arm, no dedup: a timer consumed by a
                        // coinciding message wake must be replaceable,
                        // and a stale duplicate only costs a harmless
                        // extra poll.
                        let deadline_us = iter.epoch_us.saturating_add(t.steps());
                        scratch.timers.push((deadline_us, rank));
                        if let Some(hub) = tel {
                            hub.inc(widx, Tc::TimerArms);
                        }
                        if let Some(f) = fl {
                            f.record(
                                widx,
                                Fk::TimerArm,
                                rank,
                                deadline_us,
                                t.steps(),
                                iter.epoch_us.saturating_add(now.steps()),
                            );
                        }
                    }
                    break;
                }
                SendPoll::Done => {
                    machine_done = true;
                    break;
                }
                SendPoll::Idle => break,
            }
        }
        if !iter.notified && iter.process.colored_at().is_some() {
            iter.notified = true;
            if iter.record {
                if let (Some(at), Some(via)) =
                    (iter.process.colored_at(), iter.process.colored_via())
                {
                    iter.events.push(ObsEvent::wall(
                        at,
                        now_since(iter.epoch).steps(),
                        ObsEventKind::Colored { rank, via },
                    ));
                }
            }
            scratch.colored.push((iter.id, rank));
        }
        let done_delta = if machine_done && !iter.done_notified {
            iter.done_notified = true;
            1
        } else {
            0
        };
        bump_progress(
            &mut scratch.progress,
            iter.id,
            iter.sent - sent_before,
            0,
            done_delta,
        );
    }
    if let Some(f) = fl {
        let end_us = shared.now_us();
        f.record(
            widx,
            Fk::QuantumEnd,
            rank,
            quantum_aux,
            end_us.saturating_sub(oldest_epoch_us),
            end_us,
        );
    }
    drop(guard);

    // Clear the flag, then recheck: a sender that saw `scheduled` still
    // true during the quantum skipped the enqueue, so any message that
    // raced in must be picked up here or it would sleep forever.
    cell.scheduled.store(false, Ordering::SeqCst);
    if !cell.mailbox.lock().map_err(|_| Poisoned)?.is_empty()
        && !cell.scheduled.swap(true, Ordering::SeqCst)
    {
        scratch.wakes.push(rank);
        if let Some(t) = tel {
            t.inc(widx, Tc::SchedRechecks);
            t.inc(widx, Tc::SchedWakes);
        }
        if let Some(f) = fl {
            f.record(widx, Fk::Recheck, rank, 0, 0, shared.now_us());
        }
    }
    Ok(())
}

/// Flush a batch's accumulated effects: one coordinator send per
/// iteration id and one scheduler-lock acquisition for wake-ups and
/// timer arms.
fn flush(
    shared: &Shared,
    coord: &Sender<CoordMsg>,
    scratch: &mut Scratch,
    tel: Option<&TelemetryHub>,
    fl: Option<&FlightRecorder>,
    widx: usize,
) -> Result<(), Poisoned> {
    if !scratch.colored.is_empty() {
        scratch.colored.sort_unstable_by_key(|&(id, _)| id);
        let mut i = 0;
        while i < scratch.colored.len() {
            let id = scratch.colored[i].0;
            let mut ranks = Vec::new();
            while i < scratch.colored.len() && scratch.colored[i].0 == id {
                ranks.push(scratch.colored[i].1);
                i += 1;
            }
            if let Some(t) = tel {
                t.inc(widx, Tc::CoordBatches);
                t.add(widx, Tc::CoordColored, ranks.len() as u64);
                t.observe(widx, Td::CoordBatchSize, ranks.len() as u64);
            }
            if let Some(f) = fl {
                f.record(
                    widx,
                    Fk::CoordBatch,
                    NO_RANK,
                    ranks.len() as u64,
                    id,
                    shared.now_us(),
                );
            }
            // The interconnect is reliable: a send only fails if the
            // whole cluster is shutting down.
            let _ = coord.send(CoordMsg::Colored { id, ranks });
        }
        scratch.colored.clear();
    }
    // Quiescence deltas, one send per in-flight broadcast (already
    // merged by id at accumulation time). The single-broadcast
    // coordinator discards these; the pub/sub coordinator retires a
    // topic once its accumulated counts balance.
    for &(id, sent, consumed, done) in &scratch.progress {
        let _ = coord.send(CoordMsg::Progress {
            id,
            sent,
            consumed,
            done,
        });
    }
    scratch.progress.clear();
    if !scratch.wakes.is_empty() || !scratch.timers.is_empty() {
        {
            let mut sched = shared.sched.lock().map_err(|_| Poisoned)?;
            for &(deadline_us, rank) in &scratch.timers {
                sched.timers.insert(deadline_us, rank);
            }
            sched.runq.extend(scratch.wakes.drain(..));
        }
        scratch.timers.clear();
        shared.sched_cv.notify_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::correction::CorrectionKind;
    use ct_core::protocol::BroadcastSpec;
    use ct_core::tree::TreeKind;

    fn no_faults(p: u32) -> Vec<bool> {
        vec![false; p as usize]
    }

    #[test]
    fn fault_free_binomial_completes() {
        let mut cluster = Cluster::new(32, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(32), 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
        assert!(report.uncolored.is_empty());
        assert_eq!(report.messages, 31);
    }

    #[test]
    fn corrected_tree_heals_crashed_ranks() {
        let p = 64;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let mut dead = no_faults(p);
        dead[1] = true;
        dead[2] = true;
        dead[33] = true;
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn plain_tree_with_crash_times_out_and_reports_orphans() {
        let p = 16;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        cluster.set_timeout(Duration::from_millis(200));
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let mut dead = no_faults(p);
        dead[1] = true; // orphan subtree {1,3,5,7,9,11,13,15}
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(!report.completed);
        assert_eq!(report.uncolored, vec![3, 5, 7, 9, 11, 13, 15]);
        // The watchdog names exactly the stranded ranks, with evidence.
        let stall = report.stall.expect("incomplete run carries a stall report");
        assert_eq!(stall.stranded(), report.uncolored);
        assert_eq!(stall.p, p);
        assert_eq!(stall.live, 15);
        assert_eq!(stall.colored, 8);
        assert_eq!(stall.timeout_ms, 200);
        for r in &stall.ranks {
            // Orphans under a dead parent legitimately have nothing to
            // do: polled once, empty mailbox, descheduled.
            assert!(!r.scheduled, "rank {}", r.rank);
            assert_eq!(r.mailbox_len, 0, "rank {}", r.rank);
            assert!(r.last_poll_us.is_some(), "rank {}", r.rank);
        }
        let text = stall.render_text();
        assert!(text.contains("rank     3"), "{text}");
    }

    #[test]
    fn completed_run_has_no_stall_report() {
        let mut cluster = Cluster::new(8, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(8), 0).unwrap();
        assert!(report.completed);
        assert!(report.stall.is_none());
    }

    #[test]
    fn watchdog_ms_parsing() {
        assert_eq!(parse_watchdog_ms(None), 30_000);
        assert_eq!(parse_watchdog_ms(Some("250")), 250);
        assert_eq!(parse_watchdog_ms(Some(" 1000 ")), 1000);
        assert_eq!(parse_watchdog_ms(Some("0")), 30_000);
        assert_eq!(parse_watchdog_ms(Some("lots")), 30_000);
    }

    #[test]
    fn iterations_are_isolated() {
        let p = 16;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::Opportunistic { distance: 2 },
        );
        for i in 0..10 {
            let report = cluster.run_broadcast(&spec, &no_faults(p), i).unwrap();
            assert!(report.completed, "iteration {i}");
            // All 15 tree messages must flow each iteration; correction
            // sends may be truncated by the teardown (latency is the
            // metric here, as in the paper's cluster experiments) but
            // can never exceed the protocol's deterministic total of
            // 16·2d. Any cross-iteration leakage would break these
            // bounds.
            assert!(
                (15..=15 + 16 * 4).contains(&report.messages),
                "iteration {i}: {} messages",
                report.messages
            );
        }
    }

    #[test]
    fn rotated_root_broadcast_completes_on_the_cluster() {
        let p = 32;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 2 },
        )
        .with_root(19);
        // Physical rank 0 may even be dead — it is not the root here.
        let mut dead = no_faults(p);
        dead[0] = true;
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn shuffled_numbering_broadcast_completes_on_the_cluster() {
        let p = 64;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(TreeKind::LAME2, CorrectionKind::Checked)
            .with_shuffle(0xBEEF);
        let mut dead = no_faults(p);
        for r in [8u32, 9, 10, 11] {
            dead[r as usize] = true; // a correlated block
        }
        for seed in 0..3 {
            let report = cluster.run_broadcast(&spec, &dead, seed).unwrap();
            assert!(report.completed, "seed {seed}: {:?}", report.uncolored);
        }
    }

    #[test]
    fn rapid_reiteration_never_strands_a_rank() {
        // Regression for a lost-wakeup race at iteration start: a stale
        // quantum that observed `iter == None` before the install could
        // clear `scheduled` *after* the start path had already elided
        // its enqueue on the strength of the flag, leaving an installed
        // rank outside the run queue with its initial poll lost — the
        // iteration then stalled to the watchdog. Back-to-back
        // iterations with correction traffic (truncated by teardown, so
        // straggler wake-ups land inside the next install window)
        // maximize the window.
        let cfg = ClusterConfig::new().threads(2);
        let mut cluster = Cluster::with_config(16, LogP::PAPER, cfg);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::Opportunistic { distance: 2 },
        );
        for i in 0..200 {
            let report = cluster.run_broadcast(&spec, &no_faults(16), i).unwrap();
            assert!(report.completed, "iteration {i}: {:?}", report.uncolored);
        }
    }

    #[test]
    fn single_rank_cluster() {
        let mut cluster = Cluster::new(1, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(1), 0).unwrap();
        assert!(report.completed);
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn latency_and_event_timestamps_share_the_epoch_clock() {
        let mut cluster = Cluster::new(16, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let (report, events) = cluster
            .run_broadcast_traced(&spec, &no_faults(16), 0)
            .unwrap();
        assert!(report.completed);
        assert!(!events.is_empty());
        // Latency is measured from the same epoch event timestamps are
        // relative to, so no event — in particular no Colored event —
        // can postdate the reported coloring latency.
        let latency_us = report.latency.as_micros() as u64;
        for e in &events {
            assert!(
                e.time.steps() <= latency_us,
                "event at {} µs after reported latency {} µs: {:?}",
                e.time.steps(),
                latency_us,
                e.kind
            );
            if let Some(w) = e.wall_us {
                assert!(w <= latency_us, "wall stamp after latency");
            }
        }
    }

    #[test]
    fn tiny_mailboxes_backpressure_without_deadlock_or_loss() {
        // Capacity 1 forces every fan-in collision through the spill
        // path; message totals must be exactly those of an uncontended
        // run — nothing dropped, nothing stuck.
        let cfg = ClusterConfig::new().mailbox_capacity(1);
        let mut cluster = Cluster::with_config(64, LogP::PAPER, cfg);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        for seed in 0..3 {
            let report = cluster.run_broadcast(&spec, &no_faults(64), seed).unwrap();
            assert!(report.completed, "seed {seed}: {:?}", report.uncolored);
            assert_eq!(report.messages, 63, "seed {seed}");
        }
        // And with faults + correction traffic on top.
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let mut dead = no_faults(64);
        dead[5] = true;
        dead[6] = true;
        let report = cluster.run_broadcast(&spec, &dead, 7).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn single_worker_drives_many_ranks() {
        let cfg = ClusterConfig::new().threads(1);
        let mut cluster = Cluster::with_config(64, LogP::PAPER, cfg);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::Opportunistic { distance: 2 },
        );
        let mut dead = no_faults(64);
        dead[9] = true;
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn p4096_broadcast_completes_without_thread_per_rank() {
        let p = 4096;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(p), 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
        assert_eq!(report.messages, u64::from(p) - 1);
    }
}
