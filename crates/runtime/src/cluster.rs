//! Worker threads, wire format and the per-broadcast drive loop.
//!
//! A [`Cluster`] owns `P` long-lived worker threads. Each broadcast
//! iteration ships one freshly built protocol state machine to every
//! worker; workers then exchange rank-addressed messages until the
//! coordinator has seen a "colored" notification from every live rank
//! (or times out), sends `Stop`, and collects acknowledgments. Stale
//! messages are discarded by broadcast id, so iterations cannot bleed
//! into one another even with messages still in flight.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ct_core::protocol::{BuildCtx, Payload, Process, ProtocolError, ProtocolFactory, SendPoll};
use ct_logp::{LogP, Rank, Time};
use ct_obs::event::phases;
use ct_obs::{Event as ObsEvent, EventKind as ObsEventKind, EventSink, NullSink};

/// Wire traffic between the coordinator and workers.
enum WorkerMsg {
    /// Begin broadcast `id` with this protocol instance; `dead` workers
    /// emulate a crashed process for the whole iteration. With `record`
    /// set, the worker buffers an observability event per protocol
    /// action and ships the buffer back in its `StopAck`.
    Start {
        id: u64,
        process: Box<dyn Process>,
        dead: bool,
        epoch: Instant,
        record: bool,
    },
    /// Rank-to-rank payload of broadcast `id`.
    Data {
        id: u64,
        from: Rank,
        payload: Payload,
    },
    /// End broadcast `id`; the worker acknowledges and discards state.
    Stop { id: u64 },
    /// Tear the worker down.
    Shutdown,
}

/// Worker → coordinator notifications.
enum CoordMsg {
    /// `rank` became colored in broadcast `id`.
    Colored { id: u64, rank: Rank },
    /// `rank` finished cleaning up broadcast `id`; carries the number of
    /// messages this rank sent during the iteration and, when recording
    /// was requested, the rank's buffered observability events.
    StopAck {
        id: u64,
        rank: Rank,
        sent: u64,
        events: Vec<ObsEvent>,
    },
}

/// Errors from cluster operation.
#[derive(Debug)]
pub enum ClusterError {
    /// The protocol factory failed.
    Protocol(ProtocolError),
    /// A protocol asked for a synchronized wait the cluster cannot hono
    /// r precisely; reported for diagnosis (the drive loop still sleeps).
    WorkerPanicked,
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::Protocol(e) => write!(f, "protocol: {e}"),
            ClusterError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ProtocolError> for ClusterError {
    fn from(e: ProtocolError) -> Self {
        ClusterError::Protocol(e)
    }
}

/// Result of one broadcast iteration on the cluster.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock time from `Start` until the last live rank reported
    /// the payload (coloring latency).
    pub latency: Duration,
    /// Live ranks that never got colored before the timeout (empty on
    /// success).
    pub uncolored: Vec<Rank>,
    /// Total messages sent by all ranks.
    pub messages: u64,
    /// Whether the iteration completed before the deadline.
    pub completed: bool,
}

/// A pool of worker threads emulating a cluster of `P` single-process
/// nodes over a reliable in-memory interconnect.
pub struct Cluster {
    p: u32,
    logp: LogP,
    to_workers: Vec<Sender<WorkerMsg>>,
    from_workers: Receiver<CoordMsg>,
    handles: Vec<JoinHandle<()>>,
    next_id: u64,
    /// Per-iteration completion deadline.
    timeout: Duration,
}

impl Cluster {
    /// Spin up `p` worker threads. `logp` is only forwarded to protocol
    /// factories (tree construction); transport timing is real.
    pub fn new(p: u32, logp: LogP) -> Cluster {
        assert!(p >= 1);
        let mut to_workers = Vec::with_capacity(p as usize);
        let mut worker_rx = Vec::with_capacity(p as usize);
        for _ in 0..p {
            let (tx, rx) = unbounded::<WorkerMsg>();
            to_workers.push(tx);
            worker_rx.push(rx);
        }
        let (coord_tx, from_workers) = unbounded::<CoordMsg>();
        let peers: Arc<Vec<Sender<WorkerMsg>>> = Arc::new(to_workers.clone());
        let mut handles = Vec::with_capacity(p as usize);
        for (rank, rx) in worker_rx.into_iter().enumerate() {
            let peers = Arc::clone(&peers);
            let coord = coord_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ct-rank-{rank}"))
                    .spawn(move || worker_main(rank as Rank, rx, peers, coord))
                    .expect("spawn worker thread"),
            );
        }
        Cluster {
            p,
            logp,
            to_workers,
            from_workers,
            handles,
            next_id: 1,
            // Generous: a completed iteration never waits on it, and a
            // tight default turns CPU contention into spurious
            // incompleteness on oversubscribed machines (CI, 1-core
            // containers running the full test suite).
            timeout: Duration::from_secs(30),
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Change the per-iteration completion deadline (default 30 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Run one broadcast of `factory`'s protocol with `dead` marking
    /// emulated crash failures. The protocol's initiating rank (rank 0,
    /// or `BroadcastSpec::root` for rotated broadcasts) must be alive —
    /// a dead initiator simply times out with nobody colored.
    pub fn run_broadcast(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
    ) -> Result<RunReport, ClusterError> {
        self.run_broadcast_observed(factory, dead, seed, &mut NullSink)
    }

    /// Like [`Cluster::run_broadcast`], additionally returning the
    /// iteration's raw observability events — the input `ct-analyze`
    /// consumes for causal-path analysis of real (wall-clock) runs.
    pub fn run_broadcast_traced(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
    ) -> Result<(RunReport, Vec<ObsEvent>), ClusterError> {
        let mut sink = ct_obs::VecSink::new();
        let report = self.run_broadcast_observed(factory, dead, seed, &mut sink)?;
        Ok((report, sink.events))
    }

    /// Like [`Cluster::run_broadcast`], additionally streaming the
    /// iteration's observability events into `sink` — the same schema
    /// the simulator emits, each event stamped with both logical time
    /// (microseconds since the iteration epoch; the clock the protocol
    /// state machines see) and wall-clock microseconds.
    ///
    /// Recording is decided once per iteration from
    /// [`EventSink::enabled`]: with a disabled sink (the default
    /// [`NullSink`]) workers buffer nothing and the iteration behaves
    /// exactly like an unobserved one. Events are buffered per worker
    /// and merged time-sorted after the iteration, so observation adds
    /// no cross-thread traffic on the hot path.
    pub fn run_broadcast_observed(
        &mut self,
        factory: &dyn ProtocolFactory,
        dead: &[bool],
        seed: u64,
        sink: &mut dyn EventSink,
    ) -> Result<RunReport, ClusterError> {
        assert_eq!(dead.len(), self.p as usize);
        let record = sink.enabled();
        let id = self.next_id;
        self.next_id += 1;
        let ctx = BuildCtx {
            p: self.p,
            logp: self.logp,
            seed,
        };
        let mut processes = factory.build(&ctx)?;
        assert_eq!(processes.len(), self.p as usize);

        let live: u32 = dead.iter().filter(|&&d| !d).count() as u32;
        let epoch = Instant::now();
        // Reverse order so the root receives its Start last: by the time
        // it begins disseminating, everyone else is already listening.
        for rank in (0..self.p).rev() {
            let process = processes.pop().expect("one per rank");
            self.to_workers[rank as usize]
                .send(WorkerMsg::Start {
                    id,
                    process,
                    dead: dead[rank as usize],
                    epoch,
                    record,
                })
                .expect("worker alive");
        }

        let start = Instant::now();
        let deadline = start + self.timeout;
        let mut colored = vec![false; self.p as usize];
        let mut colored_count = 0u32;
        let mut completed = false;
        let mut latency = self.timeout;
        while colored_count < live {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.from_workers.recv_timeout(remaining) {
                Ok(CoordMsg::Colored { id: mid, rank, .. }) if mid == id => {
                    if !colored[rank as usize] {
                        colored[rank as usize] = true;
                        colored_count += 1;
                    }
                }
                Ok(_) => {} // stale notification from a previous iteration
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::WorkerPanicked),
            }
        }
        if colored_count == live {
            completed = true;
            latency = start.elapsed();
        }

        // Tear down the iteration and collect per-rank message counts.
        for tx in &self.to_workers {
            tx.send(WorkerMsg::Stop { id }).expect("worker alive");
        }
        let mut acked = vec![false; self.p as usize];
        let mut acks = 0u32;
        let mut messages = 0u64;
        let mut recorded: Vec<ObsEvent> = Vec::new();
        while acks < self.p {
            match self.from_workers.recv_timeout(Duration::from_secs(10)) {
                Ok(CoordMsg::StopAck {
                    id: mid,
                    rank,
                    sent,
                    events,
                }) if mid == id => {
                    assert!(!acked[rank as usize], "duplicate StopAck from {rank}");
                    acked[rank as usize] = true;
                    acks += 1;
                    messages += sent;
                    recorded.extend(events);
                }
                Ok(_) => {}
                Err(_) => return Err(ClusterError::WorkerPanicked),
            }
        }

        if record {
            // Per-worker buffers arrive in nondeterministic StopAck
            // order, so cross-worker events stamped in the same
            // microsecond would otherwise interleave arbitrarily — an
            // `Arrive` could surface before its `SendStart`. Sorting by
            // `(time, order_class)` restores cause-before-effect at
            // equal timestamps (send < arrive < deliver < colored) and
            // the stable sort keeps each worker's own in-order stream
            // intact. `MonitorSink` applies the same key before
            // checking cross-rank invariants, so either layer alone
            // suffices; doing it here also makes recorded cluster
            // traces deterministic for diffing.
            recorded.sort_by_key(|e| (e.time, e.kind.order_class()));
            let end = recorded.last().map_or(Time::ZERO, |e| e.time);
            sink.emit(&ObsEvent::wall(
                Time::ZERO,
                0,
                ObsEventKind::PhaseBegin {
                    name: phases::BROADCAST.into(),
                },
            ));
            for e in &recorded {
                sink.emit(e);
            }
            sink.emit(&ObsEvent::wall(
                end,
                end.steps(),
                ObsEventKind::PhaseEnd {
                    name: phases::BROADCAST.into(),
                },
            ));
        }

        let uncolored = colored
            .iter()
            .zip(dead)
            .enumerate()
            .filter_map(|(r, (&c, &d))| (!c && !d).then_some(r as Rank))
            .collect();
        Ok(RunReport {
            latency,
            uncolored,
            messages,
            completed,
        })
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Microseconds since the iteration epoch, as protocol [`Time`].
fn now_since(epoch: Instant) -> Time {
    Time::new(epoch.elapsed().as_micros() as u64)
}

/// One in-flight iteration on a worker: `(id, process, dead, epoch, record)`.
type IterState = (u64, Box<dyn Process>, bool, Instant, bool);

fn worker_main(
    rank: Rank,
    rx: Receiver<WorkerMsg>,
    peers: Arc<Vec<Sender<WorkerMsg>>>,
    coord: Sender<CoordMsg>,
) {
    // State of the current iteration, if any.
    let mut cur: Option<IterState> = None;
    let mut sent: u64 = 0;
    let mut notified = false;
    // Observability buffer of the current iteration (when recording);
    // shipped to the coordinator in the StopAck.
    let mut events: Vec<ObsEvent> = Vec::new();
    // Pending protocol-requested wake-up.
    let mut wake_at: Option<Time> = None;

    loop {
        // Drive the protocol as far as it goes right now.
        if let Some((id, process, dead, epoch, record)) = cur.as_mut() {
            if !*dead {
                loop {
                    let now = now_since(*epoch);
                    match process.poll_send(now) {
                        SendPoll::Now { to, payload } => {
                            sent += 1;
                            if *record {
                                events.push(ObsEvent::wall(
                                    now,
                                    now.steps(),
                                    ObsEventKind::SendStart {
                                        from: rank,
                                        to,
                                        payload,
                                    },
                                ));
                            }
                            // The interconnect is reliable: a send only
                            // fails if the whole cluster is shutting down.
                            let _ = peers[to as usize].send(WorkerMsg::Data {
                                id: *id,
                                from: rank,
                                payload,
                            });
                        }
                        SendPoll::WaitUntil(t) => {
                            wake_at = Some(t);
                            break;
                        }
                        SendPoll::Idle | SendPoll::Done => {
                            wake_at = None;
                            break;
                        }
                    }
                }
                if !notified && process.colored_at().is_some() {
                    notified = true;
                    if *record {
                        if let (Some(at), Some(via)) = (process.colored_at(), process.colored_via())
                        {
                            events.push(ObsEvent::wall(
                                at,
                                now_since(*epoch).steps(),
                                ObsEventKind::Colored { rank, via },
                            ));
                        }
                    }
                    let _ = coord.send(CoordMsg::Colored { id: *id, rank });
                }
            }
        }

        // Block for the next message, honoring a pending wake-up.
        let msg = match (&cur, wake_at) {
            (Some((_, _, dead, epoch, _)), Some(at)) if !*dead => {
                let now = now_since(*epoch);
                let sleep = Duration::from_micros(at.steps().saturating_sub(now.steps()));
                match rx.recv_timeout(sleep) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        wake_at = None;
                        continue; // re-poll at the requested time
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            _ => match rx.recv() {
                Ok(m) => m,
                Err(_) => return,
            },
        };

        match msg {
            WorkerMsg::Start {
                id,
                process,
                dead,
                epoch,
                record,
            } => {
                cur = Some((id, process, dead, epoch, record));
                sent = 0;
                notified = false;
                events.clear();
                wake_at = None;
            }
            WorkerMsg::Data { id, from, payload } => {
                if let Some((cid, process, dead, epoch, record)) = cur.as_mut() {
                    if id == *cid {
                        if *dead {
                            // Crash emulation: drop, but observably so.
                            if *record {
                                let now = now_since(*epoch);
                                events.push(ObsEvent::wall(
                                    now,
                                    now.steps(),
                                    ObsEventKind::DropDead {
                                        from,
                                        to: rank,
                                        payload,
                                    },
                                ));
                            }
                        } else {
                            let now = now_since(*epoch);
                            if *record {
                                events.push(ObsEvent::wall(
                                    now,
                                    now.steps(),
                                    ObsEventKind::Arrive {
                                        from,
                                        to: rank,
                                        payload,
                                    },
                                ));
                            }
                            process.on_message(from, payload, now);
                            if *record {
                                let done = now_since(*epoch);
                                events.push(ObsEvent::wall(
                                    done,
                                    done.steps(),
                                    ObsEventKind::Deliver {
                                        from,
                                        to: rank,
                                        payload,
                                    },
                                ));
                            }
                        }
                    }
                    // Stale id: drop silently.
                }
            }
            WorkerMsg::Stop { id } => {
                let matches_current = cur.as_ref().is_some_and(|(cid, ..)| *cid == id);
                if matches_current {
                    cur = None;
                }
                let _ = coord.send(CoordMsg::StopAck {
                    id,
                    rank,
                    sent,
                    events: std::mem::take(&mut events),
                });
                sent = 0;
                wake_at = None;
            }
            WorkerMsg::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::correction::CorrectionKind;
    use ct_core::protocol::BroadcastSpec;
    use ct_core::tree::TreeKind;

    fn no_faults(p: u32) -> Vec<bool> {
        vec![false; p as usize]
    }

    #[test]
    fn fault_free_binomial_completes() {
        let mut cluster = Cluster::new(32, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(32), 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
        assert!(report.uncolored.is_empty());
        assert_eq!(report.messages, 31);
    }

    #[test]
    fn corrected_tree_heals_crashed_ranks() {
        let p = 64;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        let mut dead = no_faults(p);
        dead[1] = true;
        dead[2] = true;
        dead[33] = true;
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn plain_tree_with_crash_times_out_and_reports_orphans() {
        let p = 16;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        cluster.set_timeout(Duration::from_millis(200));
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let mut dead = no_faults(p);
        dead[1] = true; // orphan subtree {1,3,5,7,9,11,13,15}
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(!report.completed);
        assert_eq!(report.uncolored, vec![3, 5, 7, 9, 11, 13, 15]);
    }

    #[test]
    fn iterations_are_isolated() {
        let p = 16;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::Opportunistic { distance: 2 },
        );
        for i in 0..10 {
            let report = cluster.run_broadcast(&spec, &no_faults(p), i).unwrap();
            assert!(report.completed, "iteration {i}");
            // All 15 tree messages must flow each iteration; correction
            // sends may be truncated by Stop (latency is the metric
            // here, as in the paper's cluster experiments) but can never
            // exceed the protocol's deterministic total of 16·2d. Any
            // cross-iteration leakage would break these bounds.
            assert!(
                (15..=15 + 16 * 4).contains(&report.messages),
                "iteration {i}: {} messages",
                report.messages
            );
        }
    }

    #[test]
    fn rotated_root_broadcast_completes_on_the_cluster() {
        let p = 32;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 2 },
        )
        .with_root(19);
        // Physical rank 0 may even be dead — it is not the root here.
        let mut dead = no_faults(p);
        dead[0] = true;
        let report = cluster.run_broadcast(&spec, &dead, 0).unwrap();
        assert!(report.completed, "uncolored: {:?}", report.uncolored);
    }

    #[test]
    fn shuffled_numbering_broadcast_completes_on_the_cluster() {
        let p = 64;
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let spec = BroadcastSpec::corrected_tree(TreeKind::LAME2, CorrectionKind::Checked)
            .with_shuffle(0xBEEF);
        let mut dead = no_faults(p);
        for r in [8u32, 9, 10, 11] {
            dead[r as usize] = true; // a correlated block
        }
        for seed in 0..3 {
            let report = cluster.run_broadcast(&spec, &dead, seed).unwrap();
            assert!(report.completed, "seed {seed}: {:?}", report.uncolored);
        }
    }

    #[test]
    fn single_rank_cluster() {
        let mut cluster = Cluster::new(1, LogP::PAPER);
        let spec = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        let report = cluster.run_broadcast(&spec, &no_faults(1), 0).unwrap();
        assert!(report.completed);
        assert_eq!(report.messages, 0);
    }
}
