//! Golden analysis-summary regression: analyzing the simulator's
//! checked-in golden trace must keep producing a byte-for-byte stable
//! summary JSON. Guards the whole pipeline end to end — JSONL parsing,
//! DAG reconstruction, critical-path extraction, aggregation and the
//! summary's stable field order.
//!
//! To regenerate after an *intentional* change, run
//! `CT_REGEN_GOLDEN=1 cargo test -p ct-analyze --test golden_summary`
//! and review the diff. If `ct-sim`'s golden trace itself changed,
//! regenerate that one first.

use ct_analyze::{analyze_trace, parse_jsonl, AnalysisSummary, AnalyzeConfig};
use ct_logp::LogP;

// The simulator's golden trace: P = 4, binomial/interleaved with
// opportunistic-optimized (d = 2) correction, rank 2 dead, seed 1,
// paper parameters. Overlapped mode, so no Lemma-3 bounds apply.
const GOLDEN_TRACE: &str = include_str!("../../sim/tests/data/golden_p4.jsonl");
const GOLDEN_SUMMARY_PATH: &str = "tests/data/golden_p4_summary.json";
const GOLDEN_SUMMARY: &str = include_str!("data/golden_p4_summary.json");

fn summarize() -> AnalysisSummary {
    let events = parse_jsonl(GOLDEN_TRACE).expect("golden trace parses");
    let ta = analyze_trace(&events, &AnalyzeConfig::new(LogP::PAPER));
    AnalysisSummary::from_trace(&ta)
}

#[test]
fn golden_summary_is_byte_for_byte_stable() {
    let json = summarize().to_json() + "\n";
    if std::env::var_os("CT_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_SUMMARY_PATH, &json).expect("write golden summary");
        return;
    }
    assert_eq!(
        json, GOLDEN_SUMMARY,
        "analysis summary diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_summary_is_internally_consistent() {
    let s = summarize();
    assert_eq!(s.p, 4);
    assert_eq!(s.reps, 1);
    // Cost fractions partition the critical path.
    let total = s.cost_fracs.0 + s.cost_fracs.1 + s.cost_fracs.2;
    assert!((total - 1.0).abs() < 1e-9, "cost fracs sum to {total}");
    // Rank 2 is dead, so the correction phase must have run.
    assert!(s.messages.correction > 0);
    // Overlapped mode: no synchronized correction, no bounds.
    assert_eq!(s.bounds.0, 0);
}
