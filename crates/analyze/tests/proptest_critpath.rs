//! The analyzer's load-bearing property: for *any* simulated
//! configuration, the critical path extracted from the event trace has
//! exactly the run's completion time as its length, and its cost
//! attribution (`o` + `L` + idle, dissemination + correction)
//! telescopes to that length without gaps or overlaps. The path is
//! built backward through latest-binding predecessors, so any slack
//! mis-accounting — a wrong ready time, a missed FIFO match, a
//! dropped edge — breaks the equality.

use ct_analyze::{analyze_rep, AnalyzeConfig};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::Binomial {
            order: Ordering::Interleaved
        }),
        Just(TreeKind::Binomial {
            order: Ordering::InOrder
        }),
        (1u32..5).prop_map(|k| TreeKind::Kary {
            k,
            order: Ordering::Interleaved
        }),
        (1u32..4).prop_map(|k| TreeKind::Lame {
            k,
            order: Ordering::Interleaved
        }),
        Just(TreeKind::Optimal {
            order: Ordering::Interleaved
        }),
    ]
}

fn arb_correction() -> impl Strategy<Value = CorrectionKind> {
    prop_oneof![
        Just(CorrectionKind::Checked),
        (1u32..5).prop_map(|distance| CorrectionKind::Opportunistic { distance }),
        (1u32..5).prop_map(|distance| CorrectionKind::OpportunisticOptimized { distance }),
    ]
}

fn arb_logp() -> impl Strategy<Value = LogP> {
    (1u64..5, 1u64..4).prop_map(|(l, o)| LogP::new(l, o, 1).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn critical_path_length_equals_completion_time(
        kind in arb_kind(),
        correction in arb_correction(),
        sync in any::<bool>(),
        p in 2u32..96,
        faults in 0u32..5,
        seed in 0u64..10_000,
        logp in arb_logp(),
    ) {
        let spec = if sync {
            BroadcastSpec::corrected_tree_sync(kind, correction)
        } else {
            BroadcastSpec::corrected_tree(kind, correction)
        };
        let plan = FaultPlan::random_count_protecting(p, faults.min(p - 1), seed, 0)
            .expect("valid fault plan");
        let sim = Simulation::builder(p, logp).faults(plan).seed(seed).build();
        let (out, events) = sim.run_with_events(&spec).expect("valid configuration");

        let rep = analyze_rep(&events, &AnalyzeConfig::new(logp).with_p(p));

        // The analyzer recomputes the run's completion time purely from
        // the trace, and the critical path spans it exactly.
        prop_assert_eq!(rep.completion, out.quiescence.steps());
        prop_assert_eq!(rep.critpath.len, out.quiescence.steps());
        // o + L + idle == len, dissemination + correction == len.
        prop_assert!(rep.critpath.attribution_is_exact());
        // Send counting agrees with the simulator's outcome metrics.
        prop_assert_eq!(rep.messages.total(), out.messages.total());
    }
}
