//! Golden scheduler-summary regression: a deterministic telemetry
//! snapshot must keep rendering byte-for-byte stable JSON and summary
//! text. Guards the `ct-telemetry-v1` snapshot format and the
//! `ct analyze --view scheduler` rendering end to end.
//!
//! To regenerate after an *intentional* change, run
//! `CT_REGEN_GOLDEN=1 cargo test -p ct-analyze --test golden_scheduler`
//! and review the diff.

use ct_analyze::SchedulerSummary;
use ct_obs::telemetry::{Counter, Dist, TelemetryHub};

const GOLDEN_SNAPSHOT_PATH: &str = "tests/data/golden_telemetry.json";
const GOLDEN_SNAPSHOT: &str = include_str!("data/golden_telemetry.json");
const GOLDEN_TEXT_PATH: &str = "tests/data/golden_scheduler_summary.txt";
const GOLDEN_TEXT: &str = include_str!("data/golden_scheduler_summary.txt");

/// A fixed two-worker hub exercising every counter family the cluster
/// and sim producers feed, with values spread across both shards.
fn golden_snapshot_json() -> String {
    let hub = TelemetryHub::new(2, 8);
    for w in 0..2usize {
        let n = (w as u64) + 1;
        hub.add(w, Counter::SchedQuanta, 4 * n);
        hub.add(w, Counter::SchedStaleQuanta, n - 1);
        hub.add(w, Counter::SchedBatches, n);
        hub.add(w, Counter::SchedRechecks, n - 1);
        hub.add(w, Counter::SchedWakes, 2 * n);
        hub.add(w, Counter::SchedBusyUs, 100 * n);
        hub.add(w, Counter::MsgsSent, 3 * n);
        hub.add(w, Counter::MsgsDelivered, 3 * n);
        hub.add(w, Counter::MsgsStaleDropped, n - 1);
        hub.add(w, Counter::MailboxPushes, 3 * n);
        hub.add(w, Counter::MailboxSpills, n - 1);
        hub.add(w, Counter::TimerArms, n);
        hub.add(w, Counter::TimerFires, n);
        hub.add(w, Counter::TimerCascades, n - 1);
        hub.add(w, Counter::CoordBatches, n);
        hub.add(w, Counter::CoordColored, 4 * n);
        hub.observe(w, Dist::QuantumUs, 10 * n);
        hub.observe(w, Dist::BatchSize, 4);
        hub.observe(w, Dist::RunqDepth, 8 - w as u64);
        hub.observe(w, Dist::MailboxDrained, n);
        hub.observe(w, Dist::CoordBatchSize, 4 * n);
    }
    hub.mailbox_depth(3, 2);
    hub.mailbox_depth(5, 1);
    hub.set_runq_depth(1);
    hub.set_timers_pending(2);
    hub.record_sim_rep(100, 30, 40, true);
    hub.record_sim_rep(140, 34, 52, false);
    hub.snapshot().with_source("cluster").to_json() + "\n"
}

fn regen() -> bool {
    std::env::var_os("CT_REGEN_GOLDEN").is_some()
}

#[test]
fn golden_snapshot_is_byte_for_byte_stable() {
    let json = golden_snapshot_json();
    if regen() {
        std::fs::write(GOLDEN_SNAPSHOT_PATH, &json).expect("write golden snapshot");
        return;
    }
    assert_eq!(
        json, GOLDEN_SNAPSHOT,
        "telemetry snapshot diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_summary_text_is_byte_for_byte_stable() {
    // Under regen the checked-in snapshot may be stale (or empty on
    // first generation) — render from the freshly built snapshot.
    let json = if regen() {
        golden_snapshot_json()
    } else {
        GOLDEN_SNAPSHOT.to_owned()
    };
    let summary =
        SchedulerSummary::from_snapshot_json(json.trim_end()).expect("golden snapshot parses");
    let text = summary.render_text();
    if regen() {
        std::fs::write(GOLDEN_TEXT_PATH, &text).expect("write golden summary text");
        return;
    }
    assert_eq!(
        text, GOLDEN_TEXT,
        "scheduler summary diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_summary_is_internally_consistent() {
    let s = SchedulerSummary::from_snapshot_json(GOLDEN_SNAPSHOT.trim_end()).unwrap();
    assert_eq!(s.source, "cluster");
    assert_eq!(s.workers, 2);
    assert_eq!(s.ranks, 8);
    // Shard sums: 4·1 + 4·2 quanta, one stale from shard 1.
    assert_eq!(s.counter("sched.quanta"), 12);
    assert_eq!(s.counter("sched.stale_quanta"), 1);
    assert_eq!(s.counter("sim.reps"), 2);
    assert_eq!(s.counter("sim.incomplete"), 1);
    assert_eq!(s.gauge("mailbox.hwm"), 2);
    assert_eq!(s.gauge("runq.depth"), 1);
    let h = s.histograms.get("sched.quantum_us").unwrap();
    assert_eq!(h.count(), 2);
    assert_eq!(h.sum(), 30);
    let text = s.render_text();
    assert!(text.contains("quanta: 12 (1 stale)"), "{text}");
    assert!(text.contains("sim: reps 2 (1 incomplete)"), "{text}");
}
