//! Golden time-series regression: a deterministic `ct-series-v1`
//! export must keep rendering byte-for-byte stable JSONL and summary
//! text. Guards the sampler's JSONL layout and the
//! `ct analyze --view series` rendering end to end — health lines
//! included, so a forced `stall_precursor` episode stays pinned too.
//!
//! To regenerate after an *intentional* change, run
//! `CT_REGEN_GOLDEN=1 cargo test -p ct-analyze --test golden_series`
//! and review the diff.

use ct_analyze::SeriesSummary;
use ct_obs::health::{HealthConfig, HealthEngine};
use ct_obs::series::{SeriesSample, SeriesStore};
use ct_obs::telemetry::{Counter, TelemetryHub};

const GOLDEN_JSONL_PATH: &str = "tests/data/golden_series.jsonl";
const GOLDEN_JSONL: &str = include_str!("data/golden_series.jsonl");
const GOLDEN_TEXT_PATH: &str = "tests/data/golden_series_summary.txt";
const GOLDEN_TEXT: &str = include_str!("data/golden_series_summary.txt");

/// A fixed six-window export built through the real producer types —
/// hub, [`SeriesSample::between`], [`HealthEngine`], [`SeriesStore`] —
/// with synthetic 100 ms timestamps. The first two windows make
/// progress; an iteration then wedges at 4/7 colored, so the stall
/// rule's three-window streak fires in window five.
fn golden_export() -> String {
    let hub = TelemetryHub::new(2, 8);
    let store = SeriesStore::new(16);
    let mut engine = HealthEngine::new(HealthConfig::default());
    hub.set_iter_active(1);
    let mut prev = hub.snapshot().with_source("cluster");
    for seq in 0..6u64 {
        match seq {
            // Two healthy windows: deliveries flow, coloring advances.
            0 | 1 => {
                hub.add(0, Counter::SchedQuanta, 40);
                hub.add(1, Counter::SchedQuanta, 38);
                hub.add(0, Counter::SchedBusyUs, 900);
                hub.add(1, Counter::SchedBusyUs, 880);
                hub.add(0, Counter::MsgsDelivered, 12);
                hub.add(0, Counter::MailboxPushes, 12);
                hub.add(1, Counter::CoordColored, 2 + seq);
                hub.set_iter_progress(7, 2 + 3 * seq);
            }
            // Then the wedge: no deliveries, no coloring, 4/7 stuck.
            _ => {
                hub.add(0, Counter::SchedQuanta, 5);
                hub.set_iter_progress(7, 4);
            }
        }
        let next = hub.snapshot().with_source("cluster");
        let sample = SeriesSample::between(&prev, &next, seq, (seq + 1) * 100, 100);
        let fired = engine.observe(&sample);
        store.push_sample(sample);
        store.record_events(fired, engine.active().to_vec());
        prev = next;
    }
    store.export_jsonl()
}

fn regen() -> bool {
    std::env::var_os("CT_REGEN_GOLDEN").is_some()
}

#[test]
fn golden_export_is_byte_for_byte_stable() {
    let jsonl = golden_export();
    if regen() {
        std::fs::write(GOLDEN_JSONL_PATH, &jsonl).expect("write golden series export");
        return;
    }
    assert_eq!(
        jsonl, GOLDEN_JSONL,
        "series export diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_summary_text_is_byte_for_byte_stable() {
    // Under regen the checked-in export may be stale (or empty on
    // first generation) — render from the freshly built export.
    let jsonl = if regen() {
        golden_export()
    } else {
        GOLDEN_JSONL.to_owned()
    };
    let summary = SeriesSummary::from_jsonl(&jsonl).expect("golden export parses");
    let text = summary.render_text();
    if regen() {
        std::fs::write(GOLDEN_TEXT_PATH, &text).expect("write golden series summary");
        return;
    }
    assert_eq!(
        text, GOLDEN_TEXT,
        "series summary diverged from the golden file; if intentional, \
         regenerate with CT_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_export_is_internally_consistent() {
    if regen() {
        // The compiled-in export may be stale mid-regen; the next
        // plain run checks the regenerated one.
        return;
    }
    let s = SeriesSummary::from_jsonl(GOLDEN_JSONL).unwrap();
    assert_eq!(s.source, "cluster");
    assert_eq!(s.samples.len(), 6);
    assert_eq!(s.span_ms(), 600);
    assert_eq!(s.total("sched.quanta"), 176);
    assert_eq!(s.total("msgs.delivered"), 24);
    // The wedge: three zero-progress windows with an active iteration
    // fire exactly one critical stall precursor, in window five.
    assert_eq!(s.health.len(), 1);
    let e = &s.health[0];
    assert_eq!(e.rule, "stall_precursor");
    assert_eq!(e.seq, 4);
    assert_eq!(e.t_ms, 500);
    let text = s.render_text();
    assert!(text.contains("1 critical"), "{text}");
    assert!(text.contains("stall_precursor"), "{text}");
}
