//! Perf-regression snapshots and diffing.
//!
//! A [`BenchSnapshot`] is a flat, named bag of numeric metrics plus
//! string provenance, written by campaigns as `BENCH_<name>.json` and
//! compared by `ct perf diff`. Metrics are *lower-is-better* by
//! convention (completion times, message counts, critical-path
//! lengths); [`PerfDiff`] flags any metric that grew by more than the
//! configured relative threshold as a regression.

use std::collections::BTreeMap;

use ct_obs::json::JsonObject;

use crate::value::Value;

/// One named performance snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchSnapshot {
    /// Snapshot name (usually the campaign or figure it came from).
    pub name: String,
    /// String provenance: config, seed, git revision, …
    pub provenance: BTreeMap<String, String>,
    /// Flat metric bag; all values lower-is-better.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchSnapshot {
    /// Start an empty snapshot.
    pub fn new(name: &str) -> BenchSnapshot {
        BenchSnapshot {
            name: name.to_owned(),
            ..BenchSnapshot::default()
        }
    }

    /// Record one provenance string.
    pub fn with_provenance(mut self, key: &str, value: &str) -> Self {
        self.provenance.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Record one metric.
    pub fn with_metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.insert(key.to_owned(), value);
        self
    }

    /// Stamp host provenance (`host.*` keys: worker-thread resolution,
    /// `CT_THREADS`/`CT_MAILBOX_CAP` overrides, available parallelism)
    /// so a snapshot records the machine shape it was taken on.
    /// Provenance never participates in [`PerfDiff`] — metrics from
    /// differently-shaped hosts still compare.
    pub fn with_host_provenance(mut self) -> Self {
        for (k, v) in ct_obs::manifest::host_provenance() {
            self.provenance.insert(k, v);
        }
        self
    }

    /// Render as a stable JSON document (keys sorted).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("name", &self.name);
        let mut prov = JsonObject::new();
        for (k, v) in &self.provenance {
            prov.field_str(k, v);
        }
        obj.field_raw("provenance", &prov.finish());
        let mut metrics = JsonObject::new();
        for (k, v) in &self.metrics {
            metrics.field_f64(k, *v);
        }
        obj.field_raw("metrics", &metrics.finish());
        obj.finish()
    }

    /// Parse a snapshot document.
    pub fn parse(text: &str) -> Result<BenchSnapshot, String> {
        let v = Value::parse(text)?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("snapshot missing \"name\"")?
            .to_owned();
        let provenance = v
            .get("provenance")
            .map(Value::to_str_map)
            .unwrap_or_default();
        let metrics = v
            .get("metrics")
            .ok_or("snapshot missing \"metrics\"")?
            .to_f64_map();
        Ok(BenchSnapshot {
            name,
            provenance,
            metrics,
        })
    }

    /// Read and parse a snapshot file.
    pub fn read(path: &std::path::Path) -> Result<BenchSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchSnapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the snapshot as pretty-stable JSON (single line + newline).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// One metric's old→new movement.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub key: String,
    /// Old value (`None` when the metric is new).
    pub old: Option<f64>,
    /// New value (`None` when the metric disappeared).
    pub new: Option<f64>,
}

impl MetricDelta {
    /// Relative change `(new − old) / |old|`; `None` unless both sides
    /// exist (an old value of exactly 0 compares by absolute change).
    pub fn rel_change(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o.abs() > 1e-9 => Some((n - o) / o.abs()),
            (Some(o), Some(n)) => Some(n - o),
            _ => None,
        }
    }

    /// Did this metric regress (grow) beyond `threshold`?
    pub fn regressed(&self, threshold: f64) -> bool {
        self.rel_change().is_some_and(|c| c > threshold + 1e-9)
    }

    /// Did this metric improve (shrink) beyond `threshold`?
    pub fn improved(&self, threshold: f64) -> bool {
        self.rel_change().is_some_and(|c| c < -(threshold + 1e-9))
    }
}

/// The comparison of two snapshots.
#[derive(Clone, Debug)]
pub struct PerfDiff {
    /// Relative regression threshold (e.g. `0.05` = 5 %).
    pub threshold: f64,
    /// Every metric present on either side, name-sorted.
    pub deltas: Vec<MetricDelta>,
}

impl PerfDiff {
    /// Compare `old` → `new` under a relative `threshold`.
    pub fn diff(old: &BenchSnapshot, new: &BenchSnapshot, threshold: f64) -> PerfDiff {
        let mut keys: Vec<&String> = old.metrics.keys().chain(new.metrics.keys()).collect();
        keys.sort();
        keys.dedup();
        let deltas = keys
            .into_iter()
            .map(|k| MetricDelta {
                key: k.clone(),
                old: old.metrics.get(k).copied(),
                new: new.metrics.get(k).copied(),
            })
            .collect();
        PerfDiff { threshold, deltas }
    }

    /// Metrics that regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.threshold))
            .collect()
    }

    /// Metrics that improved beyond the threshold.
    pub fn improvements(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.improved(self.threshold))
            .collect()
    }

    /// Human-readable report (the `ct perf diff` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let marker = if d.regressed(self.threshold) {
                "REGRESSED"
            } else if d.improved(self.threshold) {
                "improved"
            } else {
                "ok"
            };
            let line = match (d.old, d.new) {
                (Some(o), Some(n)) => {
                    let pct = d.rel_change().unwrap_or(0.0) * 100.0;
                    format!(
                        "{:<28} {:>12.3} -> {:>12.3}  {:+7.2}%  {}",
                        d.key, o, n, pct, marker
                    )
                }
                (None, Some(n)) => {
                    format!("{:<28} {:>12} -> {:>12.3}  {:>8}  new", d.key, "-", n, "")
                }
                (Some(o), None) => {
                    format!(
                        "{:<28} {:>12.3} -> {:>12}  {:>8}  removed",
                        d.key, o, "-", ""
                    )
                }
                (None, None) => continue,
            };
            out.push_str(&line);
            out.push('\n');
        }
        let regs = self.regressions().len();
        let imps = self.improvements().len();
        out.push_str(&format!(
            "{} metrics, {} regressions, {} improvements (threshold {:.1}%)\n",
            self.deltas.len(),
            regs,
            imps,
            self.threshold * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, f64)]) -> BenchSnapshot {
        let mut s = BenchSnapshot::new("t");
        for (k, v) in pairs {
            s = s.with_metric(k, *v);
        }
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = BenchSnapshot::new("fig6")
            .with_provenance("variant", "binomial")
            .with_provenance("seed0", "1")
            .with_metric("completion_p50", 42.0)
            .with_metric("messages_mean", 31.5);
        let parsed = BenchSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert!(s.to_json().starts_with(r#"{"name":"fig6","provenance":{"#));
    }

    #[test]
    fn host_provenance_is_stamped_and_ignored_by_diff() {
        let plain = snapshot(&[("lat", 10.0)]);
        let stamped = snapshot(&[("lat", 10.0)]).with_host_provenance();
        for key in [
            "host.available_parallelism",
            "host.ct_mailbox_cap",
            "host.ct_threads",
            "host.worker_threads",
        ] {
            assert!(stamped.provenance.contains_key(key), "missing {key}");
        }
        let d = PerfDiff::diff(&plain, &stamped, 0.05);
        assert!(d.regressions().is_empty());
        assert!(d.improvements().is_empty());
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let s = snapshot(&[("a", 10.0), ("b", 0.0)]);
        let d = PerfDiff::diff(&s, &s, 0.05);
        assert!(d.regressions().is_empty());
        assert!(d.improvements().is_empty());
        assert_eq!(d.deltas.len(), 2);
    }

    #[test]
    fn growth_beyond_threshold_is_a_regression() {
        let old = snapshot(&[("lat", 100.0), ("msgs", 50.0)]);
        let new = snapshot(&[("lat", 109.0), ("msgs", 44.0)]);
        let d = PerfDiff::diff(&old, &new, 0.05);
        let regs = d.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "lat");
        let imps = d.improvements();
        assert_eq!(imps.len(), 1);
        assert_eq!(imps[0].key, "msgs");
        let text = d.render_text();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 regressions"), "{text}");
    }

    #[test]
    fn growth_within_threshold_is_ok() {
        let old = snapshot(&[("lat", 100.0)]);
        let new = snapshot(&[("lat", 104.0)]);
        let d = PerfDiff::diff(&old, &new, 0.05);
        assert!(d.regressions().is_empty());
    }

    #[test]
    fn added_and_removed_metrics_are_reported_not_flagged() {
        let old = snapshot(&[("gone", 1.0)]);
        let new = snapshot(&[("fresh", 2.0)]);
        let d = PerfDiff::diff(&old, &new, 0.05);
        assert!(d.regressions().is_empty());
        let text = d.render_text();
        assert!(text.contains("new"), "{text}");
        assert!(text.contains("removed"), "{text}");
    }

    #[test]
    fn zero_baseline_compares_absolutely() {
        let old = snapshot(&[("drops", 0.0)]);
        let new = snapshot(&[("drops", 0.5)]);
        let d = PerfDiff::diff(&old, &new, 0.05);
        assert_eq!(d.regressions().len(), 1);
    }
}
