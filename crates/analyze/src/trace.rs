//! Read a JSONL event stream back into [`ct_obs::Event`]s.
//!
//! The inverse of [`ct_obs::Event::to_json`]: the same stable schema
//! (`t`, optional `w`, `kind`, kind-specific fields), one event per
//! line. Also provides the repetition splitter campaigns need — a
//! campaign trace interleaves `rep i` phase spans, and each repetition
//! restarts the logical clock, so analysis must treat them separately.

use ct_core::protocol::{ColoredVia, Payload};
use ct_logp::{Rank, Time};
use ct_obs::{Event, EventKind};

use crate::value::Value;

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn payload_of(v: &Value) -> Result<Payload, String> {
    match field_str(v, "payload")? {
        "tree" => Ok(Payload::Tree),
        "gossip" => Ok(Payload::Gossip {
            round: field_u64(v, "round").unwrap_or(0) as u32,
        }),
        "correction" => Ok(Payload::Correction),
        "ack" => Ok(Payload::Ack),
        other => Err(format!("unknown payload {other:?}")),
    }
}

/// Parse one JSONL line into an [`Event`].
pub fn parse_event(line: &str) -> Result<Event, String> {
    let v = Value::parse(line)?;
    let t = Time::new(field_u64(&v, "t")?);
    let wall = v.get("w").and_then(Value::as_u64);
    let from_to = |v: &Value| -> Result<(Rank, Rank), String> {
        Ok((field_u64(v, "from")? as Rank, field_u64(v, "to")? as Rank))
    };
    let kind = match field_str(&v, "kind")? {
        "send" => {
            let (from, to) = from_to(&v)?;
            EventKind::SendStart {
                from,
                to,
                payload: payload_of(&v)?,
            }
        }
        "arrive" => {
            let (from, to) = from_to(&v)?;
            EventKind::Arrive {
                from,
                to,
                payload: payload_of(&v)?,
            }
        }
        "deliver" => {
            let (from, to) = from_to(&v)?;
            EventKind::Deliver {
                from,
                to,
                payload: payload_of(&v)?,
            }
        }
        "drop" => {
            let (from, to) = from_to(&v)?;
            EventKind::DropDead {
                from,
                to,
                payload: payload_of(&v)?,
            }
        }
        "colored" => EventKind::Colored {
            rank: field_u64(&v, "rank")? as Rank,
            via: match field_str(&v, "via")? {
                "root" => ColoredVia::Root,
                "dissemination" => ColoredVia::Dissemination,
                "correction" => ColoredVia::Correction,
                other => return Err(format!("unknown via {other:?}")),
            },
        },
        "phase_begin" => EventKind::PhaseBegin {
            name: field_str(&v, "name")?.to_owned(),
        },
        "phase_end" => EventKind::PhaseEnd {
            name: field_str(&v, "name")?.to_owned(),
        },
        other => return Err(format!("unknown kind {other:?}")),
    };
    let event = match wall {
        Some(w) => Event::wall(t, w, kind),
        None => Event::sim(t, kind),
    };
    Ok(match v.get("b").and_then(Value::as_u64) {
        Some(b) => event.with_bcast(b),
        None => event,
    })
}

/// Parse a whole JSONL document (blank lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(parse_event(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(events)
}

/// Split a trace into repetitions on `rep <i>` phase spans.
///
/// Campaign traces wrap each repetition in a `rep i` span and restart
/// the logical clock per repetition; a raw single-run trace has no such
/// spans and comes back as one repetition. Events outside any `rep`
/// span (the `campaign` envelope) are dropped.
pub fn split_reps(events: &[Event]) -> Vec<Vec<Event>> {
    let is_rep = |name: &str| name == "rep" || name.starts_with("rep ");
    let has_reps = events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::PhaseBegin { name } if is_rep(name)));
    if !has_reps {
        return vec![events.to_vec()];
    }
    let mut reps = Vec::new();
    let mut current: Option<Vec<Event>> = None;
    for e in events {
        match &e.kind {
            EventKind::PhaseBegin { name } if is_rep(name) => {
                current = Some(Vec::new());
            }
            EventKind::PhaseEnd { name } if is_rep(name) => {
                if let Some(rep) = current.take() {
                    reps.push(rep);
                }
            }
            _ => {
                if let Some(rep) = current.as_mut() {
                    rep.push(e.clone());
                }
            }
        }
    }
    // Unterminated trailing rep (truncated trace): keep what we have.
    if let Some(rep) = current.take() {
        reps.push(rep);
    }
    reps
}

/// The process count implied by a trace: one past the highest rank
/// mentioned by any event (0 for an empty trace).
pub fn infer_p(events: &[Event]) -> u32 {
    let mut max_rank: Option<Rank> = None;
    let mut bump = |r: Rank| max_rank = Some(max_rank.map_or(r, |m: Rank| m.max(r)));
    for e in events {
        match &e.kind {
            EventKind::SendStart { from, to, .. }
            | EventKind::Arrive { from, to, .. }
            | EventKind::Deliver { from, to, .. }
            | EventKind::DropDead { from, to, .. } => {
                bump(*from);
                bump(*to);
            }
            EventKind::Colored { rank, .. } => bump(*rank),
            _ => {}
        }
    }
    max_rank.map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = vec![
            Event::sim(
                Time::ZERO,
                EventKind::PhaseBegin {
                    name: "broadcast".into(),
                },
            ),
            Event::sim(
                Time::ZERO,
                EventKind::Colored {
                    rank: 0,
                    via: ColoredVia::Root,
                },
            ),
            Event::sim(
                Time::ZERO,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            Event::wall(
                Time::new(4),
                99,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Gossip { round: 3 },
                },
            ),
            Event::sim(
                Time::new(5),
                EventKind::DropDead {
                    from: 0,
                    to: 2,
                    payload: Payload::Correction,
                },
            ),
            Event::sim(
                Time::new(9),
                EventKind::PhaseEnd {
                    name: "broadcast".into(),
                },
            ),
        ];
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_jsonl("{\"t\":0,\"kind\":\"phase_begin\",\"name\":\"x\"}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(parse_event(r#"{"t":0,"kind":"warp"}"#).is_err());
    }

    #[test]
    fn rep_spans_split_the_stream() {
        let mk = |name: &str, begin: bool| {
            Event::sim(
                Time::ZERO,
                if begin {
                    EventKind::PhaseBegin { name: name.into() }
                } else {
                    EventKind::PhaseEnd { name: name.into() }
                },
            )
        };
        let send = Event::sim(
            Time::ZERO,
            EventKind::SendStart {
                from: 0,
                to: 1,
                payload: Payload::Tree,
            },
        );
        let events = vec![
            mk("campaign", true),
            mk("rep 0", true),
            send.clone(),
            mk("rep 0", false),
            mk("rep 1", true),
            send.clone(),
            send.clone(),
            mk("rep 1", false),
            mk("campaign", false),
        ];
        let reps = split_reps(&events);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].len(), 1);
        assert_eq!(reps[1].len(), 2);
    }

    #[test]
    fn traces_without_rep_spans_are_one_rep() {
        let send = Event::sim(
            Time::ZERO,
            EventKind::SendStart {
                from: 0,
                to: 5,
                payload: Payload::Tree,
            },
        );
        let reps = split_reps(&[send]);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].len(), 1);
        assert_eq!(infer_p(&reps[0]), 6);
    }
}
