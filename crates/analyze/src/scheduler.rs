//! Scheduler-telemetry summaries (`ct analyze --view scheduler`).
//!
//! Parses a `ct-telemetry-v1` snapshot (the JSON written by `ct stats`
//! or attached to bench manifests) back into typed form and renders a
//! compact scheduler health report: quantum and batch-size
//! distributions, mailbox spill counts, lost-wakeup recheck counts and
//! the simulator's per-repetition distributions. Parsing doubles as
//! the schema self-check the CI telemetry smoke job runs — every
//! counter must be an unsigned integer and every histogram must be
//! internally consistent (bounds strictly increasing, one overflow
//! bucket, bucket counts summing to the total), so a drifted producer
//! fails loudly here rather than silently mis-rendering.

use std::collections::BTreeMap;

use ct_obs::metrics::Histogram;

use crate::value::Value;

/// The snapshot schema tag this module understands.
pub const TELEMETRY_SCHEMA: &str = "ct-telemetry-v1";

/// A parsed and validated telemetry snapshot, ready for rendering.
#[derive(Clone, Debug)]
pub struct SchedulerSummary {
    /// Producer tag (`"sim"`, `"cluster"`, …).
    pub source: String,
    /// Worker shards merged into the snapshot.
    pub workers: u64,
    /// Ranks the hub tracked.
    pub ranks: u64,
    /// Counters by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by dotted name.
    pub gauges: BTreeMap<String, u64>,
    /// Distributions by dotted name.
    pub histograms: BTreeMap<String, Histogram>,
}

fn parse_u64_map(v: &Value, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let Value::Obj(fields) = v else {
        return Err(format!("\"{what}\" must be an object"));
    };
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("{what}.{k} must be an unsigned integer"))?;
        map.insert(k.clone(), n);
    }
    Ok(map)
}

fn parse_u64_array(v: &Value, what: &str) -> Result<Vec<u64>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("{what} must hold unsigned integers"))
        })
        .collect()
}

fn parse_histogram(name: &str, v: &Value) -> Result<Histogram, String> {
    let get = |key: &str| {
        v.get(key)
            .ok_or_else(|| format!("histogram {name} missing \"{key}\""))
    };
    let bounds = parse_u64_array(get("bounds")?, &format!("histogram {name} bounds"))?;
    let counts = parse_u64_array(get("counts")?, &format!("histogram {name} counts"))?;
    let count = get("count")?
        .as_u64()
        .ok_or_else(|| format!("histogram {name} count must be an unsigned integer"))?;
    let sum = get("sum")?
        .as_u64()
        .ok_or_else(|| format!("histogram {name} sum must be an unsigned integer"))?;
    // min/max are null exactly when the histogram is empty.
    let min = match get("min")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or_else(|| format!("histogram {name} min must be an unsigned integer"))?,
        ),
    };
    let max = match get("max")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or_else(|| format!("histogram {name} max must be an unsigned integer"))?,
        ),
    };
    if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
        return Err(format!(
            "histogram {name} bounds must be non-empty and strictly increasing"
        ));
    }
    if counts.len() != bounds.len() + 1 {
        return Err(format!(
            "histogram {name} needs {} buckets (one per bound plus overflow), got {}",
            bounds.len() + 1,
            counts.len()
        ));
    }
    if counts.iter().sum::<u64>() != count {
        return Err(format!(
            "histogram {name} bucket counts do not sum to its count"
        ));
    }
    if (count == 0) != (min.is_none() && max.is_none()) {
        return Err(format!(
            "histogram {name} min/max must be null exactly when empty"
        ));
    }
    Ok(Histogram::from_parts(
        bounds,
        counts,
        count,
        sum,
        min.unwrap_or(u64::MAX),
        max.unwrap_or(0),
    ))
}

impl SchedulerSummary {
    /// Parse and validate one `ct-telemetry-v1` snapshot document.
    pub fn from_snapshot_json(text: &str) -> Result<SchedulerSummary, String> {
        let v = Value::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("snapshot missing \"schema\"")?;
        if schema != TELEMETRY_SCHEMA {
            return Err(format!(
                "unsupported telemetry schema {schema:?} (want {TELEMETRY_SCHEMA:?})"
            ));
        }
        let source = v
            .get("source")
            .and_then(Value::as_str)
            .ok_or("snapshot missing \"source\"")?
            .to_owned();
        let workers = v
            .get("workers")
            .and_then(Value::as_u64)
            .ok_or("snapshot missing \"workers\"")?;
        let ranks = v
            .get("ranks")
            .and_then(Value::as_u64)
            .ok_or("snapshot missing \"ranks\"")?;
        let counters = parse_u64_map(
            v.get("counters").ok_or("snapshot missing \"counters\"")?,
            "counters",
        )?;
        let gauges = parse_u64_map(
            v.get("gauges").ok_or("snapshot missing \"gauges\"")?,
            "gauges",
        )?;
        let Some(Value::Obj(hist_fields)) = v.get("histograms") else {
            return Err("snapshot missing \"histograms\" object".to_owned());
        };
        let mut histograms = BTreeMap::new();
        for (name, h) in hist_fields {
            histograms.insert(name.clone(), parse_histogram(name, h)?);
        }
        let Some(Value::Arr(per_worker)) = v.get("per_worker") else {
            return Err("snapshot missing \"per_worker\" array".to_owned());
        };
        for (i, w) in per_worker.iter().enumerate() {
            parse_u64_map(w, &format!("per_worker[{i}]"))?;
        }
        Ok(SchedulerSummary {
            source,
            workers,
            ranks,
            counters,
            gauges,
            histograms,
        })
    }

    /// Value of a counter by dotted name (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge by dotted name (zero when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    fn dist_line(&self, name: &str) -> String {
        match self.histograms.get(name) {
            Some(h) if h.count() > 0 => {
                let mean = h.sum() as f64 / h.count() as f64;
                format!(
                    "n={} mean={:.1} p50={:.1} p95={:.1} max={}",
                    h.count(),
                    mean,
                    h.p50().unwrap_or(0.0),
                    h.p95().unwrap_or(0.0),
                    h.max().unwrap_or(0),
                )
            }
            _ => "n=0".to_owned(),
        }
    }

    /// Render the scheduler health report. The cluster section appears
    /// only when the snapshot saw scheduler quanta, the sim section
    /// only when it saw simulator repetitions.
    pub fn render_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scheduler summary (source={}, workers={}, ranks={})",
            self.source, self.workers, self.ranks
        );
        if self.counter("sched.quanta") > 0 {
            let _ = writeln!(
                out,
                "  quanta: {} ({} stale) | batches: {} | wakes: {} | lost-wakeup rechecks: {}",
                self.counter("sched.quanta"),
                self.counter("sched.stale_quanta"),
                self.counter("sched.batches"),
                self.counter("sched.wakes"),
                self.counter("sched.lost_wakeup_rechecks"),
            );
            let _ = writeln!(out, "  quantum µs: {}", self.dist_line("sched.quantum_us"));
            let _ = writeln!(out, "  batch size: {}", self.dist_line("sched.batch_size"));
            let _ = writeln!(
                out,
                "  run-queue depth: {}",
                self.dist_line("sched.runq_depth")
            );
            let _ = writeln!(
                out,
                "  messages: sent {} delivered {} stale-dropped {}",
                self.counter("msgs.sent"),
                self.counter("msgs.delivered"),
                self.counter("msgs.stale_dropped"),
            );
            let _ = writeln!(
                out,
                "  mailbox: pushes {} spills {} hwm {} | drained/quantum: {}",
                self.counter("mailbox.pushes"),
                self.counter("mailbox.spills"),
                self.gauge("mailbox.hwm"),
                self.dist_line("mailbox.drained"),
            );
            let _ = writeln!(
                out,
                "  timers: arms {} fires {} cascades {} (pending {})",
                self.counter("timer.arms"),
                self.counter("timer.fires"),
                self.counter("timer.cascades"),
                self.gauge("timers.pending"),
            );
            let _ = writeln!(
                out,
                "  coordinator: batches {} colored {} | batch size: {}",
                self.counter("coord.batches"),
                self.counter("coord.colored"),
                self.dist_line("coord.batch_size"),
            );
        }
        if self.counter("sim.reps") > 0 {
            let _ = writeln!(
                out,
                "  sim: reps {} ({} incomplete) | events {} | sends {}",
                self.counter("sim.reps"),
                self.counter("sim.incomplete"),
                self.counter("sim.events"),
                self.counter("sim.sends"),
            );
            let _ = writeln!(out, "  rep events: {}", self.dist_line("sim.rep_events"));
            let _ = writeln!(out, "  rep sends: {}", self.dist_line("sim.rep_sends"));
            let _ = writeln!(
                out,
                "  rep quiescence: {}",
                self.dist_line("sim.rep_quiescence")
            );
        }
        if self.counter("sched.quanta") == 0 && self.counter("sim.reps") == 0 {
            let _ = writeln!(out, "  (no scheduler or simulator activity recorded)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_snapshot_json() -> String {
        use ct_obs::telemetry::TelemetryHub;
        let hub = TelemetryHub::new(1, 8);
        hub.record_sim_rep(100, 30, 40, true);
        hub.record_sim_rep(120, 31, 44, false);
        hub.snapshot().with_source("sim").to_json()
    }

    #[test]
    fn parses_a_real_snapshot_round_trip() {
        let json = sim_snapshot_json();
        let s = SchedulerSummary::from_snapshot_json(&json).unwrap();
        assert_eq!(s.source, "sim");
        assert_eq!(s.workers, 1);
        assert_eq!(s.ranks, 8);
        assert_eq!(s.counter("sim.reps"), 2);
        assert_eq!(s.counter("sim.events"), 220);
        assert_eq!(s.counter("sim.incomplete"), 1);
        let h = s.histograms.get("sim.rep_quiescence").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 84);
    }

    #[test]
    fn render_gates_sections_on_activity() {
        let s = SchedulerSummary::from_snapshot_json(&sim_snapshot_json()).unwrap();
        let text = s.render_text();
        assert!(text.contains("sim: reps 2 (1 incomplete)"), "{text}");
        assert!(!text.contains("quanta:"), "{text}");
        assert!(!text.contains("no scheduler or simulator"), "{text}");
    }

    #[test]
    fn rejects_wrong_schema() {
        let err =
            SchedulerSummary::from_snapshot_json(r#"{"schema":"ct-telemetry-v0"}"#).unwrap_err();
        assert!(err.contains("unsupported telemetry schema"), "{err}");
    }

    #[test]
    fn rejects_malformed_histograms() {
        let json = sim_snapshot_json();
        // Break one histogram's internal consistency: bump its count
        // without touching the buckets.
        let broken = json.replacen("\"count\":2", "\"count\":3", 1);
        assert_ne!(json, broken, "fixture must contain a count to break");
        let err = SchedulerSummary::from_snapshot_json(&broken).unwrap_err();
        assert!(err.contains("do not sum"), "{err}");
    }

    #[test]
    fn rejects_non_integer_counters() {
        let err = SchedulerSummary::from_snapshot_json(
            r#"{"schema":"ct-telemetry-v1","source":"sim","workers":1,"ranks":1,"counters":{"sim.reps":1.5},"gauges":{},"histograms":{},"per_worker":[{}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }
}
