//! Reconstruct the causal DAG of one broadcast from its event stream.
//!
//! Nodes are the message events (send, arrive, deliver, drop); edges
//! are the LogP happens-before constraints that produced their
//! timestamps:
//!
//! * **wire** — a send's message reaching its receiver (`o + L` later);
//!   arrivals are matched to sends FIFO per `(from, to, payload)`,
//!   which is exact for the simulator (links deliver in order) and the
//!   best available order for wall-clock cluster traces;
//! * **recv-port** — an arrival being processed into a delivery
//!   (`o` later when the port is free);
//! * **recv-queue** — the receive port finishing its previous delivery
//!   (queued arrivals are processed back-to-back, `o` apart);
//! * **send-port** — a rank's previous send releasing the sender port
//!   (`o` after it started);
//! * **trigger** — the latest delivery at a rank at or before one of
//!   its sends (protocol causality: what it reacted to);
//! * **origin** — the start of the run, for sends with no prior
//!   activity at their rank (the root, synchronized starts).
//!
//! The DAG is the substrate for critical-path extraction
//! ([`crate::critical`]): every node's timestamp equals the maximum
//! over its in-edges of `pred.time + edge cost`, so chaining
//! latest-binding predecessors backward from the completion event
//! yields a path whose segment lengths telescope to the completion
//! time.

use std::collections::{BTreeMap, VecDeque};

use ct_core::protocol::Payload;
use ct_logp::Rank;
use ct_obs::{Event, EventKind};

/// Node kind in the causal DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A `SendStart` event.
    Send,
    /// An `Arrive` event.
    Arrive,
    /// A `Deliver` event.
    Deliver,
    /// A `DropDead` event (terminal: dead receivers process nothing).
    Drop,
}

/// One message event.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Event timestamp (steps or µs, whatever the trace used).
    pub t: u64,
    /// What kind of event.
    pub kind: NodeKind,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Message payload.
    pub payload: Payload,
}

impl Node {
    /// The rank at which this event physically happens (the sender for
    /// sends, the receiver otherwise).
    pub fn rank(&self) -> Rank {
        match self.kind {
            NodeKind::Send => self.from,
            _ => self.to,
        }
    }
}

/// Why an edge exists (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Send → its arrival (`o` overhead + `L` wire).
    Wire,
    /// Arrival → its delivery (`o` receive overhead).
    RecvPort,
    /// Previous delivery at the rank → this delivery (queue occupancy).
    RecvQueue,
    /// Previous send by the rank → this send (sender-port occupancy).
    SendPort,
    /// Latest delivery at the rank → a later send (protocol causality).
    Trigger,
    /// Run start → a send with no prior activity at its rank.
    Origin,
}

/// An in-edge: `(predecessor node index, kind)`.
pub type Pred = (usize, EdgeKind);

/// The reconstructed causal DAG of one repetition.
#[derive(Clone, Debug)]
pub struct CausalDag {
    /// Message-event nodes, in trace order.
    pub nodes: Vec<Node>,
    /// In-edges per node (same indexing as `nodes`).
    pub preds: Vec<Vec<Pred>>,
    /// The LogP send/receive overhead used for edge costs.
    pub o: u64,
    /// Completion time: `max(deliver times, send starts + o)` — the
    /// quiescence latency of the run (0 for an empty trace).
    pub completion: u64,
    /// The node achieving `completion` (`None` for an empty trace).
    pub terminal: Option<usize>,
}

/// Match key for the FIFO pairing maps: `(from, to, payload tag,
/// gossip round)`.
fn key(from: Rank, to: Rank, payload: Payload) -> (Rank, Rank, &'static str, u32) {
    let round = match payload {
        Payload::Gossip { round } => round,
        _ => 0,
    };
    (from, to, Event::payload_tag(payload), round)
}

impl CausalDag {
    /// Build the DAG from one repetition's events (phase and coloring
    /// events are ignored; `o` is the LogP overhead of the producing
    /// run).
    pub fn build(events: &[Event], o: u64) -> CausalDag {
        let mut nodes = Vec::new();
        for e in events {
            let (kind, from, to, payload) = match &e.kind {
                EventKind::SendStart { from, to, payload } => (NodeKind::Send, from, to, payload),
                EventKind::Arrive { from, to, payload } => (NodeKind::Arrive, from, to, payload),
                EventKind::Deliver { from, to, payload } => (NodeKind::Deliver, from, to, payload),
                EventKind::DropDead { from, to, payload } => (NodeKind::Drop, from, to, payload),
                _ => continue,
            };
            nodes.push(Node {
                t: e.time.steps(),
                kind,
                from: *from,
                to: *to,
                payload: *payload,
            });
        }

        let mut preds: Vec<Vec<Pred>> = vec![Vec::new(); nodes.len()];
        // Unmatched sends / arrivals, FIFO per message key.
        let mut sends_in_flight: BTreeMap<(Rank, Rank, &'static str, u32), VecDeque<usize>> =
            BTreeMap::new();
        let mut arrivals_pending: BTreeMap<(Rank, Rank, &'static str, u32), VecDeque<usize>> =
            BTreeMap::new();
        // Per-rank latest send / latest delivery seen so far.
        let mut last_send: BTreeMap<Rank, usize> = BTreeMap::new();
        let mut last_deliver: BTreeMap<Rank, usize> = BTreeMap::new();

        for i in 0..nodes.len() {
            let n = nodes[i];
            match n.kind {
                NodeKind::Send => {
                    if let Some(&prev) = last_send.get(&n.from) {
                        preds[i].push((prev, EdgeKind::SendPort));
                    }
                    if let Some(&d) = last_deliver.get(&n.from) {
                        if nodes[d].t <= n.t {
                            preds[i].push((d, EdgeKind::Trigger));
                        }
                    }
                    last_send.insert(n.from, i);
                    sends_in_flight
                        .entry(key(n.from, n.to, n.payload))
                        .or_default()
                        .push_back(i);
                }
                NodeKind::Arrive | NodeKind::Drop => {
                    if let Some(s) = sends_in_flight
                        .get_mut(&key(n.from, n.to, n.payload))
                        .and_then(VecDeque::pop_front)
                    {
                        preds[i].push((s, EdgeKind::Wire));
                    }
                    if n.kind == NodeKind::Arrive {
                        arrivals_pending
                            .entry(key(n.from, n.to, n.payload))
                            .or_default()
                            .push_back(i);
                    }
                }
                NodeKind::Deliver => {
                    if let Some(a) = arrivals_pending
                        .get_mut(&key(n.from, n.to, n.payload))
                        .and_then(VecDeque::pop_front)
                    {
                        preds[i].push((a, EdgeKind::RecvPort));
                    }
                    if let Some(&prev) = last_deliver.get(&n.to) {
                        preds[i].push((prev, EdgeKind::RecvQueue));
                    }
                    last_deliver.insert(n.to, i);
                }
            }
        }

        // Quiescence: the last delivery processing or send completion
        // (mirrors the engine's definition).
        let mut completion = 0u64;
        let mut terminal = None;
        for (i, n) in nodes.iter().enumerate() {
            let end = match n.kind {
                NodeKind::Deliver => n.t,
                NodeKind::Send => n.t + o,
                _ => continue,
            };
            if terminal.is_none() || end >= completion {
                completion = end;
                terminal = Some(i);
            }
        }

        CausalDag {
            nodes,
            preds,
            o,
            completion,
            terminal,
        }
    }

    /// The latest-binding predecessor of node `i`: the in-edge whose
    /// constraint (`pred time + edge cost`) is largest, i.e. the one
    /// that actually determined `i`'s timestamp. Ties prefer the
    /// message-causal edge (wire / recv-port / trigger) over resource
    /// occupancy, which keeps attribution on the communication chain.
    pub fn binding_pred(&self, i: usize) -> Option<Pred> {
        let causal = |k: EdgeKind| {
            matches!(
                k,
                EdgeKind::Wire | EdgeKind::RecvPort | EdgeKind::Trigger | EdgeKind::Origin
            )
        };
        self.preds[i]
            .iter()
            .copied()
            .max_by_key(|&(p, k)| (self.ready_time(p, k), causal(k)))
    }

    /// The earliest time node `i`'s successor could happen given the
    /// edge `(pred, kind)`.
    fn ready_time(&self, pred: usize, kind: EdgeKind) -> u64 {
        let t = self.nodes[pred].t;
        match kind {
            EdgeKind::Wire => t, // exact cost varies (o+L sim, measured on cluster)
            EdgeKind::RecvPort => t + self.o,
            EdgeKind::RecvQueue => t + self.o,
            EdgeKind::SendPort => t + self.o,
            EdgeKind::Trigger => t,
            EdgeKind::Origin => 0,
        }
    }

    /// Number of edges of each kind (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_logp::Time;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::sim(Time::new(t), kind)
    }

    /// Hand-built two-hop chain with paper parameters (L=2, o=1):
    /// 0 sends to 1 at t=0 (arrive 3, deliver 4), 1 forwards to 2 at
    /// t=4 (arrive 7, deliver 8).
    fn chain() -> Vec<Event> {
        let pl = Payload::Tree;
        vec![
            ev(
                0,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                3,
                EventKind::Arrive {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                4,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                4,
                EventKind::SendStart {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                7,
                EventKind::Arrive {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                8,
                EventKind::Deliver {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
        ]
    }

    #[test]
    fn chain_edges_and_completion() {
        let dag = CausalDag::build(&chain(), 1);
        assert_eq!(dag.nodes.len(), 6);
        assert_eq!(dag.completion, 8);
        assert_eq!(dag.terminal, Some(5));
        // Arrive(1) ← Wire ← Send(0).
        assert_eq!(dag.preds[1], vec![(0, EdgeKind::Wire)]);
        // Deliver(2) ← RecvPort ← Arrive(1).
        assert_eq!(dag.preds[2], vec![(1, EdgeKind::RecvPort)]);
        // Send(3) by rank 1 ← Trigger ← Deliver(2).
        assert_eq!(dag.preds[3], vec![(2, EdgeKind::Trigger)]);
    }

    #[test]
    fn binding_pred_walks_the_chain() {
        let dag = CausalDag::build(&chain(), 1);
        let mut cur = dag.terminal.unwrap();
        let mut hops = Vec::new();
        while let Some((p, k)) = dag.binding_pred(cur) {
            hops.push(k);
            cur = p;
        }
        assert_eq!(cur, 0, "chain must end at the root send");
        assert_eq!(
            hops,
            vec![
                EdgeKind::RecvPort,
                EdgeKind::Wire,
                EdgeKind::Trigger,
                EdgeKind::RecvPort,
                EdgeKind::Wire,
            ]
        );
    }

    #[test]
    fn queued_arrivals_chain_through_recv_queue() {
        let pl = Payload::Tree;
        // Two messages arrive at rank 2 back-to-back; the second
        // delivery waits for the port (deliver at 5, not 4+... o=1).
        let events = vec![
            ev(
                0,
                EventKind::SendStart {
                    from: 0,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                0,
                EventKind::SendStart {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                3,
                EventKind::Arrive {
                    from: 0,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                3,
                EventKind::Arrive {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                4,
                EventKind::Deliver {
                    from: 0,
                    to: 2,
                    payload: pl,
                },
            ),
            ev(
                5,
                EventKind::Deliver {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
        ];
        let dag = CausalDag::build(&events, 1);
        // Second deliver's binding pred is the first deliver (port
        // became free at 4+1=5 > its arrival constraint 3+1=4).
        assert_eq!(dag.binding_pred(5), Some((4, EdgeKind::RecvQueue)));
        assert_eq!(dag.completion, 5);
    }

    #[test]
    fn drops_match_their_sends_but_are_terminal() {
        let pl = Payload::Correction;
        let events = vec![
            ev(
                2,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                5,
                EventKind::DropDead {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
        ];
        let dag = CausalDag::build(&events, 1);
        assert_eq!(dag.preds[1], vec![(0, EdgeKind::Wire)]);
        // Quiescence is the send completion (2+1), not the drop.
        assert_eq!(dag.completion, 3);
        assert_eq!(dag.terminal, Some(0));
    }

    #[test]
    fn empty_trace_is_empty_dag() {
        let dag = CausalDag::build(&[], 1);
        assert_eq!(dag.completion, 0);
        assert_eq!(dag.terminal, None);
        assert_eq!(dag.edge_count(), 0);
    }
}
