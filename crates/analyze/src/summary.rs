//! Per-repetition and whole-trace analysis summaries.
//!
//! [`analyze_rep`] turns one repetition's events into a
//! [`RepAnalysis`]: critical path with cost attribution
//! ([`crate::critical`]), dissemination/correction phase split,
//! per-rank busy/idle utilization, and — for synchronized-correction
//! runs — the observed correction time checked against the Lemma 3
//! bounds from `ct-analysis`. [`analyze_trace`] splits a trace into
//! repetitions first and aggregates into an [`AnalysisSummary`], the
//! JSON-renderable block that `ct analyze` prints and campaigns attach
//! to their manifests.

use ct_analysis::lscc_bounds;
use ct_core::protocol::{ColoredVia, Payload};
use ct_core::tree::ring;
use ct_logp::{LogP, Rank};
use ct_obs::json::{fmt_f64, JsonObject};
use ct_obs::{Event, EventKind};

use crate::critical::CriticalPath;
use crate::dag::{CausalDag, NodeKind};
use crate::trace::{infer_p, split_reps};

/// Analyzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeConfig {
    /// LogP parameters of the producing run (for `o`/`L` attribution
    /// and the analytical bounds).
    pub logp: LogP,
    /// Process count; inferred from the trace when `None`.
    pub p: Option<u32>,
    /// Synchronized-correction start time, when the protocol has one —
    /// enables the Lemma 3 bounds check.
    pub sync_start: Option<u64>,
}

impl AnalyzeConfig {
    /// Paper-parameter config with everything inferred.
    pub fn new(logp: LogP) -> AnalyzeConfig {
        AnalyzeConfig {
            logp,
            p: None,
            sync_start: None,
        }
    }

    /// Set the process count explicitly.
    pub fn with_p(mut self, p: u32) -> Self {
        self.p = Some(p);
        self
    }

    /// Set the synchronized-correction start time.
    pub fn with_sync_start(mut self, t: u64) -> Self {
        self.sync_start = Some(t);
        self
    }
}

/// Observed correction time vs the Lemma 3 bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundsCheck {
    /// Maximum dissemination gap (input to Lemma 3).
    pub g_max: u32,
    /// The synchronized correction start used.
    pub sync_start: u64,
    /// Observed correction time: `completion − sync_start`.
    pub observed: u64,
    /// Lemma 3 lower bound.
    pub lower: u64,
    /// Lemma 3 upper bound.
    pub upper: u64,
}

impl BoundsCheck {
    /// Slack to the upper bound (negative = violation above).
    pub fn slack(&self) -> i64 {
        self.upper as i64 - self.observed as i64
    }

    /// Is the observation outside `[lower, upper]`?
    pub fn violated(&self) -> bool {
        self.observed < self.lower || self.observed > self.upper
    }
}

/// Per-rank busy time (sender + receiver port occupancy, unioned).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Utilization {
    /// Busy steps per rank.
    pub busy: Vec<u64>,
    /// The completion time the fractions are relative to.
    pub completion: u64,
}

impl Utilization {
    /// Busy fraction of one rank (0 when the run is empty).
    pub fn busy_frac(&self, rank: usize) -> f64 {
        if self.completion == 0 {
            return 0.0;
        }
        self.busy[rank] as f64 / self.completion as f64
    }

    /// Mean busy fraction over all ranks.
    pub fn mean_frac(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        (0..self.busy.len()).map(|r| self.busy_frac(r)).sum::<f64>() / self.busy.len() as f64
    }

    /// `(rank, fraction)` of the busiest rank (`None` when empty).
    pub fn busiest(&self) -> Option<(Rank, f64)> {
        (0..self.busy.len())
            .max_by_key(|&r| self.busy[r])
            .map(|r| (r as Rank, self.busy_frac(r)))
    }
}

/// Message counts by payload kind, recounted from the trace's sends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageBreakdown {
    /// Tree dissemination sends.
    pub tree: u64,
    /// Gossip dissemination sends.
    pub gossip: u64,
    /// Ring correction sends.
    pub correction: u64,
    /// Acknowledgment sends.
    pub ack: u64,
}

impl MessageBreakdown {
    /// Total sends.
    pub fn total(&self) -> u64 {
        self.tree + self.gossip + self.correction + self.ack
    }
}

/// Dissemination-phase vs correction-phase timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSplit {
    /// Last coloring via root/dissemination (the tree phase's reach).
    pub diss_end: u64,
    /// First correction-payload send (`None` if no correction ran).
    pub corr_start: Option<u64>,
    /// `completion − corr_start` (0 if no correction ran).
    pub corr_steps: u64,
}

/// Everything the analyzer extracts from one repetition.
#[derive(Clone, Debug)]
pub struct RepAnalysis {
    /// Process count (configured or inferred).
    pub p: u32,
    /// Completion (quiescence) time of the repetition.
    pub completion: u64,
    /// The critical path with cost attribution.
    pub critpath: CriticalPath,
    /// Send counts by payload.
    pub messages: MessageBreakdown,
    /// Dissemination/correction phase timing.
    pub phase: PhaseSplit,
    /// Per-rank busy/idle accounting.
    pub utilization: Utilization,
    /// Lemma 3 check (synchronized-correction runs only).
    pub bounds: Option<BoundsCheck>,
}

/// Analyze one repetition's events.
pub fn analyze_rep(events: &[Event], cfg: &AnalyzeConfig) -> RepAnalysis {
    let p = cfg.p.unwrap_or_else(|| infer_p(events));
    let o = cfg.logp.o();
    let dag = CausalDag::build(events, o);
    let critpath = CriticalPath::extract(&dag);
    let completion = dag.completion;

    let mut messages = MessageBreakdown::default();
    let mut diss_end = 0u64;
    let mut corr_start: Option<u64> = None;
    let mut diss_colored = vec![false; p as usize];
    for e in events {
        match &e.kind {
            EventKind::SendStart { payload, .. } => {
                match payload {
                    Payload::Tree => messages.tree += 1,
                    Payload::Gossip { .. } => messages.gossip += 1,
                    Payload::Correction => messages.correction += 1,
                    Payload::Ack => messages.ack += 1,
                }
                if matches!(payload, Payload::Correction) {
                    let t = e.time.steps();
                    corr_start = Some(corr_start.map_or(t, |c| c.min(t)));
                }
            }
            EventKind::Colored { rank, via } => {
                if matches!(via, ColoredVia::Root | ColoredVia::Dissemination) {
                    diss_end = diss_end.max(e.time.steps());
                    if (*rank as usize) < diss_colored.len() {
                        diss_colored[*rank as usize] = true;
                    }
                }
            }
            _ => {}
        }
    }
    let phase = PhaseSplit {
        diss_end,
        corr_start,
        corr_steps: corr_start.map_or(0, |c| completion.saturating_sub(c)),
    };

    // Busy time: union of send slots [t, t+o] and receive-processing
    // slots [t−o, t] per rank, interval-merged.
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p as usize];
    for n in &dag.nodes {
        let (rank, span) = match n.kind {
            NodeKind::Send => (n.from, (n.t, n.t + o)),
            NodeKind::Deliver => (n.to, (n.t.saturating_sub(o), n.t)),
            _ => continue,
        };
        if (rank as usize) < intervals.len() {
            intervals[rank as usize].push(span);
        }
    }
    let busy = intervals
        .into_iter()
        .map(|mut iv| {
            iv.sort_unstable();
            let mut total = 0u64;
            let mut cur: Option<(u64, u64)> = None;
            for (s, e) in iv {
                match cur {
                    Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                    Some((cs, ce)) => {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                    None => cur = Some((s, e)),
                }
            }
            if let Some((cs, ce)) = cur {
                total += ce - cs;
            }
            total
        })
        .collect();
    let utilization = Utilization { busy, completion };

    let bounds = cfg.sync_start.map(|sync_start| {
        let g_max = ring::max_gap(&diss_colored);
        let (lower, upper) = lscc_bounds(g_max, &cfg.logp);
        BoundsCheck {
            g_max,
            sync_start,
            observed: completion.saturating_sub(sync_start),
            lower: lower.steps(),
            upper: upper.steps(),
        }
    });

    RepAnalysis {
        p,
        completion,
        critpath,
        messages,
        phase,
        utilization,
        bounds,
    }
}

/// A named phase span's aggregate timing over a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (`broadcast`, `rep 0`, `campaign`, …).
    pub name: String,
    /// How many times the span opened.
    pub count: u64,
    /// Total steps across all open→close pairs.
    pub total_steps: u64,
}

/// The full analysis of one trace: per-repetition results plus the
/// phase-span inventory.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// One analysis per repetition, in trace order.
    pub reps: Vec<RepAnalysis>,
    /// Named phase spans found in the raw stream.
    pub spans: Vec<SpanStat>,
}

/// Analyze a whole trace: split into repetitions, analyze each.
pub fn analyze_trace(events: &[Event], cfg: &AnalyzeConfig) -> TraceAnalysis {
    let mut spans: Vec<SpanStat> = Vec::new();
    let mut open: Vec<(String, u64)> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::PhaseBegin { name } => open.push((name.clone(), e.time.steps())),
            EventKind::PhaseEnd { name } => {
                if let Some(pos) = open.iter().rposition(|(n, _)| n == name) {
                    let (_, begin) = open.remove(pos);
                    let steps = e.time.steps().saturating_sub(begin);
                    match spans.iter_mut().find(|s| &s.name == name) {
                        Some(s) => {
                            s.count += 1;
                            s.total_steps += steps;
                        }
                        None => spans.push(SpanStat {
                            name: name.clone(),
                            count: 1,
                            total_steps: steps,
                        }),
                    }
                }
            }
            _ => {}
        }
    }
    let reps = split_reps(events)
        .iter()
        .map(|rep| analyze_rep(rep, cfg))
        .collect();
    TraceAnalysis { reps, spans }
}

/// Aggregated, JSON-renderable summary of a [`TraceAnalysis`].
#[derive(Clone, Debug)]
pub struct AnalysisSummary {
    /// Process count (max over reps).
    pub p: u32,
    /// Number of repetitions analyzed.
    pub reps: u32,
    /// Min / mean / max completion over reps.
    pub completion: (u64, f64, u64),
    /// Mean critical-path length.
    pub critpath_len_mean: f64,
    /// Mean wire hops on the critical path.
    pub hops_mean: f64,
    /// Fraction of critical-path steps in `o` / `L` / idle.
    pub cost_fracs: (f64, f64, f64),
    /// Fraction of critical-path steps on dissemination payloads.
    pub diss_frac: f64,
    /// Total sends by payload, summed over reps.
    pub messages: MessageBreakdown,
    /// Mean dissemination-phase end and correction-phase length.
    pub phase_means: (f64, f64),
    /// Mean and max per-rank busy fraction (mean over reps).
    pub busy_fracs: (f64, f64),
    /// Bounds checks: `(checked, violations, min slack)` — zero/zero
    /// and `None` slack when no repetition had a synchronized start.
    pub bounds: (u32, u32, Option<i64>),
}

impl AnalysisSummary {
    /// Aggregate a trace analysis.
    pub fn from_trace(ta: &TraceAnalysis) -> AnalysisSummary {
        let n = ta.reps.len().max(1) as f64;
        let mut completion = (u64::MAX, 0.0, 0u64);
        let mut len_mean = 0.0;
        let mut hops_mean = 0.0;
        let mut steps = (0u64, 0u64, 0u64);
        let mut diss_steps = 0u64;
        let mut total_len = 0u64;
        let mut messages = MessageBreakdown::default();
        let mut phase = (0.0, 0.0);
        let mut busy = (0.0, 0.0f64);
        let mut bounds = (0u32, 0u32, None::<i64>);
        let mut p = 0u32;
        for r in &ta.reps {
            p = p.max(r.p);
            completion.0 = completion.0.min(r.completion);
            completion.1 += r.completion as f64 / n;
            completion.2 = completion.2.max(r.completion);
            len_mean += r.critpath.len as f64 / n;
            hops_mean += f64::from(r.critpath.hops) / n;
            steps.0 += r.critpath.o_steps;
            steps.1 += r.critpath.l_steps;
            steps.2 += r.critpath.idle_steps;
            diss_steps += r.critpath.diss_steps;
            total_len += r.critpath.len;
            messages.tree += r.messages.tree;
            messages.gossip += r.messages.gossip;
            messages.correction += r.messages.correction;
            messages.ack += r.messages.ack;
            phase.0 += r.phase.diss_end as f64 / n;
            phase.1 += r.phase.corr_steps as f64 / n;
            busy.0 += r.utilization.mean_frac() / n;
            busy.1 = busy.1.max(r.utilization.busiest().map_or(0.0, |(_, f)| f));
            if let Some(b) = &r.bounds {
                bounds.0 += 1;
                if b.violated() {
                    bounds.1 += 1;
                }
                bounds.2 = Some(bounds.2.map_or(b.slack(), |s: i64| s.min(b.slack())));
            }
        }
        if completion.0 == u64::MAX {
            completion.0 = 0;
        }
        let frac = |part: u64| {
            if total_len == 0 {
                0.0
            } else {
                part as f64 / total_len as f64
            }
        };
        AnalysisSummary {
            p,
            reps: ta.reps.len() as u32,
            completion,
            critpath_len_mean: len_mean,
            hops_mean,
            cost_fracs: (frac(steps.0), frac(steps.1), frac(steps.2)),
            diss_frac: frac(diss_steps),
            messages,
            phase_means: phase,
            busy_fracs: busy,
            bounds,
        }
    }

    /// Render as a JSON object with a fixed field order (byte-stable
    /// for identical traces — the golden summary test relies on it).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("p", u64::from(self.p));
        obj.field_u64("reps", u64::from(self.reps));
        let mut comp = JsonObject::new();
        comp.field_u64("min", self.completion.0);
        comp.field_f64("mean", self.completion.1);
        comp.field_u64("max", self.completion.2);
        obj.field_raw("completion", &comp.finish());
        let mut cp = JsonObject::new();
        cp.field_f64("len_mean", self.critpath_len_mean);
        cp.field_f64("hops_mean", self.hops_mean);
        cp.field_f64("o_frac", self.cost_fracs.0);
        cp.field_f64("l_frac", self.cost_fracs.1);
        cp.field_f64("idle_frac", self.cost_fracs.2);
        cp.field_f64("diss_frac", self.diss_frac);
        obj.field_raw("critpath", &cp.finish());
        let mut msgs = JsonObject::new();
        msgs.field_u64("tree", self.messages.tree);
        msgs.field_u64("gossip", self.messages.gossip);
        msgs.field_u64("correction", self.messages.correction);
        msgs.field_u64("ack", self.messages.ack);
        obj.field_raw("messages", &msgs.finish());
        let mut ph = JsonObject::new();
        ph.field_f64("diss_end_mean", self.phase_means.0);
        ph.field_f64("corr_steps_mean", self.phase_means.1);
        obj.field_raw("phase", &ph.finish());
        let mut util = JsonObject::new();
        util.field_f64("busy_frac_mean", self.busy_fracs.0);
        util.field_f64("busy_frac_max", self.busy_fracs.1);
        obj.field_raw("utilization", &util.finish());
        if self.bounds.0 > 0 {
            let mut b = JsonObject::new();
            b.field_u64("checked", u64::from(self.bounds.0));
            b.field_u64("violations", u64::from(self.bounds.1));
            match self.bounds.2 {
                Some(s) => b.field_raw("slack_min", &s.to_string()),
                None => b.field_null("slack_min"),
            };
            obj.field_raw("bounds", &b.finish());
        } else {
            obj.field_null("bounds");
        }
        obj.finish()
    }

    /// Render as human-readable text (the `ct analyze` summary view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(&mut out, format!("processes            {}", self.p));
        push(&mut out, format!("repetitions          {}", self.reps));
        push(
            &mut out,
            format!(
                "completion           min {}  mean {}  max {}",
                self.completion.0,
                fmt_f64(self.completion.1),
                self.completion.2
            ),
        );
        push(
            &mut out,
            format!(
                "critical path        len {} over {} hops (mean)",
                fmt_f64(self.critpath_len_mean),
                fmt_f64(self.hops_mean)
            ),
        );
        push(
            &mut out,
            format!(
                "  cost attribution   o {:.1}%  L {:.1}%  idle {:.1}%",
                100.0 * self.cost_fracs.0,
                100.0 * self.cost_fracs.1,
                100.0 * self.cost_fracs.2
            ),
        );
        push(
            &mut out,
            format!(
                "  phase attribution  dissemination {:.1}%  correction {:.1}%",
                100.0 * self.diss_frac,
                100.0 * (1.0 - self.diss_frac)
            ),
        );
        push(
            &mut out,
            format!(
                "messages             {} (tree {}, gossip {}, correction {}, ack {})",
                self.messages.total(),
                self.messages.tree,
                self.messages.gossip,
                self.messages.correction,
                self.messages.ack
            ),
        );
        push(
            &mut out,
            format!(
                "phases               dissemination ends {} (mean)  correction {} steps (mean)",
                fmt_f64(self.phase_means.0),
                fmt_f64(self.phase_means.1)
            ),
        );
        push(
            &mut out,
            format!(
                "utilization          busy {:.1}% mean  {:.1}% peak",
                100.0 * self.busy_fracs.0,
                100.0 * self.busy_fracs.1
            ),
        );
        match self.bounds {
            (0, _, _) => push(
                &mut out,
                "bounds               n/a (no synchronized correction)".to_owned(),
            ),
            (checked, violations, slack) => push(
                &mut out,
                format!(
                    "bounds               {checked} checked, {violations} violations, min slack {}",
                    slack.map_or("n/a".to_owned(), |s| s.to_string())
                ),
            ),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_logp::Time;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::sim(Time::new(t), kind)
    }

    fn one_hop() -> Vec<Event> {
        let pl = Payload::Tree;
        vec![
            ev(
                0,
                EventKind::Colored {
                    rank: 0,
                    via: ColoredVia::Root,
                },
            ),
            ev(
                0,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                3,
                EventKind::Arrive {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                4,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: pl,
                },
            ),
            ev(
                4,
                EventKind::Colored {
                    rank: 1,
                    via: ColoredVia::Dissemination,
                },
            ),
        ]
    }

    #[test]
    fn one_hop_rep_analysis() {
        let cfg = AnalyzeConfig::new(LogP::PAPER);
        let r = analyze_rep(&one_hop(), &cfg);
        assert_eq!(r.p, 2);
        assert_eq!(r.completion, 4);
        assert_eq!(r.critpath.len, 4);
        assert_eq!(r.messages.total(), 1);
        assert_eq!(r.phase.diss_end, 4);
        assert_eq!(r.phase.corr_start, None);
        // Rank 0 busy [0,1] (send), rank 1 busy [3,4] (recv).
        assert_eq!(r.utilization.busy, vec![1, 1]);
        assert!((r.utilization.mean_frac() - 0.25).abs() < 1e-12);
        assert!(r.bounds.is_none());
    }

    #[test]
    fn bounds_check_fault_free_is_exact() {
        // Fault-free: g_max = 0, bounds collapse to Lemma 2's 8 steps.
        let mut events = one_hop();
        events.push(ev(
            4,
            EventKind::SendStart {
                from: 1,
                to: 0,
                payload: Payload::Correction,
            },
        ));
        // Both ranks dissemination-colored → no gap.
        let cfg = AnalyzeConfig::new(LogP::PAPER).with_sync_start(4);
        let r = analyze_rep(&events, &cfg);
        let b = r.bounds.unwrap();
        assert_eq!(b.g_max, 0);
        assert_eq!(b.lower, 8);
        assert_eq!(b.upper, 8);
        // Observed correction time 5−4 = 1, far inside: flagged as a
        // "violation" of the exact fault-free equality — the run ended
        // before a full checked correction, which is worth surfacing.
        assert_eq!(b.observed, 1);
        assert!(b.violated());
        assert_eq!(b.slack(), 7);
    }

    #[test]
    fn span_inventory_counts_pairs() {
        let mut events = vec![ev(
            0,
            EventKind::PhaseBegin {
                name: "broadcast".into(),
            },
        )];
        events.extend(one_hop());
        events.push(ev(
            9,
            EventKind::PhaseEnd {
                name: "broadcast".into(),
            },
        ));
        let ta = analyze_trace(&events, &AnalyzeConfig::new(LogP::PAPER));
        assert_eq!(ta.reps.len(), 1);
        assert_eq!(
            ta.spans,
            vec![SpanStat {
                name: "broadcast".into(),
                count: 1,
                total_steps: 9
            }]
        );
    }

    #[test]
    fn summary_aggregates_and_renders() {
        let ta = analyze_trace(&one_hop(), &AnalyzeConfig::new(LogP::PAPER));
        let s = AnalysisSummary::from_trace(&ta);
        assert_eq!(s.p, 2);
        assert_eq!(s.reps, 1);
        assert_eq!(s.completion, (4, 4.0, 4));
        assert!((s.cost_fracs.0 - 0.5).abs() < 1e-12);
        assert!((s.cost_fracs.1 - 0.5).abs() < 1e-12);
        assert_eq!(s.diss_frac, 1.0);
        let json = s.to_json();
        assert!(
            json.starts_with(r#"{"p":2,"reps":1,"completion":{"min":4,"#),
            "{json}"
        );
        assert!(json.contains(r#""bounds":null"#), "{json}");
        let text = s.render_text();
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("dissemination 100.0%"), "{text}");
    }

    #[test]
    fn empty_trace_summary_is_zeroed() {
        let ta = analyze_trace(&[], &AnalyzeConfig::new(LogP::PAPER));
        let s = AnalysisSummary::from_trace(&ta);
        assert_eq!(s.completion, (0, 0.0, 0));
        assert_eq!(s.critpath_len_mean, 0.0);
        let _ = s.to_json();
    }
}
