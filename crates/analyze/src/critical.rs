//! Critical-path extraction with per-segment LogP cost attribution.
//!
//! Starting from the completion event, repeatedly follow the
//! latest-binding predecessor ([`crate::dag::CausalDag::binding_pred`])
//! back to the start of the run. Each hop contributes segments
//! classified as sender/receiver **overhead** (`o`), **wire** time
//! (`L`), or **idle** (waits: a synchronized correction start, a
//! `WaitUntil` repoll, sender-port slack). Segment lengths telescope,
//! so the path length equals the completion time exactly — that
//! identity is the analyzer's core invariant, property-tested against
//! the simulator in `tests/`.
//!
//! Each segment also carries the payload of the message chain it
//! belongs to, which yields the dissemination-phase vs
//! correction-phase attribution of the paper's §4 latency questions:
//! tree/gossip payloads disseminate, correction/ack payloads correct.

use ct_core::protocol::Payload;
use ct_logp::Rank;

use crate::dag::{CausalDag, EdgeKind, NodeKind};

/// What a critical-path segment's time was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// Sender or receiver CPU overhead (`o`).
    Overhead,
    /// Wire latency (`L`).
    Wire,
    /// Waiting: synchronized starts, protocol delays, port slack.
    Idle,
}

impl CostClass {
    /// Short stable label (`o` / `L` / `idle`).
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Overhead => "o",
            CostClass::Wire => "L",
            CostClass::Idle => "idle",
        }
    }
}

/// One contiguous span of the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Segment start time.
    pub start: u64,
    /// Segment end time (`end ≥ start`).
    pub end: u64,
    /// What the time was spent on.
    pub class: CostClass,
    /// The rank where the time was spent.
    pub rank: Rank,
    /// The payload of the message chain this segment advances.
    pub payload: Payload,
}

impl Segment {
    /// Segment length.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Is the segment zero-length? (Zero-length segments are dropped
    /// during extraction; this exists for the usual is_empty pairing.)
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The extracted critical path of one repetition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total path length — equals the run's completion time.
    pub len: u64,
    /// Steps attributed to send/receive overhead (`o`).
    pub o_steps: u64,
    /// Steps attributed to wire latency (`L`).
    pub l_steps: u64,
    /// Steps attributed to waiting.
    pub idle_steps: u64,
    /// Steps on dissemination-payload segments (tree/gossip).
    pub diss_steps: u64,
    /// Steps on correction-payload segments (correction/ack).
    pub corr_steps: u64,
    /// Message hops (wire edges) on the path.
    pub hops: u32,
    /// The path's segments in chronological order.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Extract the critical path from a causal DAG.
    pub fn extract(dag: &CausalDag) -> CriticalPath {
        let mut segments: Vec<Segment> = Vec::new();
        let Some(terminal) = dag.terminal else {
            return CriticalPath::default();
        };
        let o = dag.o;
        let push = |segments: &mut Vec<Segment>, seg: Segment| {
            debug_assert!(seg.end >= seg.start, "segments must not be negative");
            if !seg.is_empty() {
                segments.push(seg);
            }
        };

        // A send's completion (its trailing `o`) can be what defines
        // quiescence; account for it before walking backward.
        let term = dag.nodes[terminal];
        if term.kind == NodeKind::Send {
            push(
                &mut segments,
                Segment {
                    start: term.t,
                    end: term.t + o,
                    class: CostClass::Overhead,
                    rank: term.rank(),
                    payload: term.payload,
                },
            );
        }

        let mut hops = 0u32;
        let mut cur = terminal;
        loop {
            let node = dag.nodes[cur];
            let Some((pred_idx, kind)) = dag.binding_pred(cur) else {
                // Chain start. Any remaining time back to t = 0 is an
                // origin wait (e.g. a synchronized correction start).
                push(
                    &mut segments,
                    Segment {
                        start: 0,
                        end: node.t,
                        class: CostClass::Idle,
                        rank: node.rank(),
                        payload: node.payload,
                    },
                );
                break;
            };
            let pred = dag.nodes[pred_idx];
            let (lo, hi) = (pred.t, node.t);
            debug_assert!(lo <= hi, "predecessors precede their successors");
            let dur = hi - lo;
            match kind {
                EdgeKind::Wire => {
                    // [send, send+o] is sender overhead, the rest wire
                    // time. Wall-clock traces may measure a transit
                    // shorter than o; credit what is there.
                    hops += 1;
                    let o_part = o.min(dur);
                    push(
                        &mut segments,
                        Segment {
                            start: lo + o_part,
                            end: hi,
                            class: CostClass::Wire,
                            rank: node.rank(),
                            payload: node.payload,
                        },
                    );
                    push(
                        &mut segments,
                        Segment {
                            start: lo,
                            end: lo + o_part,
                            class: CostClass::Overhead,
                            rank: pred.rank(),
                            payload: node.payload,
                        },
                    );
                }
                EdgeKind::RecvPort | EdgeKind::RecvQueue => {
                    // The trailing o is receive processing; any excess
                    // (only possible in noisy wall-clock traces) is a
                    // port wait.
                    let o_part = o.min(dur);
                    push(
                        &mut segments,
                        Segment {
                            start: hi - o_part,
                            end: hi,
                            class: CostClass::Overhead,
                            rank: node.rank(),
                            payload: node.payload,
                        },
                    );
                    push(
                        &mut segments,
                        Segment {
                            start: lo,
                            end: hi - o_part,
                            class: CostClass::Idle,
                            rank: node.rank(),
                            payload: node.payload,
                        },
                    );
                }
                EdgeKind::SendPort => {
                    // The port was busy o after the previous send; any
                    // further gap is protocol slack (WaitUntil).
                    let o_part = o.min(dur);
                    push(
                        &mut segments,
                        Segment {
                            start: lo + o_part,
                            end: hi,
                            class: CostClass::Idle,
                            rank: node.rank(),
                            payload: node.payload,
                        },
                    );
                    push(
                        &mut segments,
                        Segment {
                            start: lo,
                            end: lo + o_part,
                            class: CostClass::Overhead,
                            rank: pred.rank(),
                            payload: node.payload,
                        },
                    );
                }
                EdgeKind::Trigger | EdgeKind::Origin => {
                    // Pure wait between cause and reaction (usually 0).
                    push(
                        &mut segments,
                        Segment {
                            start: lo,
                            end: hi,
                            class: CostClass::Idle,
                            rank: node.rank(),
                            payload: node.payload,
                        },
                    );
                }
            }
            cur = pred_idx;
        }

        segments.reverse();
        let mut path = CriticalPath {
            len: dag.completion,
            hops,
            segments,
            ..CriticalPath::default()
        };
        for seg in &path.segments {
            let steps = seg.len();
            match seg.class {
                CostClass::Overhead => path.o_steps += steps,
                CostClass::Wire => path.l_steps += steps,
                CostClass::Idle => path.idle_steps += steps,
            }
            match seg.payload {
                Payload::Tree | Payload::Gossip { .. } => path.diss_steps += steps,
                Payload::Correction | Payload::Ack => path.corr_steps += steps,
            }
        }
        path
    }

    /// Does the cost attribution telescope to the path length? (True
    /// by construction; the property tests assert it per run.)
    pub fn attribution_is_exact(&self) -> bool {
        self.o_steps + self.l_steps + self.idle_steps == self.len
            && self.diss_steps + self.corr_steps == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_logp::Time;
    use ct_obs::{Event, EventKind};

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::sim(Time::new(t), kind)
    }

    fn msg(t: u64, kind: &str, from: Rank, to: Rank, payload: Payload) -> Event {
        let k = match kind {
            "send" => EventKind::SendStart { from, to, payload },
            "arrive" => EventKind::Arrive { from, to, payload },
            "deliver" => EventKind::Deliver { from, to, payload },
            _ => panic!("unknown kind"),
        };
        ev(t, k)
    }

    /// One hop, paper parameters: send 0→1 at t=0, arrive 3, deliver 4.
    #[test]
    fn single_hop_splits_into_o_l_o() {
        let pl = Payload::Tree;
        let events = vec![
            msg(0, "send", 0, 1, pl),
            msg(3, "arrive", 0, 1, pl),
            msg(4, "deliver", 0, 1, pl),
        ];
        let dag = CausalDag::build(&events, 1);
        let path = CriticalPath::extract(&dag);
        assert_eq!(path.len, 4);
        assert_eq!(path.o_steps, 2); // send o + recv o
        assert_eq!(path.l_steps, 2);
        assert_eq!(path.idle_steps, 0);
        assert_eq!(path.hops, 1);
        assert!(path.attribution_is_exact());
        // Chronological order, contiguous coverage of [0, 4].
        assert_eq!(path.segments.first().unwrap().start, 0);
        assert_eq!(path.segments.last().unwrap().end, 4);
        for w in path.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn delayed_send_shows_idle_origin() {
        // A synchronized-start send at t=6 with nothing before it.
        let pl = Payload::Correction;
        let events = vec![
            msg(6, "send", 0, 1, pl),
            msg(9, "arrive", 0, 1, pl),
            msg(10, "deliver", 0, 1, pl),
        ];
        let dag = CausalDag::build(&events, 1);
        let path = CriticalPath::extract(&dag);
        assert_eq!(path.len, 10);
        assert_eq!(path.idle_steps, 6);
        assert_eq!(path.o_steps, 2);
        assert_eq!(path.l_steps, 2);
        assert_eq!(path.corr_steps, 10);
        assert_eq!(path.diss_steps, 0);
        assert!(path.attribution_is_exact());
    }

    #[test]
    fn terminal_send_counts_its_overhead() {
        // Quiescence defined by a send whose receiver is dead.
        let pl = Payload::Tree;
        let events = vec![
            msg(0, "send", 0, 1, pl),
            msg(3, "arrive", 0, 1, pl),
            msg(4, "deliver", 0, 1, pl),
            msg(4, "send", 1, 2, pl),
            ev(
                7,
                EventKind::DropDead {
                    from: 1,
                    to: 2,
                    payload: pl,
                },
            ),
        ];
        let dag = CausalDag::build(&events, 1);
        assert_eq!(dag.completion, 5); // send at 4 + o
        let path = CriticalPath::extract(&dag);
        assert_eq!(path.len, 5);
        assert_eq!(path.o_steps, 3);
        assert_eq!(path.l_steps, 2);
        assert!(path.attribution_is_exact());
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let dag = CausalDag::build(&[], 1);
        let path = CriticalPath::extract(&dag);
        assert_eq!(path.len, 0);
        assert!(path.segments.is_empty());
        assert!(path.attribution_is_exact());
    }

    #[test]
    fn mixed_payload_chain_splits_phases() {
        // Tree hop, then the receiver sends a correction that defines
        // quiescence.
        let events = vec![
            msg(0, "send", 0, 1, Payload::Tree),
            msg(3, "arrive", 0, 1, Payload::Tree),
            msg(4, "deliver", 0, 1, Payload::Tree),
            msg(4, "send", 1, 2, Payload::Correction),
            msg(7, "arrive", 1, 2, Payload::Correction),
            msg(8, "deliver", 1, 2, Payload::Correction),
        ];
        let dag = CausalDag::build(&events, 1);
        let path = CriticalPath::extract(&dag);
        assert_eq!(path.len, 8);
        assert_eq!(path.diss_steps, 4);
        assert_eq!(path.corr_steps, 4);
        assert!(path.attribution_is_exact());
    }
}
