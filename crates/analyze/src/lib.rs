//! Trace analysis for corrected-tree broadcasts.
//!
//! `ct-analyze` consumes the JSONL event schema emitted by `ct-obs`
//! sinks (from simulator runs, thread-cluster runs, or campaign
//! traces) and answers *why* a run took as long as it did:
//!
//! - [`trace`] parses event streams back from JSONL and splits
//!   campaign traces into repetitions;
//! - [`dag`] reconstructs the causal DAG — send→arrive wire edges,
//!   arrive→deliver port edges, per-rank occupancy edges;
//! - [`critical`] extracts the critical path by backward
//!   latest-predecessor chaining and attributes every step of it to
//!   LogP cost classes (`o`, `L`, idle) and protocol phases
//!   (dissemination vs correction);
//! - [`summary`] aggregates per-repetition analyses — phase split,
//!   per-rank utilization, message breakdown — and checks observed
//!   correction times against the Lemma 3 bounds from `ct-analysis`;
//! - [`forensics`] joins a trace with the tree topology and fault mask
//!   into per-failure impact reports (orphaned subtrees, rescue
//!   provenance, added latency) and a run-level [`WasteReport`];
//! - [`bench`] persists campaign metrics as `BENCH_<name>.json`
//!   snapshots and diffs them for perf-regression tracking
//!   (`ct perf diff`);
//! - [`scheduler`] parses `ct-telemetry-v1` runtime snapshots (from
//!   `ct stats` or bench manifests) and renders scheduler health
//!   summaries (`ct analyze --view scheduler`);
//! - [`postmortem`] parses `ct-postmortem-v1` flight-recorder dumps
//!   and renders per-stranded-rank causal reconstructions
//!   (`ct postmortem`, `ct analyze --view postmortem`);
//! - [`series`] parses `ct-series-v1` time-series exports (from
//!   `ct serve`, `ct stats --series` or the `/series.jsonl` endpoint)
//!   and renders rate/health trend summaries
//!   (`ct analyze --view series`).
//!
//! The crate is pure consumer-side: it never runs protocols itself,
//! so it depends only on the model/schema crates and stays reusable
//! against traces from any producer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod critical;
pub mod dag;
pub mod forensics;
pub mod postmortem;
pub mod scheduler;
pub mod series;
pub mod summary;
pub mod trace;
pub mod value;

pub use bench::{BenchSnapshot, MetricDelta, PerfDiff};
pub use critical::{CostClass, CriticalPath, Segment};
pub use dag::{CausalDag, EdgeKind, Node, NodeKind};
pub use forensics::{analyze_forensics, FailureImpact, ForensicsReport, OrphanRescue, WasteReport};
pub use postmortem::PostmortemReport;
pub use scheduler::SchedulerSummary;
pub use series::SeriesSummary;
pub use summary::{
    analyze_rep, analyze_trace, AnalysisSummary, AnalyzeConfig, BoundsCheck, MessageBreakdown,
    PhaseSplit, RepAnalysis, SpanStat, TraceAnalysis, Utilization,
};
pub use trace::{infer_p, parse_event, parse_jsonl, split_reps, ParseError};
pub use value::Value;
