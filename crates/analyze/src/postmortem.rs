//! Consumer side of `ct-postmortem-v1` dumps (`ct postmortem`,
//! `ct analyze --view postmortem`).
//!
//! The runtime's flight recorder answers *what happened last*; this
//! module turns its frozen dump into a causal story a human can act
//! on. For every rank the dump focuses on (the stranded ranks, when
//! the failure was a watchdog stall) it reconstructs:
//!
//! * the **last poll** — when the scheduler last ran the rank, on the
//!   iteration clock;
//! * the **last mailbox push** and *who sent it* — or the explicit
//!   absence of one, which is itself the diagnosis for an orphaned
//!   subtree (a dead parent never sends, so nothing ever reaches the
//!   subtree);
//! * **pending timers** — arms with no later fire;
//! * the rank's **last actions**, straight from the rings.
//!
//! Rendering is deterministic for a fixed dump and golden-pinned like
//! the scheduler view.

use core::fmt::Write as _;

use crate::value::Value;

/// The dump schema this module understands.
pub const POSTMORTEM_SCHEMA: &str = "ct-postmortem-v1";

/// One flight record as it appears in a dump's `tail` / `ranks[].last`
/// sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmRecord {
    /// Writer shard the record came from (worker index; the highest
    /// shard is the coordinator).
    pub shard: u64,
    /// Per-shard sequence number.
    pub seq: u64,
    /// Record kind (wire name, e.g. `mailbox_push`).
    pub kind: String,
    /// The rank concerned, when the record names one.
    pub rank: Option<u64>,
    /// Kind-specific payload (pusher rank, drain count, deadline, …).
    pub aux: u64,
    /// Logical step (µs into the iteration / LogP steps).
    pub step: u64,
    /// Wall-clock µs since the cluster base (0 for simulator records).
    pub wall_us: u64,
}

/// Per-stranded-rank diagnostics copied out of the embedded stall
/// report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmStallRank {
    /// The stranded rank.
    pub rank: u64,
    /// Its `scheduled` flag at timeout.
    pub scheduled: bool,
    /// Mailbox occupancy at timeout.
    pub mailbox_len: u64,
    /// Lifetime mailbox spill count.
    pub mailbox_spilled: u64,
    /// Cluster-timeline stamp of its last quantum, if any.
    pub last_poll_us: Option<u64>,
}

/// The embedded `StallReport`, when the dump reason was a stall.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmStall {
    /// Broadcast iteration id that stalled.
    pub id: u64,
    /// The expired deadline, ms.
    pub timeout_ms: u64,
    /// Live ranks.
    pub live: u64,
    /// Live ranks colored before the deadline.
    pub colored: u64,
    /// Run-queue depth at timeout.
    pub runq_depth: u64,
    /// Pending timer-wheel entries at timeout.
    pub pending_timers: u64,
    /// Coordinator in-flight backlog at timeout.
    pub coord_in_flight: u64,
    /// µs since the iteration epoch at report time.
    pub now_us: u64,
    /// Iteration epoch on the cluster timeline, µs.
    pub epoch_us: u64,
    /// Per-stranded-rank diagnostics, ascending.
    pub ranks: Vec<PmStallRank>,
}

/// One focused rank and its recent history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmRankTail {
    /// The rank.
    pub rank: u64,
    /// Its last-K records, oldest first.
    pub last: Vec<PmRecord>,
}

/// A parsed `ct-postmortem-v1` dump.
#[derive(Clone, Debug, PartialEq)]
pub struct PostmortemReport {
    /// Why the dump was taken (`watchdog_stall`, `worker_panic`,
    /// `monitor_violation`).
    pub reason: String,
    /// Total ranks.
    pub p: u64,
    /// The embedded stall report, when present.
    pub stall: Option<PmStall>,
    /// Counter totals from the embedded telemetry snapshot, when
    /// present.
    pub counters: Option<std::collections::BTreeMap<String, f64>>,
    /// Flight-ring capacity per shard.
    pub flight_cap: u64,
    /// Number of writer shards.
    pub flight_shards: u64,
    /// Records retained across all rings.
    pub retained: u64,
    /// Records lost to ring wrap across all rings.
    pub lost: u64,
    /// The merged time-ordered tail.
    pub tail: Vec<PmRecord>,
    /// Per-focused-rank recent history.
    pub ranks: Vec<PmRankTail>,
}

fn get_u64(obj: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

fn get_bool(obj: &Value, key: &str, ctx: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("{ctx}: missing or non-boolean `{key}`")),
    }
}

fn parse_record(v: &Value, ctx: &str) -> Result<PmRecord, String> {
    let rank = match v.get("rank") {
        Some(Value::Null) => None,
        Some(other) => Some(
            other
                .as_u64()
                .ok_or_else(|| format!("{ctx}: non-integer `rank`"))?,
        ),
        None => return Err(format!("{ctx}: missing `rank`")),
    };
    Ok(PmRecord {
        shard: get_u64(v, "shard", ctx)?,
        seq: get_u64(v, "seq", ctx)?,
        kind: v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing `kind`"))?
            .to_owned(),
        rank,
        aux: get_u64(v, "aux", ctx)?,
        step: get_u64(v, "step", ctx)?,
        wall_us: get_u64(v, "wall_us", ctx)?,
    })
}

fn parse_stall(v: &Value) -> Result<PmStall, String> {
    let ctx = "stall";
    let mut ranks = Vec::new();
    for (i, rv) in v
        .get("ranks")
        .and_then(Value::as_arr)
        .ok_or("stall: missing `ranks` array")?
        .iter()
        .enumerate()
    {
        let rctx = format!("stall.ranks[{i}]");
        let last_poll_us = match rv.get("last_poll_us") {
            Some(Value::Null) | None => None,
            Some(other) => Some(
                other
                    .as_u64()
                    .ok_or_else(|| format!("{rctx}: non-integer `last_poll_us`"))?,
            ),
        };
        ranks.push(PmStallRank {
            rank: get_u64(rv, "rank", &rctx)?,
            scheduled: get_bool(rv, "scheduled", &rctx)?,
            mailbox_len: get_u64(rv, "mailbox_len", &rctx)?,
            mailbox_spilled: get_u64(rv, "mailbox_spilled", &rctx)?,
            last_poll_us,
        });
    }
    Ok(PmStall {
        id: get_u64(v, "id", ctx)?,
        timeout_ms: get_u64(v, "timeout_ms", ctx)?,
        live: get_u64(v, "live", ctx)?,
        colored: get_u64(v, "colored", ctx)?,
        runq_depth: get_u64(v, "runq_depth", ctx)?,
        pending_timers: get_u64(v, "pending_timers", ctx)?,
        coord_in_flight: get_u64(v, "coord_in_flight", ctx)?,
        now_us: get_u64(v, "now_us", ctx)?,
        epoch_us: get_u64(v, "epoch_us", ctx)?,
        ranks,
    })
}

impl PostmortemReport {
    /// Parse and validate a `ct-postmortem-v1` dump.
    pub fn from_json(text: &str) -> Result<PostmortemReport, String> {
        let root = Value::parse(text)?;
        match root.get("schema").and_then(Value::as_str) {
            Some(POSTMORTEM_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema `{other}`")),
            None => return Err("missing `schema` tag".to_owned()),
        }
        let reason = root
            .get("reason")
            .and_then(Value::as_str)
            .ok_or("missing `reason`")?
            .to_owned();
        let p = get_u64(&root, "p", "dump")?;
        let stall = match root.get("stall") {
            Some(Value::Null) | None => None,
            Some(v) => Some(parse_stall(v)?),
        };
        let counters = match root.get("telemetry") {
            Some(Value::Null) | None => None,
            Some(t) => Some(
                t.get("counters")
                    .ok_or("telemetry: missing `counters`")?
                    .to_f64_map(),
            ),
        };
        let flight = root.get("flight").ok_or("missing `flight`")?;
        let flight_cap = get_u64(flight, "cap", "flight")?;
        let shards = flight
            .get("shards")
            .and_then(Value::as_arr)
            .ok_or("flight: missing `shards` array")?;
        let mut retained = 0u64;
        let mut lost = 0u64;
        for (i, s) in shards.iter().enumerate() {
            let ctx = format!("flight.shards[{i}]");
            lost += get_u64(s, "lost", &ctx)?;
            retained += s
                .get("records")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{ctx}: missing `records`"))?
                .len() as u64;
        }
        let mut tail = Vec::new();
        for (i, v) in root
            .get("tail")
            .and_then(Value::as_arr)
            .ok_or("missing `tail` array")?
            .iter()
            .enumerate()
        {
            tail.push(parse_record(v, &format!("tail[{i}]"))?);
        }
        let mut ranks = Vec::new();
        for (i, v) in root
            .get("ranks")
            .and_then(Value::as_arr)
            .ok_or("missing `ranks` array")?
            .iter()
            .enumerate()
        {
            let ctx = format!("ranks[{i}]");
            let rank = get_u64(v, "rank", &ctx)?;
            let mut last = Vec::new();
            for (j, rv) in v
                .get("last")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{ctx}: missing `last`"))?
                .iter()
                .enumerate()
            {
                last.push(parse_record(rv, &format!("{ctx}.last[{j}]"))?);
            }
            ranks.push(PmRankTail { rank, last });
        }
        Ok(PostmortemReport {
            reason,
            p,
            stall,
            counters,
            flight_cap,
            flight_shards: shards.len() as u64,
            retained,
            lost,
            tail,
            ranks,
        })
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters
            .as_ref()
            .and_then(|c| c.get(name))
            .map_or(0, |v| *v as u64)
    }

    /// Render the per-stranded-rank causal reconstruction (see the
    /// module docs). Deterministic for a fixed dump.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "postmortem: {} (p={})", self.reason, self.p);
        let _ = writeln!(
            out,
            "flight recorder: {} shards x cap {}, {} records retained, {} lost to wrap",
            self.flight_shards, self.flight_cap, self.retained, self.lost
        );
        if let Some(stall) = &self.stall {
            let _ = writeln!(
                out,
                "stall: broadcast {} timed out after {} ms ({}/{} live ranks colored)",
                stall.id, stall.timeout_ms, stall.colored, stall.live
            );
            let _ = writeln!(
                out,
                "  run queue: {} | pending timers: {} | coordinator in-flight: {}",
                stall.runq_depth, stall.pending_timers, stall.coord_in_flight
            );
        }
        if self.counters.is_some() {
            let _ = writeln!(
                out,
                "telemetry: {} quanta | {} delivered | {} stale quanta | {} rechecks | {} spills",
                self.counter("sched.quanta"),
                self.counter("msgs.delivered"),
                self.counter("sched.stale_quanta"),
                self.counter("sched.lost_wakeup_rechecks"),
                self.counter("mailbox.spills")
            );
        }
        for section in &self.ranks {
            self.render_rank(&mut out, section);
        }
        let show = self.tail.len().min(10);
        if show > 0 {
            let _ = writeln!(
                out,
                "tail (last {} of {} merged records):",
                show,
                self.tail.len()
            );
            for r in &self.tail[self.tail.len() - show..] {
                let _ = writeln!(out, "    {}", rec_line(r));
            }
        }
        out
    }

    fn render_rank(&self, out: &mut String, section: &PmRankTail) {
        let r = section.rank;
        match self
            .stall
            .as_ref()
            .and_then(|s| s.ranks.iter().find(|sr| sr.rank == r))
        {
            Some(sr) => {
                let _ = writeln!(
                    out,
                    "rank {:>5}: scheduled={} mailbox={} (spilled {})",
                    r, sr.scheduled, sr.mailbox_len, sr.mailbox_spilled
                );
            }
            None => {
                let _ = writeln!(out, "rank {:>5}:", r);
            }
        }
        // Last poll: the newest quantum_start naming this rank.
        match section
            .last
            .iter()
            .rev()
            .find(|rec| rec.kind == "quantum_start" && rec.rank == Some(r))
        {
            Some(q) => {
                let _ = writeln!(
                    out,
                    "  last poll:         {} \u{b5}s into iteration {} (wall {} \u{b5}s)",
                    q.step, q.aux, q.wall_us
                );
            }
            None => {
                let _ = writeln!(out, "  last poll:         none recorded");
            }
        }
        // Last mailbox push TO this rank, with pusher identity; its
        // absence is the orphaned-subtree signature.
        match section
            .last
            .iter()
            .rev()
            .find(|rec| rec.kind == "mailbox_push" && rec.rank == Some(r))
        {
            Some(push) => {
                // aux packs `broadcast_id << 32 | pushing_rank`; a zero
                // broadcast id means a single-broadcast (or simulator)
                // run, where naming it adds nothing.
                let pusher = push.aux & 0xffff_ffff;
                let bcast = push.aux >> 32;
                if bcast == 0 {
                    let _ = writeln!(
                        out,
                        "  last mailbox push: from rank {} at step {} (wall {} \u{b5}s)",
                        pusher, push.step, push.wall_us
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "  last mailbox push: from rank {} (broadcast {}) at step {} (wall {} \u{b5}s)",
                        pusher, bcast, push.step, push.wall_us
                    );
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "  last mailbox push: none recorded - no message ever reached this rank"
                );
            }
        }
        // Pending timers: arms with no later fire for this rank.
        let last_fire = section
            .last
            .iter()
            .rev()
            .position(|rec| rec.kind == "timer_fire" && rec.rank == Some(r))
            .map(|back| section.last.len() - 1 - back);
        let pending: Vec<&PmRecord> = section
            .last
            .iter()
            .enumerate()
            .filter(|(i, rec)| {
                rec.kind == "timer_arm" && rec.rank == Some(r) && last_fire.is_none_or(|f| *i > f)
            })
            .map(|(_, rec)| rec)
            .collect();
        if pending.is_empty() {
            let _ = writeln!(out, "  pending timers:    none");
        } else {
            for arm in pending {
                let _ = writeln!(
                    out,
                    "  pending timers:    armed for {} \u{b5}s (at step {})",
                    arm.aux, arm.step
                );
            }
        }
        if !section.last.is_empty() {
            let _ = writeln!(out, "  last actions:");
            for rec in &section.last {
                let _ = writeln!(out, "    {}", rec_line(rec));
            }
        }
    }
}

/// One record as a fixed-width text line.
fn rec_line(r: &PmRecord) -> String {
    let rank = r.rank.map_or_else(|| "-".to_owned(), |v| v.to_string());
    format!(
        "[s{} #{:<4}] wall {:>8} \u{b5}s  {:<13} rank {:>5}  aux={} step={}",
        r.shard, r.seq, r.wall_us, r.kind, rank, r.aux, r.step
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = concat!(
        "{\"schema\":\"ct-postmortem-v1\",\"reason\":\"watchdog_stall\",\"p\":8,",
        "\"stall\":{\"id\":1,\"timeout_ms\":200,\"p\":8,\"live\":7,\"colored\":4,",
        "\"runq_depth\":0,\"pending_timers\":0,\"coord_in_flight\":0,",
        "\"now_us\":201000,\"epoch_us\":1000,",
        "\"ranks\":[{\"rank\":3,\"scheduled\":false,\"mailbox_len\":0,",
        "\"mailbox_spilled\":0,\"last_poll_us\":1010}]},",
        "\"telemetry\":null,",
        "\"flight\":{\"cap\":8,\"shards\":[{\"shard\":0,\"written\":2,\"lost\":0,",
        "\"records\":[",
        "{\"seq\":0,\"kind\":\"quantum_start\",\"rank\":3,\"aux\":1,\"step\":10,\"wall_us\":1010},",
        "{\"seq\":1,\"kind\":\"mailbox_push\",\"rank\":5,\"aux\":3,\"step\":12,\"wall_us\":1012}",
        "]}]},",
        "\"tail\":[",
        "{\"shard\":0,\"seq\":0,\"kind\":\"quantum_start\",\"rank\":3,\"aux\":1,\"step\":10,\"wall_us\":1010},",
        "{\"shard\":0,\"seq\":1,\"kind\":\"mailbox_push\",\"rank\":5,\"aux\":3,\"step\":12,\"wall_us\":1012}",
        "],",
        "\"ranks\":[{\"rank\":3,\"last\":[",
        "{\"shard\":0,\"seq\":0,\"kind\":\"quantum_start\",\"rank\":3,\"aux\":1,\"step\":10,\"wall_us\":1010},",
        "{\"shard\":0,\"seq\":1,\"kind\":\"mailbox_push\",\"rank\":5,\"aux\":3,\"step\":12,\"wall_us\":1012}",
        "]}]}"
    );

    #[test]
    fn parses_and_reconstructs_the_stranded_rank() {
        let report = PostmortemReport::from_json(MINIMAL).unwrap();
        assert_eq!(report.reason, "watchdog_stall");
        assert_eq!(report.p, 8);
        assert_eq!(report.retained, 2);
        assert_eq!(report.ranks.len(), 1);
        let text = report.render_text();
        assert!(text.contains("postmortem: watchdog_stall (p=8)"), "{text}");
        assert!(text.contains("rank     3: scheduled=false"), "{text}");
        assert!(
            text.contains("last poll:         10 \u{b5}s into iteration 1"),
            "{text}"
        );
        // No push ever reached rank 3 - the orphaned-subtree signature.
        assert!(text.contains("last mailbox push: none recorded"), "{text}");
        assert!(text.contains("pending timers:    none"), "{text}");
        assert_eq!(
            text,
            PostmortemReport::from_json(MINIMAL).unwrap().render_text()
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = PostmortemReport::from_json("{\"schema\":\"nope\"}").unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn rejects_malformed_records() {
        let bad = MINIMAL.replace("\"kind\":\"quantum_start\",", "");
        let err = PostmortemReport::from_json(&bad).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }
}
