//! Failure forensics: per-failure impact reports and waste accounting.
//!
//! Joins a recorded event stream (one repetition) with the tree
//! topology and the fault mask to answer the questions aggregate
//! counters cannot: *which* failure orphaned *which* ranks, *who*
//! rescued each orphan (first coloring delivery via the tree or via
//! ring correction, and from how far around the ring), and how much
//! latency each failure added over the fault-free dissemination
//! schedule. Alongside, a run-level [`WasteReport`] quantifies the
//! overhead the correction papers compare on: sends into dead ranks,
//! duplicate coloring deliveries masked at already-colored ranks, and
//! correction sends to targets that were already colored — each split
//! by dissemination (`tree`/`gossip`) vs correction (`correction`/
//! `ack`) traffic.
//!
//! The join assumes the identity rank mapping (root 0, no shuffle):
//! under `--root`/`--shuffle` the emitted ranks are physical while the
//! topology is virtual, so attribution would be permuted.

use std::collections::BTreeMap;

use ct_core::protocol::{ColoredVia, Payload};
use ct_core::tree::{Topology, Tree};
use ct_logp::{ring_distance, LogP, Rank};
use ct_obs::json::JsonObject;
use ct_obs::{Event, EventKind};

fn is_correction(p: Payload) -> bool {
    matches!(p, Payload::Correction | Payload::Ack)
}

/// Causally sorted view of one repetition: `(time, order_class, index)`
/// — the same stable tiebreak the invariant monitor uses, so cluster
/// wall-clock interleaving cannot skew the accounting.
fn causal_order(events: &[Event]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (events[i].time, events[i].kind.order_class(), i));
    order
}

/// Run-level waste accounting (one repetition), split by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WasteReport {
    /// Total `SendStart` events.
    pub sends: u64,
    /// Dissemination sends whose target is dead.
    pub dead_sends_dissemination: u64,
    /// Correction-phase sends whose target is dead.
    pub dead_sends_correction: u64,
    /// Coloring deliveries masked at an already-colored rank,
    /// dissemination payloads.
    pub duplicate_deliveries_dissemination: u64,
    /// Coloring deliveries masked at an already-colored rank,
    /// correction payloads.
    pub duplicate_deliveries_correction: u64,
    /// Correction sends whose target was already colored when the send
    /// started (inherent redundancy of blind ring probing).
    pub correction_sends_to_colored: u64,
}

impl WasteReport {
    /// Account one repetition's events against a fault mask.
    pub fn from_events(events: &[Event], failed: &[bool]) -> WasteReport {
        let dead = |r: Rank| failed.get(r as usize).copied().unwrap_or(false);
        let order = causal_order(events);
        let mut report = WasteReport::default();
        // First coloring delivery per rank, and coloring time per rank.
        let mut first_coloring: BTreeMap<Rank, usize> = BTreeMap::new();
        let mut colored_time: BTreeMap<Rank, u64> = BTreeMap::new();
        for &i in &order {
            match &events[i].kind {
                EventKind::Colored { rank, .. } => {
                    colored_time.entry(*rank).or_insert(events[i].time.steps());
                }
                EventKind::Deliver { to, payload, .. } if payload.colors() => {
                    first_coloring.entry(*to).or_insert(i);
                }
                _ => {}
            }
        }
        for &i in &order {
            match &events[i].kind {
                EventKind::SendStart { to, payload, .. } => {
                    report.sends += 1;
                    if dead(*to) {
                        if is_correction(*payload) {
                            report.dead_sends_correction += 1;
                        } else {
                            report.dead_sends_dissemination += 1;
                        }
                    }
                    if *payload == Payload::Correction
                        && colored_time
                            .get(to)
                            .is_some_and(|&t| t <= events[i].time.steps())
                    {
                        report.correction_sends_to_colored += 1;
                    }
                }
                EventKind::Deliver { to, payload, .. }
                    if payload.colors() && first_coloring.get(to) != Some(&i) =>
                {
                    if is_correction(*payload) {
                        report.duplicate_deliveries_correction += 1;
                    } else {
                        report.duplicate_deliveries_dissemination += 1;
                    }
                }
                _ => {}
            }
        }
        report
    }

    /// Fold another repetition's accounting into this one.
    pub fn add(&mut self, other: &WasteReport) {
        self.sends += other.sends;
        self.dead_sends_dissemination += other.dead_sends_dissemination;
        self.dead_sends_correction += other.dead_sends_correction;
        self.duplicate_deliveries_dissemination += other.duplicate_deliveries_dissemination;
        self.duplicate_deliveries_correction += other.duplicate_deliveries_correction;
        self.correction_sends_to_colored += other.correction_sends_to_colored;
    }

    /// Total wasted sends (into dead ranks) plus masked deliveries.
    pub fn wasted_total(&self) -> u64 {
        self.dead_sends_dissemination
            + self.dead_sends_correction
            + self.duplicate_deliveries_dissemination
            + self.duplicate_deliveries_correction
    }

    /// Render as one stable JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("sends", self.sends);
        obj.field_raw(
            "dead_sends",
            &format!(
                "{{\"dissemination\":{},\"correction\":{}}}",
                self.dead_sends_dissemination, self.dead_sends_correction
            ),
        );
        obj.field_raw(
            "duplicate_deliveries",
            &format!(
                "{{\"dissemination\":{},\"correction\":{}}}",
                self.duplicate_deliveries_dissemination, self.duplicate_deliveries_correction
            ),
        );
        obj.field_u64(
            "correction_sends_to_colored",
            self.correction_sends_to_colored,
        );
        obj.field_u64("wasted_total", self.wasted_total());
        obj.finish()
    }
}

/// How (and whether) one orphan was rescued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrphanRescue {
    /// The orphaned rank.
    pub rank: Rank,
    /// When it would have colored fault-free (dissemination schedule).
    pub fault_free_at: u64,
    /// When it actually colored, if it ever did.
    pub colored_at: Option<u64>,
    /// How it was colored per its `Colored` event.
    pub via: Option<ColoredVia>,
    /// Sender of the first coloring delivery (the rescuer).
    pub rescuer: Option<Rank>,
    /// Payload of the first coloring delivery: `tree`/`gossip` when a
    /// rescued ancestor kept forwarding tree traffic, `correction` for
    /// a ring rescue.
    pub rescue_payload: Option<Payload>,
    /// Ring distance from the rescuer (min of the two directions).
    pub ring_hops: Option<u32>,
    /// Latency added over the fault-free schedule, in steps.
    pub added_delay: Option<u64>,
}

impl OrphanRescue {
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("rank", u64::from(self.rank));
        obj.field_u64("fault_free_at", self.fault_free_at);
        match self.colored_at {
            Some(t) => obj.field_u64("colored_at", t),
            None => obj.field_null("colored_at"),
        };
        match self.via {
            Some(ColoredVia::Root) => obj.field_str("via", "root"),
            Some(ColoredVia::Dissemination) => obj.field_str("via", "dissemination"),
            Some(ColoredVia::Correction) => obj.field_str("via", "correction"),
            None => obj.field_null("via"),
        };
        match self.rescuer {
            Some(r) => obj.field_u64("rescuer", u64::from(r)),
            None => obj.field_null("rescuer"),
        };
        match self.rescue_payload {
            Some(p) => obj.field_str("rescue_payload", Event::payload_tag(p)),
            None => obj.field_null("rescue_payload"),
        };
        match self.ring_hops {
            Some(h) => obj.field_u64("ring_hops", u64::from(h)),
            None => obj.field_null("ring_hops"),
        };
        match self.added_delay {
            Some(d) => obj.field_u64("added_delay", d),
            None => obj.field_null("added_delay"),
        };
        obj.finish()
    }
}

/// Impact of one failed rank: the subtree it beheaded and the rescue
/// story of every live orphan attributed to it (its nearest-dead-
/// ancestor partition).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureImpact {
    /// The failed rank.
    pub failed: Rank,
    /// Descendants of the failed rank in the tree (excluding itself).
    pub subtree_size: u32,
    /// Live orphans whose nearest dead ancestor is this rank.
    pub orphans: Vec<OrphanRescue>,
}

impl FailureImpact {
    /// Largest added delay among this failure's orphans, in steps.
    pub fn added_delay_max(&self) -> u64 {
        self.orphans
            .iter()
            .filter_map(|o| o.added_delay)
            .max()
            .unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("failed", u64::from(self.failed));
        obj.field_u64("subtree_size", u64::from(self.subtree_size));
        obj.field_u64("added_delay_max", self.added_delay_max());
        let orphans: Vec<String> = self.orphans.iter().map(OrphanRescue::to_json).collect();
        obj.field_raw("orphans", &format!("[{}]", orphans.join(",")));
        obj.finish()
    }
}

/// The full forensics join for one repetition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForensicsReport {
    /// Process count.
    pub p: u32,
    /// Failed ranks, ascending.
    pub failed_ranks: Vec<Rank>,
    /// Per-failure impact, ordered by failed rank.
    pub impacts: Vec<FailureImpact>,
    /// Ranks first colored via correction, run-wide (not only orphans —
    /// correction can also beat a slow tree path). Reconciles with
    /// `MessageCounts` correction totals and `Outcome::correction_colored`.
    pub colored_via_correction: u64,
    /// Live orphans that never colored (0 for a reliable run).
    pub unrescued: u32,
    /// Fault-free completion time of the dissemination tree, in steps.
    pub fault_free_latency: u64,
    /// Waste accounting for the same repetition.
    pub waste: WasteReport,
}

impl ForensicsReport {
    /// Largest added delay across all failures, in steps.
    pub fn max_added_delay(&self) -> u64 {
        self.impacts
            .iter()
            .map(FailureImpact::added_delay_max)
            .max()
            .unwrap_or(0)
    }

    /// Total live orphans across all failures.
    pub fn orphan_count(&self) -> u32 {
        self.impacts.iter().map(|i| i.orphans.len() as u32).sum()
    }

    /// Render as one stable JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("p", u64::from(self.p));
        let failed: Vec<u64> = self.failed_ranks.iter().map(|&r| u64::from(r)).collect();
        obj.field_u64_array("failed", &failed);
        obj.field_u64("orphans", u64::from(self.orphan_count()));
        obj.field_u64("unrescued", u64::from(self.unrescued));
        obj.field_u64("colored_via_correction", self.colored_via_correction);
        obj.field_u64("fault_free_latency", self.fault_free_latency);
        obj.field_u64("max_added_delay", self.max_added_delay());
        let impacts: Vec<String> = self.impacts.iter().map(FailureImpact::to_json).collect();
        obj.field_raw("impacts", &format!("[{}]", impacts.join(",")));
        obj.field_raw("waste", &self.waste.to_json());
        obj.finish()
    }

    /// Render a human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "forensics: P={} failed={:?} orphans={} unrescued={}\n",
            self.p,
            self.failed_ranks,
            self.orphan_count(),
            self.unrescued
        ));
        out.push_str(&format!(
            "fault-free latency {} steps, max added delay {} steps, {} rank(s) colored via correction\n",
            self.fault_free_latency,
            self.max_added_delay(),
            self.colored_via_correction
        ));
        for impact in &self.impacts {
            out.push_str(&format!(
                "failure {}: subtree size {}, {} live orphan(s), max added delay {}\n",
                impact.failed,
                impact.subtree_size,
                impact.orphans.len(),
                impact.added_delay_max()
            ));
            for o in &impact.orphans {
                match (o.rescuer, o.colored_at) {
                    (Some(rescuer), Some(at)) => out.push_str(&format!(
                        "  orphan {:>6}: rescued by {} via {} ({} ring hop(s)) at {} (+{} vs fault-free {})\n",
                        o.rank,
                        rescuer,
                        o.rescue_payload.map_or("?", Event::payload_tag),
                        o.ring_hops.unwrap_or(0),
                        at,
                        o.added_delay.unwrap_or(0),
                        o.fault_free_at
                    )),
                    _ => out.push_str(&format!(
                        "  orphan {:>6}: NEVER RESCUED (fault-free {})\n",
                        o.rank, o.fault_free_at
                    )),
                }
            }
        }
        out.push_str(&format!("waste: {}\n", self.waste.to_json()));
        out
    }
}

/// Join one repetition's event stream with the tree topology and fault
/// mask. `events` must be a single repetition (see
/// [`crate::trace::split_reps`]); the tree must be the identity-mapped
/// dissemination tree (root 0, no shuffle).
pub fn analyze_forensics(
    events: &[Event],
    tree: &Tree,
    failed: &[bool],
    logp: &LogP,
) -> ForensicsReport {
    let p = tree.num_processes();
    let dead = |r: Rank| failed.get(r as usize).copied().unwrap_or(false);
    let schedule = tree.dissemination_schedule(logp);
    let fault_free_latency = schedule.iter().map(|t| t.steps()).max().unwrap_or(0);

    // Nearest dead ancestor, computed top-down (root is always alive in
    // the fail-stop model, §4.3).
    let mut nda: Vec<Option<Rank>> = vec![None; p as usize];
    let mut stack: Vec<Rank> = vec![0];
    while let Some(x) = stack.pop() {
        for &c in tree.children(x) {
            nda[c as usize] = if dead(x) { Some(x) } else { nda[x as usize] };
            stack.push(c);
        }
    }

    // Coloring facts from the stream, in causal order.
    let order = causal_order(events);
    let mut colored: BTreeMap<Rank, (u64, ColoredVia)> = BTreeMap::new();
    let mut first_coloring: BTreeMap<Rank, (Rank, Payload)> = BTreeMap::new();
    for &i in &order {
        match &events[i].kind {
            EventKind::Colored { rank, via } => {
                colored
                    .entry(*rank)
                    .or_insert((events[i].time.steps(), *via));
            }
            EventKind::Deliver { from, to, payload } if payload.colors() => {
                first_coloring.entry(*to).or_insert((*from, *payload));
            }
            _ => {}
        }
    }
    let colored_via_correction = colored
        .values()
        .filter(|(_, via)| *via == ColoredVia::Correction)
        .count() as u64;

    let failed_ranks: Vec<Rank> = (0..p).filter(|&r| dead(r)).collect();
    let mut unrescued = 0u32;
    let mut impacts = Vec::with_capacity(failed_ranks.len());
    for &f in &failed_ranks {
        let subtree_size = tree.subtree(f).len() as u32 - 1;
        let mut orphans = Vec::new();
        for r in 0..p {
            if dead(r) || nda[r as usize] != Some(f) {
                continue;
            }
            let fault_free_at = schedule[r as usize].steps();
            let (colored_at, via) = match colored.get(&r) {
                Some(&(t, via)) => (Some(t), Some(via)),
                None => (None, None),
            };
            let (rescuer, rescue_payload) = match first_coloring.get(&r) {
                Some(&(from, payload)) => (Some(from), Some(payload)),
                None => (None, None),
            };
            if colored_at.is_none() {
                unrescued += 1;
            }
            orphans.push(OrphanRescue {
                rank: r,
                fault_free_at,
                colored_at,
                via,
                rescuer,
                rescue_payload,
                ring_hops: rescuer.map(|from| ring_distance(from, r, p)),
                added_delay: colored_at.map(|t| t.saturating_sub(fault_free_at)),
            });
        }
        impacts.push(FailureImpact {
            failed: f,
            subtree_size,
            orphans,
        });
    }

    ForensicsReport {
        p,
        failed_ranks,
        impacts,
        colored_via_correction,
        unrescued,
        fault_free_latency,
        waste: WasteReport::from_events(events, failed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_logp::Time;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::sim(Time::new(t), kind)
    }

    /// Chain 0 -> 1 -> 2 (p = 3), rank 1 dead: rank 2 is orphaned and
    /// must be ring-rescued by rank 0 (or 1's correction stand-in).
    fn chain() -> Tree {
        Tree::from_parents(vec![0, 0, 1]).unwrap()
    }

    #[test]
    fn orphan_attribution_and_rescue_provenance() {
        let tree = chain();
        let failed = vec![false, true, false];
        let logp = LogP::PAPER;
        let events = vec![
            ev(
                0,
                EventKind::Colored {
                    rank: 0,
                    via: ColoredVia::Root,
                },
            ),
            ev(
                0,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            ev(
                3,
                EventKind::DropDead {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            ev(
                5,
                EventKind::SendStart {
                    from: 0,
                    to: 2,
                    payload: Payload::Correction,
                },
            ),
            ev(
                8,
                EventKind::Arrive {
                    from: 0,
                    to: 2,
                    payload: Payload::Correction,
                },
            ),
            ev(
                9,
                EventKind::Deliver {
                    from: 0,
                    to: 2,
                    payload: Payload::Correction,
                },
            ),
            ev(
                9,
                EventKind::Colored {
                    rank: 2,
                    via: ColoredVia::Correction,
                },
            ),
        ];
        let report = analyze_forensics(&events, &tree, &failed, &logp);
        assert_eq!(report.failed_ranks, vec![1]);
        assert_eq!(report.orphan_count(), 1);
        assert_eq!(report.unrescued, 0);
        assert_eq!(report.colored_via_correction, 1);
        let impact = &report.impacts[0];
        assert_eq!(impact.failed, 1);
        assert_eq!(impact.subtree_size, 1);
        let orphan = &impact.orphans[0];
        assert_eq!(orphan.rank, 2);
        assert_eq!(orphan.rescuer, Some(0));
        assert_eq!(orphan.rescue_payload, Some(Payload::Correction));
        assert_eq!(orphan.ring_hops, Some(1));
        // Fault-free: 0 colors 1 at 2o+L = 4, then 1 colors 2 at 8.
        assert_eq!(orphan.fault_free_at, 8);
        assert_eq!(orphan.colored_at, Some(9));
        assert_eq!(orphan.added_delay, Some(1));
        assert_eq!(report.waste.dead_sends_dissemination, 1);
        assert_eq!(report.waste.correction_sends_to_colored, 0);
    }

    #[test]
    fn nested_failures_attribute_to_nearest_dead_ancestor() {
        // 0 -> 1 -> 2 -> 3, ranks 1 and 2 dead: orphan 3 belongs to 2.
        let tree = Tree::from_parents(vec![0, 0, 1, 2]).unwrap();
        let failed = vec![false, true, true, false];
        let report = analyze_forensics(&[], &tree, &failed, &LogP::PAPER);
        assert_eq!(report.failed_ranks, vec![1, 2]);
        let by_failed: BTreeMap<Rank, usize> = report
            .impacts
            .iter()
            .map(|i| (i.failed, i.orphans.len()))
            .collect();
        assert_eq!(by_failed[&1], 0); // its only live descendant is under 2
        assert_eq!(by_failed[&2], 1);
        assert_eq!(report.unrescued, 1);
        assert_eq!(report.impacts[1].orphans[0].rank, 3);
    }

    #[test]
    fn waste_counts_duplicates_and_blind_correction() {
        let failed = vec![false, false];
        let events = vec![
            ev(
                0,
                EventKind::Colored {
                    rank: 1,
                    via: ColoredVia::Dissemination,
                },
            ),
            // Correction send at t=2 to rank 1, colored at t=0: blind.
            ev(
                2,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Correction,
                },
            ),
            ev(
                5,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Correction,
                },
            ),
            // A second coloring delivery at rank 1: masked duplicate.
            ev(
                6,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
        ];
        let waste = WasteReport::from_events(&events, &failed);
        assert_eq!(waste.sends, 1);
        assert_eq!(waste.correction_sends_to_colored, 1);
        // First coloring delivery is the correction at t=5; the tree
        // delivery at t=6 is the masked duplicate.
        assert_eq!(waste.duplicate_deliveries_dissemination, 1);
        assert_eq!(waste.duplicate_deliveries_correction, 0);
        assert_eq!(waste.wasted_total(), 1);
    }

    #[test]
    fn report_json_is_stable() {
        let tree = chain();
        let failed = vec![false, true, false];
        let report = analyze_forensics(&[], &tree, &failed, &LogP::PAPER);
        assert_eq!(
            report.to_json(),
            "{\"p\":3,\"failed\":[1],\"orphans\":1,\"unrescued\":1,\
             \"colored_via_correction\":0,\"fault_free_latency\":8,\"max_added_delay\":0,\
             \"impacts\":[{\"failed\":1,\"subtree_size\":1,\"added_delay_max\":0,\
             \"orphans\":[{\"rank\":2,\"fault_free_at\":8,\"colored_at\":null,\"via\":null,\
             \"rescuer\":null,\"rescue_payload\":null,\"ring_hops\":null,\"added_delay\":null}]}],\
             \"waste\":{\"sends\":0,\"dead_sends\":{\"dissemination\":0,\"correction\":0},\
             \"duplicate_deliveries\":{\"dissemination\":0,\"correction\":0},\
             \"correction_sends_to_colored\":0,\"wasted_total\":0}}"
        );
    }
}
