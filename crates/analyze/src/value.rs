//! A minimal JSON reader — the counterpart of `ct_obs::json`'s writer.
//!
//! The workspace is built fully offline (no serde); everything the
//! analyzer reads back (JSONL traces, `BENCH_*.json` snapshots, run
//! manifests) was written by our own deterministic writer, so a small
//! recursive-descent parser over the full JSON grammar is sufficient.
//! Numbers are held as `f64` — every value we serialize (step counts,
//! microseconds, metric means) is exactly representable below `2⁵³`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.trunc() == *n && *n < 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// Object fields as a name-sorted string map (non-string values are
    /// skipped) — convenient for provenance blocks.
    pub fn to_str_map(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        if let Value::Obj(fields) = self {
            for (k, v) in fields {
                if let Value::Str(s) = v {
                    map.insert(k.clone(), s.clone());
                }
            }
        }
        map
    }

    /// Object fields as a name-sorted numeric map (non-numeric values
    /// are skipped) — the shape of a snapshot's `metrics` block.
    pub fn to_f64_map(&self) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        if let Value::Obj(fields) = self {
            for (k, v) in fields {
                if let Value::Num(n) = v {
                    map.insert(k.clone(), *n);
                }
            }
        }
        map
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: our writer never emits
                            // them, but accept well-formed ones.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("invalid escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_owned());
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_an_event_line() {
        let line =
            r#"{"t":12,"w":345,"kind":"deliver","from":1,"to":2,"payload":"gossip","round":4}"#;
        let v = Value::parse(line).unwrap();
        assert_eq!(v.get("t").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("deliver"));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(4));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn nested_structures_parse() {
        let v = Value::parse(r#"{"a":[1,2.5,null,true],"b":{"c":"x"}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_decode() {
        let v = Value::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(Value::parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(Value::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Value::parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse(r#"{"a":1} extra"#).is_err());
        assert!(Value::parse("tru").is_err());
    }

    #[test]
    fn maps_extract_typed_fields() {
        let v = Value::parse(r#"{"a":"x","b":2.0,"c":"y","d":3.5}"#).unwrap();
        let strs = v.to_str_map();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs["a"], "x");
        let nums = v.to_f64_map();
        assert_eq!(nums.len(), 2);
        assert_eq!(nums["d"], 3.5);
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
