//! Time-series summaries (`ct analyze --view series`).
//!
//! Parses a `ct-series-v1` JSONL export (written by `ct serve`,
//! `ct stats --series` or the `/series.jsonl` endpoint) back into typed
//! [`SeriesSample`] windows and [`HealthEvent`]s and renders a compact
//! trend report: window cadence, per-counter totals with mean and peak
//! rates, gauge peaks and the health-event timeline. As with the
//! scheduler view, parsing doubles as the schema self-check the CI
//! monitor smoke job runs — every line must carry the schema tag and a
//! known `kind`, sample sequence numbers must increase strictly,
//! timestamps must be monotone and every window must span at least a
//! millisecond, so a drifted producer fails loudly here.

use std::collections::BTreeMap;

use ct_obs::health::{HealthEvent, Severity};
use ct_obs::series::SeriesSample;

use crate::value::Value;

/// The JSONL schema tag this module understands.
pub const SERIES_SCHEMA: &str = "ct-series-v1";

/// A parsed and validated series export, ready for rendering.
#[derive(Clone, Debug)]
pub struct SeriesSummary {
    /// Producer tag (`"sim"`, `"cluster"`, …) shared by every sample.
    pub source: String,
    /// The sample windows, oldest first.
    pub samples: Vec<SeriesSample>,
    /// The health events, in firing order.
    pub health: Vec<HealthEvent>,
}

fn parse_u64_map(v: &Value, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let Value::Obj(fields) = v else {
        return Err(format!("\"{what}\" must be an object"));
    };
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("{what}.{k} must be an unsigned integer"))?;
        map.insert(k.clone(), n);
    }
    Ok(map)
}

fn get_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{what} missing unsigned integer \"{key}\""))
}

fn get_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what} missing string \"{key}\""))
}

fn parse_sample(v: &Value, what: &str) -> Result<SeriesSample, String> {
    let dt_ms = get_u64(v, "dt_ms", what)?;
    if dt_ms == 0 {
        return Err(format!("{what}: dt_ms must be at least 1"));
    }
    let busy = v
        .get("worker_busy_us")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{what} missing array \"worker_busy_us\""))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("{what}: worker_busy_us must hold unsigned integers"))
        })
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(SeriesSample {
        source: get_str(v, "source", what)?.to_owned(),
        seq: get_u64(v, "seq", what)?,
        t_ms: get_u64(v, "t_ms", what)?,
        dt_ms,
        workers: get_u64(v, "workers", what)?,
        ranks: get_u64(v, "ranks", what)?,
        counters: parse_u64_map(
            v.get("counters")
                .ok_or_else(|| format!("{what} missing \"counters\""))?,
            "counters",
        )?,
        gauges: parse_u64_map(
            v.get("gauges")
                .ok_or_else(|| format!("{what} missing \"gauges\""))?,
            "gauges",
        )?,
        worker_busy_us: busy,
    })
}

fn parse_health(v: &Value, what: &str) -> Result<HealthEvent, String> {
    let severity = get_str(v, "severity", what)?;
    let severity = Severity::parse(severity)
        .ok_or_else(|| format!("{what}: unknown severity {severity:?}"))?;
    let Some(Value::Obj(value_fields)) = v.get("values") else {
        return Err(format!("{what} missing \"values\" object"));
    };
    let values = value_fields
        .iter()
        .map(|(k, x)| {
            x.as_u64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("{what}: values.{k} must be an unsigned integer"))
        })
        .collect::<Result<Vec<(String, u64)>, String>>()?;
    Ok(HealthEvent {
        rule: get_str(v, "rule", what)?.to_owned(),
        severity,
        seq: get_u64(v, "seq", what)?,
        t_ms: get_u64(v, "t_ms", what)?,
        values,
        message: get_str(v, "message", what)?.to_owned(),
    })
}

impl SeriesSummary {
    /// Parse and validate one `ct-series-v1` JSONL document. An export
    /// with no sample lines is valid (a run shorter than one window);
    /// the source is then reported as `"none"`.
    pub fn from_jsonl(text: &str) -> Result<SeriesSummary, String> {
        let mut samples: Vec<SeriesSample> = Vec::new();
        let mut health = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let what = format!("line {}", i + 1);
            let v = Value::parse(line).map_err(|e| format!("{what}: {e}"))?;
            let schema = get_str(&v, "schema", &what)?;
            if schema != SERIES_SCHEMA {
                return Err(format!(
                    "{what}: unsupported series schema {schema:?} (want {SERIES_SCHEMA:?})"
                ));
            }
            match get_str(&v, "kind", &what)? {
                "sample" => {
                    let s = parse_sample(&v, &what)?;
                    if let Some(prev) = samples.last() {
                        if s.seq <= prev.seq {
                            return Err(format!(
                                "{what}: sample seq {} does not increase past {}",
                                s.seq, prev.seq
                            ));
                        }
                        if s.t_ms < prev.t_ms {
                            return Err(format!(
                                "{what}: sample t_ms {} precedes {}",
                                s.t_ms, prev.t_ms
                            ));
                        }
                        if s.source != prev.source {
                            return Err(format!(
                                "{what}: source {:?} does not match {:?}",
                                s.source, prev.source
                            ));
                        }
                    }
                    samples.push(s);
                }
                "health" => health.push(parse_health(&v, &what)?),
                other => return Err(format!("{what}: unknown kind {other:?}")),
            }
        }
        let source = samples
            .first()
            .map_or_else(|| "none".to_owned(), |s| s.source.clone());
        Ok(SeriesSummary {
            source,
            samples,
            health,
        })
    }

    /// Total of a counter across every window.
    pub fn total(&self, name: &str) -> u64 {
        self.samples.iter().map(|s| s.delta(name)).sum()
    }

    /// Milliseconds covered by the retained windows.
    pub fn span_ms(&self) -> u64 {
        self.samples.iter().map(|s| s.dt_ms).sum()
    }

    fn rate_line(&self, name: &str) -> Option<String> {
        let total = self.total(name);
        if total == 0 {
            return None;
        }
        let span_s = self.span_ms() as f64 / 1_000.0;
        let mean = total as f64 / span_s;
        let peak = self
            .samples
            .iter()
            .map(|s| s.rate(name))
            .fold(0.0f64, f64::max);
        Some(format!(
            "  {name}: total {total} | mean {mean:.1}/s peak {peak:.1}/s"
        ))
    }

    /// Render the trend report: cadence, every counter with a nonzero
    /// total (catalogue order), gauge peaks and the health timeline.
    pub fn render_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        if self.samples.is_empty() {
            let _ = writeln!(out, "series summary: no sample windows recorded");
        } else {
            let first = &self.samples[0];
            let span_s = self.span_ms() as f64 / 1_000.0;
            let _ = writeln!(
                out,
                "series summary (source={}, windows={}, span={:.2}s)",
                self.source,
                self.samples.len(),
                span_s
            );
            let dt_min = self.samples.iter().map(|s| s.dt_ms).min().unwrap_or(0);
            let dt_max = self.samples.iter().map(|s| s.dt_ms).max().unwrap_or(0);
            let dt_mean = self.span_ms() as f64 / self.samples.len() as f64;
            let _ = writeln!(
                out,
                "  cadence: dt mean {:.0} ms (min {}, max {}) | workers={} ranks={}",
                dt_mean, dt_min, dt_max, first.workers, first.ranks
            );
            let mut any = false;
            for name in first.counters.keys() {
                if let Some(line) = self.rate_line(name) {
                    let _ = writeln!(out, "{line}");
                    any = true;
                }
            }
            if !any {
                let _ = writeln!(out, "  (no counter activity recorded)");
            }
            let mut peaks: Vec<String> = Vec::new();
            for name in first.gauges.keys() {
                let peak = self
                    .samples
                    .iter()
                    .map(|s| s.gauge(name))
                    .max()
                    .unwrap_or(0);
                if peak > 0 {
                    peaks.push(format!("{name} peak {peak}"));
                }
            }
            if !peaks.is_empty() {
                let _ = writeln!(out, "  gauges: {}", peaks.join(" | "));
            }
        }
        if self.health.is_empty() {
            let _ = writeln!(out, "health: no events");
        } else {
            let count = |sev| self.health.iter().filter(|e| e.severity == sev).count();
            let _ = writeln!(
                out,
                "health: {} events ({} critical, {} warning, {} info)",
                self.health.len(),
                count(Severity::Critical),
                count(Severity::Warning),
                count(Severity::Info),
            );
            for e in &self.health {
                let _ = writeln!(
                    out,
                    "  [{:>8} ms] {:<8} {}: {}",
                    e.t_ms,
                    e.severity.name().to_uppercase(),
                    e.rule,
                    e.message
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_obs::series::SeriesStore;
    use ct_obs::telemetry::{Counter, TelemetryHub};

    /// A deterministic two-window export built through the real
    /// producer types (no wall clock involved).
    fn export() -> String {
        let hub = TelemetryHub::new(1, 8);
        let store = SeriesStore::new(16);
        let mut prev = hub.snapshot().with_source("cluster");
        for seq in 0..2u64 {
            hub.add(0, Counter::MsgsDelivered, 10 * (seq + 1));
            hub.add(0, Counter::SchedQuanta, 4);
            let next = hub.snapshot().with_source("cluster");
            store.push_sample(SeriesSample::between(
                &prev,
                &next,
                seq,
                (seq + 1) * 100,
                100,
            ));
            prev = next;
        }
        let e = HealthEvent {
            rule: "stall_precursor".to_owned(),
            severity: Severity::Critical,
            seq: 1,
            t_ms: 200,
            values: vec![("iter.live".to_owned(), 7)],
            message: "broadcast wedged".to_owned(),
        };
        store.record_events(vec![e.clone()], vec![e]);
        store.export_jsonl()
    }

    #[test]
    fn parses_a_real_export_round_trip() {
        let s = SeriesSummary::from_jsonl(&export()).unwrap();
        assert_eq!(s.source, "cluster");
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.total("msgs.delivered"), 30);
        assert_eq!(s.total("sched.quanta"), 8);
        assert_eq!(s.span_ms(), 200);
        assert_eq!(s.health.len(), 1);
        assert_eq!(s.health[0].rule, "stall_precursor");
        let text = s.render_text();
        assert!(text.contains("windows=2"), "{text}");
        assert!(text.contains("msgs.delivered: total 30"), "{text}");
        assert!(text.contains("CRITICAL stall_precursor"), "{text}");
    }

    #[test]
    fn empty_export_is_valid() {
        let s = SeriesSummary::from_jsonl("").unwrap();
        assert_eq!(s.source, "none");
        assert!(s.samples.is_empty());
        let text = s.render_text();
        assert!(text.contains("no sample windows"), "{text}");
        assert!(text.contains("health: no events"), "{text}");
    }

    #[test]
    fn rejects_wrong_schema_and_unknown_kind() {
        let err = SeriesSummary::from_jsonl("{\"schema\":\"ct-series-v0\",\"kind\":\"sample\"}")
            .unwrap_err();
        assert!(err.contains("unsupported series schema"), "{err}");
        let err = SeriesSummary::from_jsonl("{\"schema\":\"ct-series-v1\",\"kind\":\"gap\"}")
            .unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }

    #[test]
    fn rejects_non_monotone_sequences() {
        let jsonl = export();
        // Duplicate the first sample line at the end: seq goes backwards.
        let first = jsonl.lines().next().unwrap();
        let broken = format!("{jsonl}{first}\n");
        let err = SeriesSummary::from_jsonl(&broken).unwrap_err();
        assert!(err.contains("does not increase"), "{err}");
    }

    #[test]
    fn rejects_zero_width_windows() {
        let broken = export().replacen("\"dt_ms\":100", "\"dt_ms\":0", 1);
        let err = SeriesSummary::from_jsonl(&broken).unwrap_err();
        assert!(err.contains("dt_ms must be at least 1"), "{err}");
    }
}
