//! Campaign-level trace analysis and perf-regression snapshots.
//!
//! Bridges [`Campaign`] to `ct-analyze`: every repetition is run with
//! an event sink, its causal DAG analyzed, and the per-repetition
//! results aggregated into (a) an *analysis block* that figure
//! binaries attach to their run manifests and (b) a [`BenchSnapshot`]
//! (`BENCH_<name>.json`) that `ct perf diff` compares across commits
//! to catch performance regressions of the protocols themselves.

use ct_analyze::{
    analyze_rep, AnalysisSummary, AnalyzeConfig, BenchSnapshot, RepAnalysis, TraceAnalysis,
    WasteReport,
};
use std::sync::Arc;

use ct_core::protocol::ProtocolFactory;
use ct_obs::health::{HealthConfig, HealthEngine, HealthEvent};
use ct_obs::json::JsonObject;
use ct_obs::metrics::Histogram;
use ct_obs::series::SeriesSample;
use ct_obs::telemetry::{TelemetryHub, TelemetrySnapshot};
use ct_obs::{MonitorConfig, MonitorReport, MonitorSink, VecSink};

use crate::campaign::{Campaign, CampaignError, RunRecord};

/// A campaign's records plus the per-repetition causal analyses.
#[derive(Clone, Debug)]
pub struct CampaignAnalysis {
    /// The usual campaign measurements, one per repetition.
    pub records: Vec<RunRecord>,
    /// The causal-DAG analysis of each repetition's trace.
    pub reps: Vec<RepAnalysis>,
    /// Streaming invariant-monitor verdict over every repetition (the
    /// `violations: 0` attestation figure manifests carry).
    pub monitor: MonitorReport,
    /// Aggregate waste accounting over every repetition.
    pub waste: WasteReport,
    /// Runtime-telemetry snapshot over every repetition (source
    /// `"sim"`): rep counts, event/send totals, per-rep distributions.
    pub telemetry: TelemetrySnapshot,
    /// Health events from replaying each repetition's counter deltas
    /// through the [`HealthEngine`] as one synthetic one-second window
    /// per repetition (deterministic — no wall clock involved). Empty
    /// for a healthy campaign; anomalies land in the manifest's
    /// `health` block.
    pub health: Vec<HealthEvent>,
}

/// Run every repetition of `campaign` under an event sink and analyze
/// each trace — causal DAG, invariant monitor and waste accounting in
/// one pass. Costs one traced (allocating) simulation per
/// repetition — meant for analysis passes and snapshot generation,
/// not for the hot path of large campaigns.
pub fn analyze_campaign(campaign: &Campaign) -> Result<CampaignAnalysis, CampaignError> {
    let mut cfg = AnalyzeConfig::new(campaign.logp).with_p(campaign.p);
    if let Some(start) = campaign.variant.sync_start(campaign.p, &campaign.logp) {
        cfg = cfg.with_sync_start(start.steps());
    }
    let hub = Arc::new(TelemetryHub::new(1, campaign.p as usize));
    let campaign = campaign.clone().with_telemetry(Arc::clone(&hub));
    let campaign = &campaign;
    let mut records = Vec::with_capacity(campaign.reps as usize);
    let mut reps = Vec::with_capacity(campaign.reps as usize);
    let mut monitor = MonitorReport::default();
    let mut waste = WasteReport::default();
    let mut engine = HealthEngine::new(HealthConfig::default());
    let mut health = Vec::new();
    let mut prev_snap = hub.snapshot().with_source("sim");
    for i in 0..campaign.reps {
        let plan = campaign.fault_plan(i)?;
        let mut sink = VecSink::new();
        let record = campaign.run_one_observed(i, &mut sink)?;
        reps.push(analyze_rep(&sink.events, &cfg));
        let mcfg = MonitorConfig::new()
            .with_p(campaign.p)
            .with_logp(campaign.logp)
            .with_failed(plan.mask().to_vec());
        monitor.absorb(MonitorSink::check(&sink.events, &mcfg), i);
        waste.add(&WasteReport::from_events(&sink.events, plan.mask()));
        records.push(record);
        let next_snap = hub.snapshot().with_source("sim");
        let t_ms = (u64::from(i) + 1) * 1_000;
        health.extend(engine.observe(&SeriesSample::between(
            &prev_snap,
            &next_snap,
            u64::from(i),
            t_ms,
            1_000,
        )));
        prev_snap = next_snap;
    }
    Ok(CampaignAnalysis {
        records,
        reps,
        monitor,
        waste,
        telemetry: hub.snapshot().with_source("sim"),
        health,
    })
}

impl CampaignAnalysis {
    /// Aggregate the per-repetition analyses.
    pub fn summary(&self) -> AnalysisSummary {
        AnalysisSummary::from_trace(&TraceAnalysis {
            reps: self.reps.clone(),
            spans: Vec::new(),
        })
    }

    /// Completion times folded into the default latency histogram
    /// (power-of-two buckets) for percentile estimation.
    pub fn completion_histogram(&self) -> Histogram {
        let mut h = Histogram::latency_default();
        for r in &self.reps {
            h.record(r.completion);
        }
        h
    }

    /// The JSON analysis block figure binaries embed in their run
    /// manifests: the aggregate summary, interpolated completion
    /// percentiles, the invariant-monitor attestation, the waste
    /// accounting and the per-repetition health verdicts.
    pub fn analysis_json(&self) -> String {
        let h = self.completion_histogram();
        let mut obj = JsonObject::new();
        obj.field_raw("summary", &self.summary().to_json());
        let mut pct = JsonObject::new();
        pct.field_f64("p50", h.p50().unwrap_or(0.0));
        pct.field_f64("p95", h.p95().unwrap_or(0.0));
        pct.field_f64("p99", h.p99().unwrap_or(0.0));
        obj.field_raw("completion_percentiles", &pct.finish());
        let mut mon = JsonObject::new();
        mon.field_u64("violations", self.monitor.violations.len() as u64);
        mon.field_u64("events", self.monitor.events);
        mon.field_u64("reps", u64::from(self.monitor.reps));
        obj.field_raw("monitor", &mon.finish());
        obj.field_raw("waste", &self.waste.to_json());
        let mut health = String::from("[");
        for (i, e) in self.health.iter().enumerate() {
            if i > 0 {
                health.push(',');
            }
            health.push_str(&e.to_json());
        }
        health.push(']');
        obj.field_raw("health", &health);
        obj.finish()
    }

    /// Distill into a named perf snapshot. All metrics are
    /// lower-is-better so `ct perf diff` can flag growth generically.
    pub fn bench_snapshot(&self, name: &str, campaign: &Campaign) -> BenchSnapshot {
        let s = self.summary();
        let h = self.completion_histogram();
        let n = self.records.len().max(1) as f64;
        let messages_mean = self.records.iter().map(|r| r.messages as f64).sum::<f64>() / n;
        let mpp_mean = self
            .records
            .iter()
            .map(|r| r.messages_per_process)
            .sum::<f64>()
            / n;
        let uncolored_mean = self
            .records
            .iter()
            .map(|r| f64::from(r.uncolored))
            .sum::<f64>()
            / n;
        BenchSnapshot::new(name)
            .with_host_provenance()
            .with_provenance("variant", &campaign.variant.label())
            .with_provenance("p", &campaign.p.to_string())
            .with_provenance("logp", &campaign.logp.to_string())
            .with_provenance("faults", &format!("{:?}", campaign.faults))
            .with_provenance("reps", &campaign.reps.to_string())
            .with_provenance("seed0", &campaign.seed0.to_string())
            .with_metric("completion_mean", s.completion.1)
            .with_metric("completion_max", s.completion.2 as f64)
            .with_metric("completion_p50", h.p50().unwrap_or(0.0))
            .with_metric("completion_p95", h.p95().unwrap_or(0.0))
            .with_metric("completion_p99", h.p99().unwrap_or(0.0))
            .with_metric("critpath_len_mean", s.critpath_len_mean)
            .with_metric("critpath_hops_mean", s.hops_mean)
            .with_metric("messages_mean", messages_mean)
            .with_metric("messages_per_process_mean", mpp_mean)
            .with_metric("uncolored_mean", uncolored_mean)
            .with_metric("bounds_violations", f64::from(s.bounds.1))
            .with_metric("monitor_violations", self.monitor.violations.len() as f64)
            .with_metric("wasted_sends_mean", self.waste.wasted_total() as f64 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::FaultSpec;
    use crate::variants::Variant;
    use ct_core::tree::TreeKind;
    use ct_logp::LogP;

    fn small_campaign() -> Campaign {
        Campaign::new(
            Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
            16,
            LogP::PAPER,
        )
        .with_reps(3)
        .with_seed(7)
    }

    #[test]
    fn fault_free_critical_path_matches_quiescence() {
        let ca = analyze_campaign(&small_campaign()).unwrap();
        for (record, rep) in ca.records.iter().zip(&ca.reps) {
            assert_eq!(rep.completion, record.quiescence);
            assert_eq!(rep.critpath.len, record.quiescence);
            assert!(rep.critpath.attribution_is_exact());
        }
    }

    #[test]
    fn faulty_runs_still_attribute_exactly() {
        let c = small_campaign().with_faults(FaultSpec::Count(3));
        let ca = analyze_campaign(&c).unwrap();
        for (record, rep) in ca.records.iter().zip(&ca.reps) {
            assert_eq!(rep.critpath.len, record.quiescence);
            assert!(rep.critpath.attribution_is_exact());
        }
        let json = ca.analysis_json();
        assert!(json.starts_with(r#"{"summary":{"#), "{json}");
    }

    /// The analysis block must attest zero monitor violations and carry
    /// non-trivial waste accounting on a faulty corrected campaign.
    #[test]
    fn analysis_block_carries_attestation_and_waste() {
        let c = small_campaign().with_faults(FaultSpec::Count(2));
        let ca = analyze_campaign(&c).unwrap();
        assert!(ca.monitor.is_ok(), "{}", ca.monitor.render_text());
        assert_eq!(ca.monitor.reps, 3);
        assert!(ca.waste.sends > 0);
        assert!(
            ca.waste.dead_sends_dissemination + ca.waste.dead_sends_correction > 0,
            "2 dead ranks per rep must attract some sends: {:?}",
            ca.waste
        );
        let json = ca.analysis_json();
        assert!(json.contains(r#""monitor":{"violations":0,"#), "{json}");
        assert!(json.contains(r#""waste":{"sends":"#), "{json}");
        // A healthy sim campaign trips no health rules, but the block
        // must still be stamped so manifests are self-describing.
        assert!(ca.health.is_empty(), "{:?}", ca.health);
        assert!(json.ends_with(r#""health":[]}"#), "{json}");
        let snap = ca.bench_snapshot("unit", &c);
        assert_eq!(snap.metrics["monitor_violations"], 0.0);
    }

    #[test]
    fn synchronized_variant_gets_bounds_checked() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            16,
            LogP::PAPER,
        )
        .with_reps(2);
        let ca = analyze_campaign(&c).unwrap();
        for rep in &ca.reps {
            let b = rep.bounds.expect("sync variant has bounds");
            assert_eq!(b.g_max, 0);
            assert!(!b.violated(), "fault-free run violated Lemma 3: {b:?}");
        }
    }

    #[test]
    fn snapshot_self_diff_is_clean() {
        let c = small_campaign();
        let ca = analyze_campaign(&c).unwrap();
        let snap = ca.bench_snapshot("unit", &c);
        assert_eq!(snap.provenance["p"], "16");
        assert!(snap.provenance.contains_key("host.worker_threads"));
        assert!(snap.metrics["completion_mean"] > 0.0);
        let diff = ct_analyze::PerfDiff::diff(&snap, &snap, 0.05);
        assert!(diff.regressions().is_empty());
    }

    /// The analysis pass records one telemetry repetition per campaign
    /// repetition, and its totals agree with the records themselves.
    #[test]
    fn analysis_telemetry_matches_records() {
        let c = small_campaign().with_faults(FaultSpec::Count(2));
        let ca = analyze_campaign(&c).unwrap();
        assert_eq!(ca.telemetry.source, "sim");
        assert_eq!(ca.telemetry.counter("sim.reps"), 3);
        assert_eq!(
            ca.telemetry.counter("sim.events"),
            ca.records.iter().map(|r| r.events).sum::<u64>()
        );
        assert_eq!(
            ca.telemetry.counter("sim.sends"),
            ca.records.iter().map(|r| r.messages).sum::<u64>()
        );
        let h = ca.telemetry.histograms.get("sim.rep_quiescence").unwrap();
        assert_eq!(h.count(), 3);
    }
}
