//! Topic-multiplexed broadcast throughput sweep (`ct perf bench
//! --pubsub`).
//!
//! Measures what the pub/sub layer buys on one worker pool: aggregate
//! broadcasts/sec with k ∈ {1, 4, 16, 64} topics in flight at
//! P ∈ {256, 1024, 4096}, fault-free and at 1% crash faults.
//!
//! The fault-free cells run *synchronized checked-paced* correction
//! with a provisioned barrier (`sync_start_override` scaled to P, see
//! [`sync_barrier_us`]): every broadcast spends most of its lifetime
//! waiting for the correction barrier, exactly the regime where a
//! single in-flight broadcast (k = 1) leaves the pool idle and
//! multiplexed topics (k > 1) pipeline each other's waits. These cells
//! double as a correctness gate — Corollary 1 pins every broadcast's
//! message total to exactly `(P-1) + M·P`, and the sweep asserts it at
//! every k, so the speedup cannot come from dropped or deduplicated
//! work. The faulty cells run the cluster-throughput bench's
//! asynchronous opportunistic correction and are CPU-bound; they gate
//! nothing but show multiplexing does not degrade the healing path.
//!
//! All metrics are ns-per-broadcast (lower is better) so `ct perf
//! diff` flags regressions generically.

use std::time::Duration;

use ct_analysis::m_scc_discrete;
use ct_analyze::BenchSnapshot;
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_runtime::{Cluster, ClusterConfig, PubsubOptions, Topic, TopicTable};
use ct_sim::FaultPlan;

/// Provisioned correction barrier (µs) for checked-sync cells:
/// comfortably past wall-clock dissemination of the *largest* topic
/// fleet at this P on one core, so every rank tree-colors before the
/// barrier and Corollary 1 holds exactly.
pub fn sync_barrier_us(p: u32) -> u64 {
    match p {
        0..=128 => 20_000,
        129..=512 => 36_000,
        513..=2048 => 100_000,
        _ => 420_000,
    }
}

/// One measured sweep cell.
#[derive(Clone, Copy, Debug)]
pub struct PubsubCell {
    /// Ranks.
    pub p: u32,
    /// Topics in flight (and topic count — one round-robin fleet).
    pub k: usize,
    /// 1% crash faults (false: fault-free checked-sync barrier cell).
    pub faulty: bool,
    /// Completed broadcasts (topics × rounds).
    pub broadcasts: u64,
    /// Total protocol messages across all broadcasts.
    pub messages: u64,
    /// Wall-clock for the whole multiplexed run.
    pub wall: Duration,
}

impl PubsubCell {
    /// Aggregate throughput over the cell.
    pub fn broadcasts_per_sec(&self) -> f64 {
        self.broadcasts as f64 / self.wall.as_secs_f64()
    }

    /// Mean wall nanoseconds per broadcast (lower is better).
    pub fn ns_per_broadcast(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.broadcasts.max(1) as f64
    }

    /// Metric key suffix: `p{P}_k{K}_{ff|f1}`.
    pub fn key(&self) -> String {
        let tag = if self.faulty { "f1" } else { "ff" };
        format!("p{}_k{}_{}", self.p, self.k, tag)
    }
}

/// The whole sweep.
#[derive(Clone, Debug)]
pub struct PubsubBench {
    /// All measured cells, sweep order (P-major, k-minor, ff then f1).
    pub cells: Vec<PubsubCell>,
    /// Config echo for provenance.
    pub quick: bool,
    /// Base seed.
    pub seed0: u64,
    /// Machine model (per-process checked-paced provisioning).
    pub logp: LogP,
}

/// Build the k-topic fleet for one cell. Fault-free cells use
/// checked-paced synchronized correction behind the provisioned
/// barrier; faulty cells use asynchronous opportunistic correction,
/// each topic drawing its own 1%-random dead mask protecting its own
/// root (a dead root can never disseminate, so the cell would measure
/// a watchdog timeout instead of throughput).
fn cell_topics(p: u32, k: usize, faulty: bool, seed0: u64, logp: &LogP) -> TopicTable {
    let mut table = TopicTable::new();
    for t in 0..k {
        let root = (t as u32 * 97) % p;
        let dead = if faulty {
            let n = (p / 100).max(1);
            FaultPlan::random_count_protecting(p, n, seed0.wrapping_add(t as u64), root)
                .expect("valid fault plan")
                .mask()
                .to_vec()
        } else {
            vec![false; p as usize]
        };
        let spec = if faulty {
            BroadcastSpec::corrected_tree(
                TreeKind::BINOMIAL,
                CorrectionKind::OpportunisticOptimized { distance: 4 },
            )
        } else {
            let mut s = BroadcastSpec::corrected_tree_sync(
                TreeKind::BINOMIAL,
                CorrectionKind::checked_paced(logp, 4),
            );
            s.sync_start_override = Some(sync_barrier_us(p));
            s
        };
        let spec = spec.with_root(root);
        let topic =
            Topic::new(format!("topic-{t}"), spec, p, seed0.wrapping_add(t as u64)).with_dead(dead);
        table.push(topic);
    }
    table
}

/// Run one cell: k topics × `rounds` rounds multiplexed over one
/// cluster. Panics (with the offending cell) if any broadcast fails to
/// complete, or if a fault-free checked-sync broadcast's message total
/// deviates from Corollary 1 — the totals are the proof the pipeline
/// speedup does no less work per broadcast.
pub fn run_cell(
    p: u32,
    k: usize,
    faulty: bool,
    rounds: usize,
    seed0: u64,
    logp: LogP,
) -> PubsubCell {
    let mut cluster = Cluster::with_config(p, logp, ClusterConfig::new());
    cluster.set_timeout(Duration::from_secs(120));
    let table = cell_topics(p, k, faulty, seed0, &logp);
    let opts = PubsubOptions { k, rounds };
    let report = cluster
        .run_pubsub(&table, &opts)
        .unwrap_or_else(|e| panic!("pubsub cell p={p} k={k} faulty={faulty}: {e}"));
    let mut messages = 0u64;
    for o in &report.outcomes {
        assert!(
            o.completed,
            "broadcast {} (topic {} round {}) did not complete in cell \
             p={p} k={k} faulty={faulty}: uncolored {:?}",
            o.id, o.topic, o.round, o.uncolored
        );
        if !faulty {
            let expected = u64::from(p) - 1 + m_scc_discrete(&logp) * u64::from(p);
            assert_eq!(
                o.messages, expected,
                "Corollary 1 violated by broadcast {} (topic {} round {}) \
                 in cell p={p} k={k}: got {}, expected (P-1)+M*P = {expected}",
                o.id, o.topic, o.round, o.messages
            );
        }
        messages += o.messages;
    }
    PubsubCell {
        p,
        k,
        faulty,
        broadcasts: report.outcomes.len() as u64,
        messages,
        wall: report.elapsed,
    }
}

/// Rounds per topic so every cell measures a comparable broadcast
/// count: at least `floor_total` broadcasts, at least one round.
fn rounds_for(k: usize, floor_total: usize) -> usize {
    floor_total.div_ceil(k).max(1)
}

/// The full sweep. `quick` trims to P ∈ {256, 1024}, k ∈ {1, 4, 16}
/// and fewer rounds for CI smoke.
pub fn run_pubsub_bench(quick: bool, seed0: u64, logp: LogP) -> PubsubBench {
    let ps: &[u32] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };
    let ks: &[usize] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 64] };
    let (ff_floor, f1_floor) = if quick { (8, 4) } else { (16, 8) };
    let mut cells = Vec::new();
    for &p in ps {
        for &k in ks {
            cells.push(run_cell(p, k, false, rounds_for(k, ff_floor), seed0, logp));
            cells.push(run_cell(p, k, true, rounds_for(k, f1_floor), seed0, logp));
        }
    }
    PubsubBench {
        cells,
        quick,
        seed0,
        logp,
    }
}

impl PubsubBench {
    /// Throughput ratio of the k-topic cell over the k=1 cell at `p`
    /// (fault-free), if both were measured — the pipelining headline.
    pub fn speedup_vs_k1(&self, p: u32, k: usize) -> Option<f64> {
        let find = |k: usize| {
            self.cells
                .iter()
                .find(|c| c.p == p && c.k == k && !c.faulty)
        };
        Some(find(k)?.broadcasts_per_sec() / find(1)?.broadcasts_per_sec())
    }

    /// Distill into the `BENCH_pubsub_throughput` snapshot: one
    /// ns-per-broadcast metric per cell, throughput and totals as
    /// provenance.
    pub fn snapshot(&self) -> BenchSnapshot {
        let mut snap = BenchSnapshot::new("pubsub_throughput")
            .with_host_provenance()
            .with_provenance("logp", &self.logp.to_string())
            .with_provenance("seed0", &self.seed0.to_string())
            .with_provenance("quick", &self.quick.to_string())
            .with_provenance("m_scc_discrete", &m_scc_discrete(&self.logp).to_string());
        for c in &self.cells {
            let key = c.key();
            snap = snap
                .with_metric(&format!("ns_per_broadcast_{key}"), c.ns_per_broadcast())
                .with_provenance(
                    &format!("broadcasts_per_sec_{key}"),
                    &format!("{:.2}", c.broadcasts_per_sec()),
                )
                .with_provenance(&format!("broadcasts_{key}"), &c.broadcasts.to_string())
                .with_provenance(&format!("total_messages_{key}"), &c.messages.to_string());
        }
        let headline_p = self.cells.iter().map(|c| c.p).max().unwrap_or(0);
        for &k in &[4usize, 16, 64] {
            if let Some(s) = self.speedup_vs_k1(headline_p, k) {
                snap = snap.with_provenance(
                    &format!("speedup_k{k}_vs_k1_p{headline_p}"),
                    &format!("{s:.2}"),
                );
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature cell obeys Corollary 1 at every k and pipelining
    /// shows through: the k=4 cell's wall is well under 4× solo's
    /// per-broadcast barrier cost.
    #[test]
    fn mini_cells_hold_corollary1_and_pipeline() {
        let p = 64u32;
        let solo = run_cell(p, 1, false, 2, 7, LogP::PAPER);
        let multi = run_cell(p, 4, false, 1, 7, LogP::PAPER);
        let m = m_scc_discrete(&LogP::PAPER);
        let per = u64::from(p) - 1 + m * u64::from(p);
        assert_eq!(solo.broadcasts, 2);
        assert_eq!(solo.messages, 2 * per);
        assert_eq!(multi.broadcasts, 4);
        assert_eq!(multi.messages, 4 * per);
        // 4 barrier-bound broadcasts in flight must beat 4 serial ones:
        // solo pays the barrier per broadcast, multi pays it ~once.
        assert!(
            multi.wall < solo.wall * 2,
            "no pipelining: multi {:?} vs solo {:?}",
            multi.wall,
            solo.wall
        );
    }

    #[test]
    fn faulty_mini_cell_completes() {
        let c = run_cell(128, 2, true, 1, 7, LogP::PAPER);
        assert_eq!(c.broadcasts, 2);
        assert!(c.messages > 2 * 127);
    }

    #[test]
    fn snapshot_has_one_metric_per_cell() {
        let bench = PubsubBench {
            cells: vec![
                PubsubCell {
                    p: 64,
                    k: 1,
                    faulty: false,
                    broadcasts: 2,
                    messages: 766,
                    wall: Duration::from_millis(40),
                },
                PubsubCell {
                    p: 64,
                    k: 4,
                    faulty: false,
                    broadcasts: 4,
                    messages: 1532,
                    wall: Duration::from_millis(25),
                },
            ],
            quick: true,
            seed0: 7,
            logp: LogP::PAPER,
        };
        let snap = bench.snapshot();
        assert!(snap.metrics.contains_key("ns_per_broadcast_p64_k1_ff"));
        assert!(snap.metrics.contains_key("ns_per_broadcast_p64_k4_ff"));
        assert_eq!(snap.provenance["broadcasts_p64_k4_ff"], "4");
        let s: f64 = snap.provenance["speedup_k4_vs_k1_p64"].parse().unwrap();
        assert!(s > 1.0, "{s}");
    }
}
