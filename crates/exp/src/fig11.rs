//! Figure 11: cluster broadcast latency vs rank count.
//!
//! The paper validates its prototype against Cray MPI's binomial
//! broadcast (with and without shared memory) and Corrected Gossip on
//! Piz Daint (1152–36864 ranks). On the thread-cluster substitute the
//! comparison becomes:
//!
//! * `binomial (native)` — plain binomial broadcast, standing in for
//!   the vendor implementation;
//! * `binomial (ours)` — the generic Corrected-Trees code path with one
//!   correction message (`d = 1`), the cheapest fault-tolerant setting;
//! * `gossip` — round-limited Corrected Gossip with opportunistic
//!   correction, as in the paper's prototype.
//!
//! Expected shape: the generic implementation tracks the native one
//! closely; gossip is consistently slower ("the performance of
//! Corrected Gossip turned out to be consistently worse than trees").

use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_gossip::GossipSpec;
use ct_logp::LogP;
use ct_runtime::{harness, BenchConfig, BenchResult, ClusterError};

use crate::csv::{fmt_f64, CsvTable};

/// Configuration for the Figure 11 sweep.
#[derive(Clone, Debug)]
pub struct Fig11Config {
    /// Rank counts to sweep.
    pub process_counts: Vec<u32>,
    /// Warmup iterations per point.
    pub warmup: u32,
    /// Measured iterations per point.
    pub iterations: u32,
    /// Gossip rounds (paper: empirically selected; scale with log P).
    pub gossip_rounds: u32,
    /// Base seed.
    pub seed: u64,
}

impl Fig11Config {
    /// Laptop-scale defaults. The top counts were capped at 64 while
    /// the cluster spawned one OS thread per rank; the M:N scheduler
    /// makes 128/256 routine on a development machine.
    pub fn quick() -> Fig11Config {
        Fig11Config {
            process_counts: vec![4, 8, 16, 32, 64, 128, 256],
            warmup: 3,
            iterations: 10,
            gossip_rounds: 12,
            seed: 1,
        }
    }
}

/// One point of one series.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Series name.
    pub series: String,
    /// Rank count.
    pub p: u32,
    /// Benchmark statistics.
    pub result: BenchResult,
}

/// Run the sweep.
pub fn run(cfg: &Fig11Config) -> Result<Vec<Fig11Row>, ClusterError> {
    let logp = LogP::PAPER;
    let mut rows = Vec::new();
    for &p in &cfg.process_counts {
        let bench = BenchConfig::new(p).with_iterations(cfg.warmup, cfg.iterations);

        let native = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
        rows.push(Fig11Row {
            series: "binomial (native)".into(),
            p,
            result: harness::run_bench(&native, logp, &bench)?,
        });

        let ours = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 1 },
        );
        rows.push(Fig11Row {
            series: "binomial (ours)".into(),
            p,
            result: harness::run_bench(&ours, logp, &bench)?,
        });

        let gossip = GossipSpec::round_limited(
            cfg.gossip_rounds,
            CorrectionKind::Opportunistic { distance: 4 },
        );
        rows.push(Fig11Row {
            series: "gossip".into(),
            p,
            result: harness::run_bench(&gossip, logp, &bench)?,
        });
    }
    Ok(rows)
}

/// Render as CSV.
pub fn to_csv(rows: &[Fig11Row]) -> CsvTable {
    let mut t = CsvTable::new([
        "series",
        "p",
        "median_us",
        "p25_us",
        "p75_us",
        "incomplete",
        "mean_messages",
    ]);
    for r in rows {
        t.row([
            r.series.clone(),
            r.p.to_string(),
            fmt_f64(r.result.median_us),
            fmt_f64(r.result.p25_us),
            fmt_f64(r.result.p75_us),
            r.result.incomplete.to_string(),
            fmt_f64(r.result.mean_messages),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_series_and_completes() {
        let cfg = Fig11Config {
            process_counts: vec![4, 16],
            warmup: 1,
            iterations: 4,
            gossip_rounds: 8,
            seed: 2,
        };
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.result.incomplete, 0, "{} at P={}", r.series, r.p);
            assert!(r.result.median_us > 0.0);
        }
        assert_eq!(to_csv(&rows).len(), 6);
    }
}
