//! Minimal CSV emission.
//!
//! Every figure binary prints its series to stdout *and* can write the
//! same rows to `results/<figure>.csv`. Hand-rolled (quoting only what
//! needs quoting) to keep the dependency set at the workspace baseline.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table.
#[derive(Clone, Debug, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Quote a field iff it contains a comma, quote or newline.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

impl CsvTable {
    /// Create a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> CsvTable {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, fields: impl IntoIterator<Item = S>) {
        let row: Vec<String> = fields.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No data rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a CSV string (header + rows, `\n`-terminated lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_line = |fields: &[String], out: &mut String| {
            let line: Vec<String> = fields.iter().map(|f| quote(f)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_line(&self.header, &mut out);
        for row in &self.rows {
            write_line(row, &mut out);
        }
        out
    }

    /// Write to a file, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float with enough (but not absurd) precision for a CSV.
pub fn fmt_f64(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{:.0}", v)
    } else {
        format!("{:.4}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["x", "y"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\nx,y\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quotes_only_when_needed() {
        let mut t = CsvTable::new(["v"]);
        t.row(["plain"]);
        t.row(["with,comma"]);
        t.row(["with\"quote"]);
        assert_eq!(t.to_csv(), "v\nplain\n\"with,comma\"\n\"with\"\"quote\"\n");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_is_enforced() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(1.23456), "1.2346");
        assert_eq!(fmt_f64(0.5), "0.5000");
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("ct-exp-csv-test");
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(["x"]);
        t.row(["1"]);
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
