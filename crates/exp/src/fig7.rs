//! Figure 7: fault-free quiescence latency vs process count.
//!
//! `P = 2¹⁰ … 2¹⁹` in the paper. Three tree shapes (binomial, Lamé,
//! optimal; the 4-ary curve is omitted for readability, as in the
//! paper) each appear twice: with acknowledgments (the traditional
//! fault-tolerance baseline — solid lines) and as Corrected Trees with
//! synchronized checked correction (dashed). Checked Corrected Gossip
//! with a per-`P` latency-tuned gossip time completes the picture with
//! its 5%/95% ribbon.
//!
//! Expected shape: ack-trees pay the double traversal, corrected trees
//! add a constant 8 steps, gossip sits near (sometimes below) the tree
//! curves at the cost of many more messages — "a latency reduction of
//! 50%" for Corrected Trees vs acknowledgments (abstract).

use ct_analysis::Summary;
use ct_core::tree::TreeKind;
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError};
use crate::csv::{fmt_f64, CsvTable};
use crate::tuning;
use crate::variants::Variant;

/// Configuration for the Figure 7 sweep.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Process counts (paper: `(10..=19).map(|n| 1 << n)`).
    pub process_counts: Vec<u32>,
    /// Repetitions for gossip points.
    pub gossip_reps: u32,
    /// Repetitions used when tuning the gossip time.
    pub tuning_reps: u32,
    /// Base seed.
    pub seed0: u64,
}

impl Fig7Config {
    /// Laptop-scale defaults: `P = 2¹⁰ … 2¹⁴`.
    pub fn quick() -> Fig7Config {
        Fig7Config {
            process_counts: (10..=14).map(|n| 1 << n).collect(),
            gossip_reps: 6,
            tuning_reps: 3,
            seed0: 1,
        }
    }

    /// The paper's full sweep `2¹⁰ … 2¹⁹`.
    pub fn paper() -> Fig7Config {
        Fig7Config {
            process_counts: (10..=19).map(|n| 1 << n).collect(),
            gossip_reps: 10,
            tuning_reps: 3,
            seed0: 1,
        }
    }
}

/// One point of one series.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Series name (`binomial (ack.)`, `lame2 (corr.)`, `gossip`, …).
    pub series: String,
    /// Process count.
    pub p: u32,
    /// Quiescence latency distribution (singleton for deterministic
    /// trees).
    pub quiescence: Summary,
}

/// The tree shapes plotted in Figure 7.
fn fig7_trees() -> [TreeKind; 3] {
    [TreeKind::BINOMIAL, TreeKind::LAME2, TreeKind::OPTIMAL]
}

/// Run the sweep.
pub fn run(cfg: &Fig7Config) -> Result<Vec<Fig7Row>, CampaignError> {
    let logp = LogP::PAPER;
    let mut rows = Vec::new();
    for &p in &cfg.process_counts {
        for kind in fig7_trees() {
            for (suffix, variant, reps) in [
                ("ack.", Variant::ack_tree(kind), 1u32),
                ("corr.", Variant::tree_checked_sync(kind), 1),
            ] {
                let records = Campaign::new(variant, p, logp)
                    .with_reps(reps)
                    .with_seed(cfg.seed0)
                    .run()?;
                rows.push(Fig7Row {
                    series: format!("{} ({suffix})", kind.label()),
                    p,
                    quiescence: Summary::of_u64(records.iter().map(|r| r.quiescence)),
                });
            }
        }
        // Checked gossip, latency-tuned per P (§4.1).
        let lo = logp.transit_steps();
        let log2p = (32 - p.leading_zeros()) as u64;
        let hi = logp.transit_steps() * (log2p + 8);
        let g = tuning::min_latency_gossip_time(p, logp, lo, hi, 2, cfg.tuning_reps, cfg.seed0)?;
        let records = Campaign::new(
            Variant::gossip(g, ct_core::correction::CorrectionKind::Checked),
            p,
            logp,
        )
        .with_reps(cfg.gossip_reps)
        .with_seed(cfg.seed0)
        .run()?;
        rows.push(Fig7Row {
            series: "gossip".into(),
            p,
            quiescence: Summary::of_u64(records.iter().map(|r| r.quiescence)),
        });
    }
    Ok(rows)
}

/// Render as CSV.
pub fn to_csv(rows: &[Fig7Row]) -> CsvTable {
    let mut t = CsvTable::new(["series", "p", "mean", "p05", "p95"]);
    for r in rows {
        t.row([
            r.series.clone(),
            r.p.to_string(),
            fmt_f64(r.quiescence.mean),
            fmt_f64(r.quiescence.p05),
            fmt_f64(r.quiescence.p95),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig7Config {
        Fig7Config {
            process_counts: vec![1 << 8, 1 << 10],
            gossip_reps: 3,
            tuning_reps: 2,
            seed0: 4,
        }
    }

    #[test]
    fn corrected_trees_beat_acknowledged_trees() {
        let rows = run(&tiny()).unwrap();
        for &p in &[1u32 << 8, 1 << 10] {
            for kind in [
                "binomial/interleaved",
                "lame2/interleaved",
                "optimal/interleaved",
            ] {
                let get = |suffix: &str| {
                    rows.iter()
                        .find(|r| r.p == p && r.series == format!("{kind} ({suffix})"))
                        .unwrap()
                        .quiescence
                        .mean
                };
                assert!(
                    get("corr.") < get("ack."),
                    "{kind} at P={p}: corrected must be faster than acked"
                );
            }
        }
    }

    #[test]
    fn latency_grows_with_p() {
        let rows = run(&tiny()).unwrap();
        let q = |p: u32, series: &str| {
            rows.iter()
                .find(|r| r.p == p && r.series == series)
                .unwrap()
                .quiescence
                .mean
        };
        for series in ["binomial/interleaved (corr.)", "optimal/interleaved (ack.)"] {
            assert!(q(1 << 10, series) > q(1 << 8, series), "{series}");
        }
    }

    #[test]
    fn optimal_is_fastest_corrected_tree() {
        let rows = run(&tiny()).unwrap();
        let q = |series: &str| {
            rows.iter()
                .find(|r| r.p == 1 << 10 && r.series == series)
                .unwrap()
                .quiescence
                .mean
        };
        assert!(q("optimal/interleaved (corr.)") <= q("binomial/interleaved (corr.)"));
        assert!(q("optimal/interleaved (corr.)") <= q("lame2/interleaved (corr.)"));
    }

    #[test]
    fn series_count() {
        let rows = run(&tiny()).unwrap();
        // Per P: 3 trees × 2 + gossip = 7.
        assert_eq!(rows.len(), 14);
        assert_eq!(to_csv(&rows).len(), 14);
    }
}
