//! Figure 6: average number of messages per process, failure-free.
//!
//! Grouped by correction type — opportunistic with `d ∈ {1, 2, 4}`
//! (trees use the optimized overlapped variant of §3.3) and checked
//! (synchronized) — across the four paper trees and Corrected Gossip.
//! The paper's reference lines sit at 1 message/process (plain tree
//! minimum) and 2 (tree + acknowledgment).
//!
//! Expected shape: trees are independent of `P` and land well below
//! gossip; checked trees send `1 + M_SCC = 6` per process at the paper's
//! parameters; gossip pays its redundant dissemination on top of the
//! same correction.

use ct_core::correction::CorrectionKind;
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError};
use crate::csv::{fmt_f64, CsvTable};
use crate::tuning;
use crate::variants::Variant;
use ct_core::protocol::ProtocolFactory as _;

/// Configuration for the Figure 6 campaign.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Process count (paper: 2¹⁶).
    pub p: u32,
    /// Opportunistic correction distances to sweep (paper: 1, 2, 4).
    pub distances: Vec<u32>,
    /// Repetitions for the (stochastic) gossip variants.
    pub gossip_reps: u32,
    /// Repetitions used when *tuning* gossip times.
    pub tuning_reps: u32,
    /// Base seed.
    pub seed0: u64,
}

impl Fig6Config {
    /// Laptop-scale defaults (`P = 2¹²`).
    pub fn quick() -> Fig6Config {
        Fig6Config {
            p: 1 << 12,
            distances: vec![1, 2, 4],
            gossip_reps: 10,
            tuning_reps: 5,
            seed0: 1,
        }
    }
}

/// One bar of the figure.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Correction-type group, e.g. `opportunistic(d=2)` or `checked`.
    pub group: String,
    /// Variant label within the group.
    pub variant: String,
    /// Mean messages per process.
    pub messages_per_process: f64,
}

/// Run the campaign.
pub fn run(cfg: &Fig6Config) -> Result<Vec<Fig6Row>, CampaignError> {
    let logp = LogP::PAPER;
    let mut rows = Vec::new();

    let push = |group: &str, variant: &Variant, reps: u32, rows: &mut Vec<Fig6Row>| {
        let records = Campaign::new(*variant, cfg.p, logp)
            .with_reps(reps)
            .with_seed(cfg.seed0)
            .run()?;
        let mean =
            records.iter().map(|r| r.messages_per_process).sum::<f64>() / records.len() as f64;
        rows.push(Fig6Row {
            group: group.to_owned(),
            variant: variant.label(),
            messages_per_process: mean,
        });
        Ok::<(), CampaignError>(())
    };

    for &d in &cfg.distances {
        let group = format!("opportunistic(d={d})");
        for kind in Variant::paper_trees() {
            push(&group, &Variant::tree_opportunistic(kind, d), 1, &mut rows)?;
        }
        // Gossip with the smallest fully-coloring gossip time (§4.1).
        let log2p = (32 - cfg.p.leading_zeros()) as u64;
        let cap = logp.transit_steps() * (log2p + 16);
        let g =
            tuning::min_full_coloring_gossip_time(cfg.p, logp, d, cfg.tuning_reps, cfg.seed0, cap)?;
        push(
            &group,
            &Variant::gossip(g, CorrectionKind::Opportunistic { distance: d }),
            cfg.gossip_reps,
            &mut rows,
        )?;
    }

    // Checked group: synchronized checked trees + latency-tuned gossip.
    for kind in Variant::paper_trees() {
        push("checked", &Variant::tree_checked_sync(kind), 1, &mut rows)?;
    }
    let lo = logp.transit_steps();
    let hi = lo * (2 + (32 - cfg.p.leading_zeros() as u64));
    let g = tuning::min_latency_gossip_time(cfg.p, logp, lo, hi, 2, cfg.tuning_reps, cfg.seed0)?;
    push(
        "checked",
        &Variant::gossip(g, CorrectionKind::Checked),
        cfg.gossip_reps,
        &mut rows,
    )?;

    Ok(rows)
}

/// Render rows as the figure's CSV.
pub fn to_csv(rows: &[Fig6Row]) -> CsvTable {
    let mut t = CsvTable::new(["group", "variant", "messages_per_process"]);
    for r in rows {
        t.row([
            r.group.clone(),
            r.variant.clone(),
            fmt_f64(r.messages_per_process),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_analysis::m_scc;

    fn tiny() -> Fig6Config {
        Fig6Config {
            p: 256,
            distances: vec![1, 4],
            gossip_reps: 3,
            tuning_reps: 3,
            seed0: 2,
        }
    }

    #[test]
    fn checked_trees_send_one_plus_mscc() {
        let rows = run(&tiny()).unwrap();
        let logp = LogP::PAPER;
        // §4.1: every process sends its tree message(s) (P-1 total ≈ 1
        // per process) plus M_SCC = 5 correction messages.
        for r in rows
            .iter()
            .filter(|r| r.group == "checked" && !r.variant.starts_with("gossip"))
        {
            let expected = (256.0 - 1.0) / 256.0 + m_scc(&logp) as f64;
            assert!(
                (r.messages_per_process - expected).abs() < 1e-9,
                "{}: {} vs {}",
                r.variant,
                r.messages_per_process,
                expected
            );
        }
    }

    fn assert_gossip_exceeds_trees(rows: &[Fig6Row], groups: &[&str]) {
        for group in groups {
            let (mut tree_max, mut gossip) = (0.0f64, None);
            for r in rows.iter().filter(|r| &r.group == group) {
                if r.variant.starts_with("gossip") {
                    gossip = Some(r.messages_per_process);
                } else {
                    tree_max = tree_max.max(r.messages_per_process);
                }
            }
            let gossip = gossip.expect("each group has a gossip bar");
            assert!(
                gossip > tree_max,
                "{group}: gossip {gossip} ≤ trees {tree_max}"
            );
        }
    }

    #[test]
    fn gossip_sends_more_than_trees_at_small_scale_for_tight_budgets() {
        // At tiny P the d=4 group can favor gossip (coloring only has to
        // land within distance 4 of everyone); the paper's full-scale
        // relation for that group is covered by the ignored test below.
        let rows = run(&tiny()).unwrap();
        assert_gossip_exceeds_trees(&rows, &["opportunistic(d=1)", "checked"]);
    }

    #[test]
    #[ignore = "paper-scale check (~minutes); run with --ignored"]
    fn gossip_sends_more_than_trees_in_every_group_at_scale() {
        let cfg = Fig6Config {
            p: 1 << 14,
            distances: vec![1, 2, 4],
            gossip_reps: 3,
            tuning_reps: 3,
            seed0: 2,
        };
        let rows = run(&cfg).unwrap();
        assert_gossip_exceeds_trees(
            &rows,
            &[
                "opportunistic(d=1)",
                "opportunistic(d=2)",
                "opportunistic(d=4)",
                "checked",
            ],
        );
    }

    #[test]
    fn opportunistic_trees_scale_with_distance() {
        let rows = run(&tiny()).unwrap();
        let tree_mean = |group: &str| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.group == group && !r.variant.starts_with("gossip"))
                .map(|r| r.messages_per_process)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(tree_mean("opportunistic(d=4)") > tree_mean("opportunistic(d=1)"));
    }

    #[test]
    fn csv_has_all_rows() {
        let rows = run(&tiny()).unwrap();
        // 2 distances × 5 variants + 5 checked variants.
        assert_eq!(rows.len(), 15);
        assert_eq!(to_csv(&rows).len(), 15);
    }
}
