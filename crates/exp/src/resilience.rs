//! The fault-rate sweep of §4.3.
//!
//! One campaign grid underlies Figures 8, 9, 10 and Table 1: the four
//! paper trees with synchronized checked correction, plus checked
//! Corrected Gossip, each run at fault rates 0.01%–4% on `P` processes
//! ("we simulated 10⁵ broadcasts of every type on 64K processes" —
//! repetitions and `P` are configurable here). Each repetition records
//! quiescence latency, message counts, the post-dissemination maximum
//! gap and the correction time `L_SCC`.

use ct_analyze::WasteReport;
use ct_core::correction::CorrectionKind;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_obs::json::JsonObject;
use ct_obs::{MonitorConfig, MonitorReport, MonitorSink, VecSink};

use crate::campaign::{Campaign, CampaignError, FaultSpec, RunRecord};
use crate::variants::Variant;

/// The paper's fault rates (fractions): 0.01%, 0.1%, 1%, 2%, 4%.
pub const PAPER_FAULT_RATES: [f64; 5] = [0.0001, 0.001, 0.01, 0.02, 0.04];

/// Configuration of the resilience grid.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Process count (paper: 2¹⁶).
    pub p: u32,
    /// Machine model.
    pub logp: LogP,
    /// Fault rates to sweep.
    pub rates: Vec<f64>,
    /// Repetitions per cell (paper: 10⁵).
    pub reps: u32,
    /// Base seed.
    pub seed0: u64,
    /// Worker threads for repetitions.
    pub threads: usize,
    /// Gossip time for the checked-gossip competitor (pre-tuned for the
    /// chosen `p`; see [`crate::tuning`]).
    pub gossip_time: u64,
    /// Include the gossip competitor at all.
    pub include_gossip: bool,
}

impl ResilienceConfig {
    /// Laptop-scale defaults: `P = 4096`, 50 reps. Pass the paper's
    /// scale (`p = 1 << 16`, `reps = 100_000`) for a full reproduction.
    pub fn quick() -> ResilienceConfig {
        ResilienceConfig {
            p: 1 << 12,
            logp: LogP::PAPER,
            rates: PAPER_FAULT_RATES.to_vec(),
            reps: 50,
            seed0: 1,
            threads: crate::campaign::default_threads(),
            gossip_time: 30,
            include_gossip: true,
        }
    }
}

/// One grid cell's results.
#[derive(Clone, Debug)]
pub struct ResilienceCell {
    /// Variant label.
    pub label: String,
    /// Is this one of the tree variants (vs gossip)?
    pub is_tree: bool,
    /// Tree kind when `is_tree`.
    pub tree: Option<TreeKind>,
    /// Fault rate of this cell.
    pub rate: f64,
    /// All repetition records.
    pub records: Vec<RunRecord>,
}

/// Run the full grid.
pub fn run_grid(cfg: &ResilienceConfig) -> Result<Vec<ResilienceCell>, CampaignError> {
    let mut cells = Vec::new();
    for &rate in &cfg.rates {
        for kind in Variant::paper_trees() {
            let variant = Variant::tree_checked_sync(kind);
            let records = Campaign::new(variant, cfg.p, cfg.logp)
                .with_faults(FaultSpec::Rate(rate))
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            cells.push(ResilienceCell {
                label: kind.label(),
                is_tree: true,
                tree: Some(kind),
                rate,
                records,
            });
        }
        if cfg.include_gossip {
            let variant = Variant::gossip(cfg.gossip_time, CorrectionKind::Checked);
            let records = Campaign::new(variant, cfg.p, cfg.logp)
                .with_faults(FaultSpec::Rate(rate))
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            cells.push(ResilienceCell {
                label: "gossip".into(),
                is_tree: false,
                tree: None,
                rate,
                records,
            });
        }
    }
    Ok(cells)
}

/// Waste accounting and monitor attestation for one representative
/// resilience cell, attached verbatim to figure manifests.
#[derive(Clone, Debug)]
pub struct WasteProbe {
    /// Process count the probe ran at (clamped — see [`waste_probe`]).
    pub p: u32,
    /// Repetitions the probe ran.
    pub reps: u32,
    /// Fault rate of the probed cell.
    pub rate: f64,
    /// Aggregate waste over all probe repetitions.
    pub waste: WasteReport,
    /// Invariant-monitor verdict over all probe repetitions.
    pub monitor: MonitorReport,
}

impl WasteProbe {
    /// Render the manifest block:
    /// `{"p":…,"reps":…,"rate":…,"violations":…,"waste":{…}}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("p", u64::from(self.p));
        obj.field_u64("reps", u64::from(self.reps));
        obj.field_f64("rate", self.rate);
        obj.field_u64("violations", self.monitor.violations.len() as u64);
        obj.field_raw("waste", &self.waste.to_json());
        obj.finish()
    }
}

/// Probe one cell of the resilience grid (binomial tree, checked sync
/// correction, the given fault rate) under the invariant monitor and
/// the waste accounting. Event capture allocates per repetition, so the
/// probe clamps to a tractable size (`P ≤ 4096`, 5 repetitions) — the
/// same spirit as `ct-bench`'s analysis probe — rather than replaying
/// the full grid.
pub fn waste_probe(cfg: &ResilienceConfig, rate: f64) -> Result<WasteProbe, CampaignError> {
    let p = cfg.p.clamp(2, 4096);
    let reps = cfg.reps.clamp(1, 5);
    let campaign = Campaign::new(Variant::tree_checked_sync(TreeKind::BINOMIAL), p, cfg.logp)
        .with_faults(FaultSpec::Rate(rate))
        .with_reps(reps)
        .with_seed(cfg.seed0);
    let mut waste = WasteReport::default();
    let mut monitor = MonitorReport::default();
    for i in 0..reps {
        let plan = campaign.fault_plan(i)?;
        let mut sink = VecSink::new();
        campaign.run_one_observed(i, &mut sink)?;
        waste.add(&WasteReport::from_events(&sink.events, plan.mask()));
        let mcfg = MonitorConfig::new()
            .with_p(p)
            .with_logp(cfg.logp)
            .with_failed(plan.mask().to_vec());
        monitor.absorb(MonitorSink::check(&sink.events, &mcfg), i);
    }
    Ok(WasteProbe {
        p,
        reps,
        rate,
        waste,
        monitor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ResilienceConfig {
        ResilienceConfig {
            p: 256,
            logp: LogP::PAPER,
            rates: vec![0.01, 0.04],
            reps: 4,
            seed0: 5,
            threads: 2,
            gossip_time: 22,
            include_gossip: true,
        }
    }

    #[test]
    fn grid_covers_all_cells() {
        let cells = run_grid(&tiny()).unwrap();
        // 2 rates × (4 trees + gossip).
        assert_eq!(cells.len(), 10);
        for cell in &cells {
            assert_eq!(cell.records.len(), 4);
            assert!(
                cell.records.iter().all(|r| r.all_live_colored),
                "checked correction colors everything: {} @ {}",
                cell.label,
                cell.rate
            );
        }
    }

    #[test]
    fn waste_probe_attests_and_accounts() {
        let probe = waste_probe(&tiny(), 0.04).unwrap();
        assert!(probe.monitor.is_ok(), "{}", probe.monitor.render_text());
        assert!(probe.waste.sends > 0);
        let json = probe.to_json();
        assert!(json.contains(r#""violations":0"#), "{json}");
        assert!(json.contains(r#""waste":{"sends":"#), "{json}");
    }

    #[test]
    fn higher_fault_rate_means_more_faults() {
        let cells = run_grid(&tiny()).unwrap();
        let mean_faults = |rate: f64| -> f64 {
            let cell = cells
                .iter()
                .find(|c| c.is_tree && (c.rate - rate).abs() < 1e-12)
                .unwrap();
            cell.records.iter().map(|r| r.faults as f64).sum::<f64>() / cell.records.len() as f64
        };
        assert!(mean_faults(0.04) > mean_faults(0.01));
    }
}
