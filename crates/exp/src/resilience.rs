//! The fault-rate sweep of §4.3.
//!
//! One campaign grid underlies Figures 8, 9, 10 and Table 1: the four
//! paper trees with synchronized checked correction, plus checked
//! Corrected Gossip, each run at fault rates 0.01%–4% on `P` processes
//! ("we simulated 10⁵ broadcasts of every type on 64K processes" —
//! repetitions and `P` are configurable here). Each repetition records
//! quiescence latency, message counts, the post-dissemination maximum
//! gap and the correction time `L_SCC`.

use ct_core::correction::CorrectionKind;
use ct_core::tree::TreeKind;
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError, FaultSpec, RunRecord};
use crate::variants::Variant;

/// The paper's fault rates (fractions): 0.01%, 0.1%, 1%, 2%, 4%.
pub const PAPER_FAULT_RATES: [f64; 5] = [0.0001, 0.001, 0.01, 0.02, 0.04];

/// Configuration of the resilience grid.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Process count (paper: 2¹⁶).
    pub p: u32,
    /// Machine model.
    pub logp: LogP,
    /// Fault rates to sweep.
    pub rates: Vec<f64>,
    /// Repetitions per cell (paper: 10⁵).
    pub reps: u32,
    /// Base seed.
    pub seed0: u64,
    /// Worker threads for repetitions.
    pub threads: usize,
    /// Gossip time for the checked-gossip competitor (pre-tuned for the
    /// chosen `p`; see [`crate::tuning`]).
    pub gossip_time: u64,
    /// Include the gossip competitor at all.
    pub include_gossip: bool,
}

impl ResilienceConfig {
    /// Laptop-scale defaults: `P = 4096`, 50 reps. Pass the paper's
    /// scale (`p = 1 << 16`, `reps = 100_000`) for a full reproduction.
    pub fn quick() -> ResilienceConfig {
        ResilienceConfig {
            p: 1 << 12,
            logp: LogP::PAPER,
            rates: PAPER_FAULT_RATES.to_vec(),
            reps: 50,
            seed0: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            gossip_time: 30,
            include_gossip: true,
        }
    }
}

/// One grid cell's results.
#[derive(Clone, Debug)]
pub struct ResilienceCell {
    /// Variant label.
    pub label: String,
    /// Is this one of the tree variants (vs gossip)?
    pub is_tree: bool,
    /// Tree kind when `is_tree`.
    pub tree: Option<TreeKind>,
    /// Fault rate of this cell.
    pub rate: f64,
    /// All repetition records.
    pub records: Vec<RunRecord>,
}

/// Run the full grid.
pub fn run_grid(cfg: &ResilienceConfig) -> Result<Vec<ResilienceCell>, CampaignError> {
    let mut cells = Vec::new();
    for &rate in &cfg.rates {
        for kind in Variant::paper_trees() {
            let variant = Variant::tree_checked_sync(kind);
            let records = Campaign::new(variant, cfg.p, cfg.logp)
                .with_faults(FaultSpec::Rate(rate))
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            cells.push(ResilienceCell {
                label: kind.label(),
                is_tree: true,
                tree: Some(kind),
                rate,
                records,
            });
        }
        if cfg.include_gossip {
            let variant = Variant::gossip(cfg.gossip_time, CorrectionKind::Checked);
            let records = Campaign::new(variant, cfg.p, cfg.logp)
                .with_faults(FaultSpec::Rate(rate))
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            cells.push(ResilienceCell {
                label: "gossip".into(),
                is_tree: false,
                tree: None,
                rate,
                records,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ResilienceConfig {
        ResilienceConfig {
            p: 256,
            logp: LogP::PAPER,
            rates: vec![0.01, 0.04],
            reps: 4,
            seed0: 5,
            threads: 2,
            gossip_time: 22,
            include_gossip: true,
        }
    }

    #[test]
    fn grid_covers_all_cells() {
        let cells = run_grid(&tiny()).unwrap();
        // 2 rates × (4 trees + gossip).
        assert_eq!(cells.len(), 10);
        for cell in &cells {
            assert_eq!(cell.records.len(), 4);
            assert!(
                cell.records.iter().all(|r| r.all_live_colored),
                "checked correction colors everything: {} @ {}",
                cell.label,
                cell.rate
            );
        }
    }

    #[test]
    fn higher_fault_rate_means_more_faults() {
        let cells = run_grid(&tiny()).unwrap();
        let mean_faults = |rate: f64| -> f64 {
            let cell = cells
                .iter()
                .find(|c| c.is_tree && (c.rate - rate).abs() < 1e-12)
                .unwrap();
            cell.records.iter().map(|r| r.faults as f64).sum::<f64>() / cell.records.len() as f64
        };
        assert!(mean_faults(0.04) > mean_faults(0.01));
    }
}
