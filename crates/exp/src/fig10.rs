//! Figure 10: (maximum gap, correction time) scatter with Lemma 3
//! bounds.
//!
//! Every tree repetition of the [`crate::resilience`] grid contributes
//! one `(g_max, L_SCC)` point; the Lemma-3 lower and upper lines must
//! sandwich all of them ("upper and lower bounds … surround the data
//! points obtained from simulation tightly"). Points coming from
//! binomial trees are flagged, since "most large gaps happened only for
//! binomial trees".

use ct_analysis::lscc_bounds;
use ct_core::tree::TreeKind;
use ct_logp::LogP;

use crate::csv::CsvTable;
use crate::resilience::ResilienceCell;

/// One scatter point (deduplicated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig10Point {
    /// Maximum gap after dissemination.
    pub g_max: u32,
    /// Correction time in steps.
    pub lscc: u64,
    /// Did any binomial-tree run produce this pair?
    pub from_binomial: bool,
    /// Lemma 3 lower bound for this `g_max`.
    pub lower: u64,
    /// Lemma 3 upper bound for this `g_max`.
    pub upper: u64,
}

/// Extract the unique `(g_max, L_SCC)` pairs from tree cells.
pub fn from_cells(cells: &[ResilienceCell], logp: &LogP) -> Vec<Fig10Point> {
    let mut points: Vec<Fig10Point> = Vec::new();
    for cell in cells.iter().filter(|c| c.is_tree) {
        let is_binomial = matches!(cell.tree, Some(TreeKind::Binomial { .. }));
        for rec in &cell.records {
            let lscc = rec
                .lscc
                .expect("resilience grid uses synchronized correction");
            match points
                .iter_mut()
                .find(|pt| pt.g_max == rec.g_max && pt.lscc == lscc)
            {
                Some(pt) => pt.from_binomial |= is_binomial,
                None => {
                    let (lo, hi) = lscc_bounds(rec.g_max, logp);
                    points.push(Fig10Point {
                        g_max: rec.g_max,
                        lscc,
                        from_binomial: is_binomial,
                        lower: lo.steps(),
                        upper: hi.steps(),
                    });
                }
            }
        }
    }
    points.sort_by_key(|pt| (pt.g_max, pt.lscc));
    points
}

/// Fraction of points respecting the Lemma-3 bounds (should be 1.0).
pub fn bounds_conformance(points: &[Fig10Point]) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    let ok = points
        .iter()
        .filter(|pt| pt.lscc >= pt.lower && pt.lscc <= pt.upper)
        .count();
    ok as f64 / points.len() as f64
}

/// Render as CSV.
pub fn to_csv(points: &[Fig10Point]) -> CsvTable {
    let mut t = CsvTable::new([
        "g_max",
        "correction_time",
        "tree",
        "lower_bound",
        "upper_bound",
    ]);
    for pt in points {
        t.row([
            pt.g_max.to_string(),
            pt.lscc.to_string(),
            if pt.from_binomial {
                "binomial".into()
            } else {
                "any".to_string()
            },
            pt.lower.to_string(),
            pt.upper.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{run_grid, ResilienceConfig};

    #[test]
    fn all_points_respect_lemma3_bounds() {
        let logp = LogP::PAPER;
        let cells = run_grid(&ResilienceConfig {
            p: 1024,
            logp,
            rates: vec![0.01, 0.04],
            reps: 10,
            seed0: 21,
            threads: crate::campaign::default_threads(),
            gossip_time: 24,
            include_gossip: false,
        })
        .unwrap();
        let points = from_cells(&cells, &logp);
        assert!(!points.is_empty());
        assert_eq!(bounds_conformance(&points), 1.0, "{points:?}");
    }

    #[test]
    fn points_are_unique_and_sorted() {
        let logp = LogP::PAPER;
        let cells = run_grid(&ResilienceConfig {
            p: 512,
            logp,
            rates: vec![0.02],
            reps: 8,
            seed0: 3,
            threads: crate::campaign::default_threads(),
            gossip_time: 24,
            include_gossip: false,
        })
        .unwrap();
        let points = from_cells(&cells, &logp);
        for w in points.windows(2) {
            assert!((w[0].g_max, w[0].lscc) < (w[1].g_max, w[1].lscc));
        }
    }
}
