//! Correlated failures and random numbering (§2.1) — extension
//! experiment.
//!
//! The paper's analysis assumes independent failures and §2.1 sketches
//! two escapes for the real world, where whole nodes die at once:
//! number tree nodes randomly, or keep correlated processes far apart
//! on the ring. This campaign quantifies the first: fail whole aligned
//! blocks of `node_size` consecutive ranks and compare
//!
//! * **linear** numbering — the block is one contiguous ring gap of at
//!   least `node_size`, so checked correction pays Lemma 3's price for
//!   a large `g_max`, against
//! * **shuffled** numbering — the same physical block scatters across
//!   the virtual ring into (mostly) unit gaps, restoring the
//!   independent-failure behavior of Figures 8–10.

use ct_analysis::Summary;
use ct_core::correction::CorrectionKind;
use ct_core::protocol::{BroadcastSpec, ColoredVia, Relabeling};
use ct_core::tree::{ring, TreeKind};
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

use crate::campaign::CampaignError;
use crate::csv::{fmt_f64, CsvTable};

/// Configuration of the correlated-failure campaign.
#[derive(Clone, Debug)]
pub struct CorrelatedConfig {
    /// Process count.
    pub p: u32,
    /// Ranks per physical node.
    pub node_size: u32,
    /// Numbers of simultaneously crashing nodes to sweep.
    pub node_counts: Vec<u32>,
    /// Repetitions per cell.
    pub reps: u32,
    /// Base seed.
    pub seed0: u64,
}

impl CorrelatedConfig {
    /// Laptop-scale defaults: 4096 processes on 36-rank nodes (the
    /// paper's Piz Daint nodes ran 72 ranks; half that keeps several
    /// hundred nodes at quick scale).
    pub fn quick() -> CorrelatedConfig {
        CorrelatedConfig {
            p: 1 << 12,
            node_size: 36,
            node_counts: vec![1, 2, 4],
            reps: 30,
            seed0: 1,
        }
    }
}

/// One cell: a numbering × node-failure count.
#[derive(Clone, Debug)]
pub struct CorrelatedRow {
    /// `linear` or `shuffled`.
    pub numbering: String,
    /// Crashed nodes per run.
    pub nodes: u32,
    /// Failed processes per run.
    pub faults: u32,
    /// Maximum gap on the *correction ring* (virtual numbering).
    pub g_max: Summary,
    /// Correction time (synchronized checked), steps.
    pub lscc: Summary,
}

/// Run the campaign with synchronized checked correction on the
/// interleaved binomial tree.
pub fn run(cfg: &CorrelatedConfig) -> Result<Vec<CorrelatedRow>, CampaignError> {
    let logp = LogP::PAPER;
    let tree = TreeKind::BINOMIAL.build(cfg.p, &logp).expect("valid tree");
    let start = tree.dissemination_deadline(&logp);
    let mut rows = Vec::new();
    for shuffled in [false, true] {
        for &nodes in &cfg.node_counts {
            let mut gmaxes = Vec::with_capacity(cfg.reps as usize);
            let mut lsccs = Vec::with_capacity(cfg.reps as usize);
            let mut faults = 0u32;
            for rep in 0..cfg.reps {
                let seed = cfg.seed0 + rep as u64;
                let mut spec =
                    BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
                if shuffled {
                    spec = spec.with_shuffle(0xC0FFEE);
                }
                let plan = FaultPlan::node_blocks(cfg.p, cfg.node_size, nodes, seed, 0)
                    .map_err(|e| CampaignError::Faults(e.to_string()))?;
                faults = plan.count();
                let out = Simulation::builder(cfg.p, logp)
                    .faults(plan)
                    .seed(seed)
                    .build()
                    .run(&spec)
                    .map_err(CampaignError::Sim)?;
                assert!(out.all_live_colored(), "checked correction heals all");
                // Gap analysis lives on the correction ring — the
                // *virtual* numbering when shuffled.
                let phys_diss: Vec<bool> = out
                    .colored_via
                    .iter()
                    .map(|v| matches!(v, Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)))
                    .collect();
                let virt_diss = if shuffled {
                    let map = Relabeling::random(cfg.p, 0, 0xC0FFEEu64.wrapping_add(seed));
                    (0..cfg.p)
                        .map(|v| phys_diss[map.physical(v) as usize])
                        .collect()
                } else {
                    phys_diss
                };
                gmaxes.push(ring::max_gap(&virt_diss) as u64);
                lsccs.push(out.quiescence.since(start).steps());
            }
            rows.push(CorrelatedRow {
                numbering: if shuffled { "shuffled" } else { "linear" }.into(),
                nodes,
                faults,
                g_max: Summary::of_u64(gmaxes),
                lscc: Summary::of_u64(lsccs),
            });
        }
    }
    Ok(rows)
}

/// Render as CSV.
pub fn to_csv(rows: &[CorrelatedRow]) -> CsvTable {
    let mut t = CsvTable::new([
        "numbering",
        "nodes",
        "faults",
        "gmax_mean",
        "gmax_max",
        "lscc_mean",
        "lscc_p95",
        "lscc_max",
    ]);
    for r in rows {
        t.row([
            r.numbering.clone(),
            r.nodes.to_string(),
            r.faults.to_string(),
            fmt_f64(r.g_max.mean),
            fmt_f64(r.g_max.max),
            fmt_f64(r.lscc.mean),
            fmt_f64(r.lscc.p95),
            fmt_f64(r.lscc.max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorrelatedConfig {
        CorrelatedConfig {
            p: 512,
            node_size: 16,
            node_counts: vec![1, 2],
            reps: 6,
            seed0: 5,
        }
    }

    #[test]
    fn linear_numbering_suffers_node_sized_gaps() {
        let rows = run(&tiny()).unwrap();
        let linear1 = rows
            .iter()
            .find(|r| r.numbering == "linear" && r.nodes == 1)
            .unwrap();
        // A whole node of 16 consecutive ranks is one gap ≥ 16.
        assert!(linear1.g_max.min >= 16.0, "{:?}", linear1.g_max);
        assert_eq!(linear1.faults, 16);
    }

    #[test]
    fn shuffling_restores_small_gaps_and_fast_correction() {
        let rows = run(&tiny()).unwrap();
        for nodes in [1u32, 2] {
            let get = |numbering: &str| {
                rows.iter()
                    .find(|r| r.numbering == numbering && r.nodes == nodes)
                    .unwrap()
            };
            let (lin, shuf) = (get("linear"), get("shuffled"));
            assert!(
                shuf.g_max.mean < lin.g_max.mean / 2.0,
                "nodes={nodes}: shuffled g_max {} vs linear {}",
                shuf.g_max.mean,
                lin.g_max.mean
            );
            assert!(
                shuf.lscc.mean <= lin.lscc.mean,
                "nodes={nodes}: shuffled correction must not be slower"
            );
        }
    }

    #[test]
    fn csv_shape() {
        let rows = run(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(to_csv(&rows).len(), 4);
    }
}
