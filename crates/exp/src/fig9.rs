//! Figure 9: average messages per process vs fault rate.
//!
//! Aggregates the [`crate::resilience`] grid. Expected shape (§4.3):
//! the message count *drops* as the fault rate rises — dead processes
//! send nothing and uncolored processes do not participate in
//! correction — while Corrected Trees stay well below Corrected Gossip
//! throughout.

use ct_analysis::Summary;

use crate::csv::{fmt_f64, CsvTable};
use crate::resilience::ResilienceCell;

/// One point: a variant at a fault rate.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Variant label.
    pub series: String,
    /// Fault rate (fraction).
    pub rate: f64,
    /// Messages-per-process distribution.
    pub messages_per_process: Summary,
}

/// Aggregate grid cells into figure rows.
pub fn from_cells(cells: &[ResilienceCell]) -> Vec<Fig9Row> {
    cells
        .iter()
        .map(|cell| Fig9Row {
            series: cell.label.clone(),
            rate: cell.rate,
            messages_per_process: Summary::of(
                &cell
                    .records
                    .iter()
                    .map(|r| r.messages_per_process)
                    .collect::<Vec<f64>>(),
            ),
        })
        .collect()
}

/// Render as CSV.
pub fn to_csv(rows: &[Fig9Row]) -> CsvTable {
    let mut t = CsvTable::new(["series", "fault_rate", "mean", "p05", "p95"]);
    for r in rows {
        t.row([
            r.series.clone(),
            format!("{}", r.rate),
            fmt_f64(r.messages_per_process.mean),
            fmt_f64(r.messages_per_process.p05),
            fmt_f64(r.messages_per_process.p95),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{run_grid, ResilienceConfig};
    use ct_logp::LogP;

    fn cells() -> Vec<ResilienceCell> {
        run_grid(&ResilienceConfig {
            p: 512,
            logp: LogP::PAPER,
            rates: vec![0.001, 0.04],
            reps: 8,
            seed0: 9,
            threads: crate::campaign::default_threads(),
            gossip_time: 26,
            include_gossip: true,
        })
        .unwrap()
    }

    #[test]
    fn messages_drop_with_fault_rate() {
        let rows = from_cells(&cells());
        let mean = |series: &str, rate: f64| {
            rows.iter()
                .find(|r| r.series == series && (r.rate - rate).abs() < 1e-12)
                .unwrap()
                .messages_per_process
                .mean
        };
        for series in ["binomial/interleaved", "4-ary/interleaved"] {
            assert!(
                mean(series, 0.04) < mean(series, 0.001),
                "{series}: message count must drop under faults"
            );
        }
    }

    #[test]
    fn trees_send_fewer_messages_than_gossip_at_every_rate() {
        let rows = from_cells(&cells());
        for rate in [0.001, 0.04] {
            let gossip = rows
                .iter()
                .find(|r| r.series == "gossip" && (r.rate - rate).abs() < 1e-12)
                .unwrap()
                .messages_per_process
                .mean;
            for r in rows
                .iter()
                .filter(|r| r.series != "gossip" && (r.rate - rate).abs() < 1e-12)
            {
                assert!(
                    r.messages_per_process.mean < gossip,
                    "{} at {rate}: {} vs gossip {}",
                    r.series,
                    r.messages_per_process.mean,
                    gossip
                );
            }
        }
    }
}
