//! The protocol zoo of §4.
//!
//! A [`Variant`] is anything the evaluation compares: a (corrected,
//! acknowledged or plain) tree broadcast or a Corrected Gossip
//! configuration. It forwards [`ProtocolFactory`] to the underlying
//! spec and knows its synchronized-correction start time, which the
//! campaign needs to convert quiescence into correction time `L_SCC`.

use ct_core::correction::CorrectionKind;
use ct_core::protocol::{
    BroadcastSpec, BuildCtx, Process, ProtocolError, ProtocolFactory, StartMode,
};
use ct_core::tree::TreeKind;
use ct_gossip::{GossipMode, GossipSpec};
use ct_logp::{LogP, Time};

/// One competitor in an experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Variant {
    /// Tree-based broadcast (plain, acknowledged or corrected).
    Tree(BroadcastSpec),
    /// Corrected Gossip.
    Gossip(GossipSpec),
}

impl Variant {
    /// The four tree shapes the paper evaluates throughout §4, in its
    /// plotting order: binomial, 4-ary, Lamé (k=2), optimal.
    pub fn paper_trees() -> [TreeKind; 4] {
        [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
        ]
    }

    /// Corrected tree with synchronized checked correction (the
    /// analysis workhorse).
    pub fn tree_checked_sync(kind: TreeKind) -> Variant {
        Variant::Tree(BroadcastSpec::corrected_tree_sync(
            kind,
            CorrectionKind::Checked,
        ))
    }

    /// Corrected tree with optimized overlapped opportunistic correction
    /// (the paper's Corrected Trees default, §3.3).
    pub fn tree_opportunistic(kind: TreeKind, distance: u32) -> Variant {
        Variant::Tree(BroadcastSpec::corrected_tree(
            kind,
            CorrectionKind::OpportunisticOptimized { distance },
        ))
    }

    /// Tree with acknowledgments (§4.1 baseline).
    pub fn ack_tree(kind: TreeKind) -> Variant {
        Variant::Tree(BroadcastSpec::ack_tree(kind))
    }

    /// Time-limited Corrected Gossip.
    pub fn gossip(gossip_time: u64, correction: CorrectionKind) -> Variant {
        Variant::Gossip(GossipSpec::time_limited(gossip_time, correction))
    }

    /// When synchronized correction starts for this variant, if it uses
    /// synchronized correction at all.
    pub fn sync_start(&self, p: u32, logp: &LogP) -> Option<Time> {
        match self {
            Variant::Tree(spec) => match (spec.mode, spec.correction.is_none() || spec.acked) {
                (StartMode::Synchronized, false) => Some(match spec.sync_start_override {
                    Some(t) => Time::new(t),
                    None => ct_core::tree::cache::cached_deadline(spec.tree, p, logp)
                        .expect("campaign validated the tree"),
                }),
                _ => None,
            },
            Variant::Gossip(spec) => match (spec.mode, spec.correction.is_none()) {
                (GossipMode::TimeLimited(g), false) => Some(Time::new(g)),
                _ => None,
            },
        }
    }
}

impl ProtocolFactory for Variant {
    fn label(&self) -> String {
        match self {
            Variant::Tree(s) => s.label(),
            Variant::Gossip(s) => s.label(),
        }
    }

    fn build(&self, ctx: &BuildCtx) -> Result<Vec<Box<dyn Process>>, ProtocolError> {
        match self {
            Variant::Tree(s) => s.build(ctx),
            Variant::Gossip(s) => s.build(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trees_are_the_four_of_section4() {
        let trees = Variant::paper_trees();
        assert_eq!(trees.len(), 4);
        assert_eq!(trees[0].label(), "binomial/interleaved");
        assert_eq!(trees[1].label(), "4-ary/interleaved");
        assert_eq!(trees[2].label(), "lame2/interleaved");
        assert_eq!(trees[3].label(), "optimal/interleaved");
    }

    #[test]
    fn sync_start_for_synchronized_tree_is_the_deadline() {
        let v = Variant::tree_checked_sync(TreeKind::BINOMIAL);
        let logp = LogP::PAPER;
        let tree = TreeKind::BINOMIAL.build(64, &logp).unwrap();
        assert_eq!(
            v.sync_start(64, &logp),
            Some(tree.dissemination_deadline(&logp))
        );
    }

    #[test]
    fn sync_start_absent_for_overlapped_and_ack() {
        let logp = LogP::PAPER;
        assert_eq!(
            Variant::tree_opportunistic(TreeKind::BINOMIAL, 4).sync_start(64, &logp),
            None
        );
        assert_eq!(
            Variant::ack_tree(TreeKind::BINOMIAL).sync_start(64, &logp),
            None
        );
    }

    #[test]
    fn sync_start_for_gossip_is_the_gossip_time() {
        let v = Variant::gossip(30, CorrectionKind::Checked);
        assert_eq!(v.sync_start(64, &LogP::PAPER), Some(Time::new(30)));
    }

    #[test]
    fn factory_dispatch_builds() {
        let ctx = BuildCtx {
            p: 16,
            logp: LogP::PAPER,
            seed: 0,
        };
        for v in [
            Variant::tree_checked_sync(TreeKind::LAME2),
            Variant::tree_opportunistic(TreeKind::FOUR_ARY, 2),
            Variant::ack_tree(TreeKind::OPTIMAL),
            Variant::gossip(10, CorrectionKind::Checked),
        ] {
            assert_eq!(v.build(&ctx).unwrap().len(), 16, "{}", v.label());
        }
    }
}
