//! Figure 8: average quiescence latency vs fault rate.
//!
//! Aggregates the [`crate::resilience`] grid. Expected shape (§4.3):
//! tree latencies degrade ≈12–14% from 0.01% to 4% faults while gossip
//! degrades only ≈4%; binomial shows the largest latency *variance*
//! growth because its failures orphan more descendants.

use ct_analysis::Summary;

use crate::csv::{fmt_f64, CsvTable};
use crate::resilience::ResilienceCell;

/// One point: a variant at a fault rate.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Variant label.
    pub series: String,
    /// Fault rate (fraction).
    pub rate: f64,
    /// Quiescence latency distribution.
    pub quiescence: Summary,
}

/// Aggregate grid cells into figure rows.
pub fn from_cells(cells: &[ResilienceCell]) -> Vec<Fig8Row> {
    cells
        .iter()
        .map(|cell| Fig8Row {
            series: cell.label.clone(),
            rate: cell.rate,
            quiescence: Summary::of_u64(cell.records.iter().map(|r| r.quiescence)),
        })
        .collect()
}

/// Render as CSV.
pub fn to_csv(rows: &[Fig8Row]) -> CsvTable {
    let mut t = CsvTable::new(["series", "fault_rate", "mean", "p05", "p95", "std_dev"]);
    for r in rows {
        t.row([
            r.series.clone(),
            format!("{}", r.rate),
            fmt_f64(r.quiescence.mean),
            fmt_f64(r.quiescence.p05),
            fmt_f64(r.quiescence.p95),
            fmt_f64(r.quiescence.std_dev),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{run_grid, ResilienceConfig};
    use ct_logp::LogP;

    fn cells() -> Vec<ResilienceCell> {
        run_grid(&ResilienceConfig {
            p: 512,
            logp: LogP::PAPER,
            rates: vec![0.001, 0.04],
            reps: 8,
            seed0: 7,
            threads: crate::campaign::default_threads(),
            gossip_time: 26,
            include_gossip: true,
        })
        .unwrap()
    }

    #[test]
    fn tree_latency_degrades_with_fault_rate() {
        let rows = from_cells(&cells());
        let mean = |series: &str, rate: f64| {
            rows.iter()
                .find(|r| r.series == series && (r.rate - rate).abs() < 1e-12)
                .unwrap()
                .quiescence
                .mean
        };
        for series in [
            "binomial/interleaved",
            "lame2/interleaved",
            "optimal/interleaved",
        ] {
            assert!(
                mean(series, 0.04) > mean(series, 0.001),
                "{series} must slow down under more faults"
            );
        }
    }

    #[test]
    fn csv_includes_gossip_series() {
        let rows = from_cells(&cells());
        assert!(rows.iter().any(|r| r.series == "gossip"));
        assert_eq!(to_csv(&rows).len(), rows.len());
    }
}
