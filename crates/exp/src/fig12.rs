//! Figure 12: cluster latency of Corrected-Tree variants.
//!
//! The paper's second cluster experiment sweeps its own implementation:
//! binomial trees with `d ∈ {0, 1, 2}` correction messages, a Lamé tree
//! (`k = 4`, `d = 0`), and binomial `d = 2` with 72 emulated process
//! failures. Expected shape: "a single correction message introduced
//! slight performance overhead and the second one added even more, but
//! granted fault tolerance in return"; Lamé shows "almost no
//! performance improvement" over binomial; and emulated faults cause
//! "no change in the latency" for `d = 2`.
//!
//! The fault count scales with the cluster: the paper killed 72 of
//! 36864 ranks (≈0.2%); we kill `max(1, p/512)` ranks by default.

use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;
use ct_runtime::{harness, BenchConfig, BenchResult, ClusterError};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::csv::{fmt_f64, CsvTable};

/// Configuration for the Figure 12 sweep.
#[derive(Clone, Debug)]
pub struct Fig12Config {
    /// Rank counts to sweep.
    pub process_counts: Vec<u32>,
    /// Warmup iterations per point.
    pub warmup: u32,
    /// Measured iterations per point.
    pub iterations: u32,
    /// Base seed (drives the random fault placement).
    pub seed: u64,
}

impl Fig12Config {
    /// Laptop-scale defaults. The top counts were capped at 64 while
    /// the cluster spawned one OS thread per rank; the M:N scheduler
    /// makes 128/256 routine on a development machine.
    pub fn quick() -> Fig12Config {
        Fig12Config {
            process_counts: vec![8, 16, 32, 64, 128, 256],
            warmup: 3,
            iterations: 10,
            seed: 1,
        }
    }
}

/// One point of one series.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Series name.
    pub series: String,
    /// Rank count.
    pub p: u32,
    /// Benchmark statistics.
    pub result: BenchResult,
}

fn corrected(d: u32) -> BroadcastSpec {
    if d == 0 {
        BroadcastSpec::plain_tree(TreeKind::BINOMIAL)
    } else {
        BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: d },
        )
    }
}

/// Random non-root ranks to kill for the faulty series.
pub fn fault_ranks(p: u32, seed: u64) -> Vec<u32> {
    let n = (p / 512).max(1).min(p - 1);
    let mut rng = StdRng::seed_from_u64(seed);
    sample(&mut rng, (p - 1) as usize, n as usize)
        .into_iter()
        .map(|i| i as u32 + 1)
        .collect()
}

/// Run the sweep.
pub fn run(cfg: &Fig12Config) -> Result<Vec<Fig12Row>, ClusterError> {
    let logp = LogP::PAPER;
    let mut rows = Vec::new();
    for &p in &cfg.process_counts {
        let bench = BenchConfig::new(p).with_iterations(cfg.warmup, cfg.iterations);
        for d in [0u32, 1, 2] {
            rows.push(Fig12Row {
                series: format!("binomial (d={d})"),
                p,
                result: harness::run_bench(&corrected(d), logp, &bench)?,
            });
        }
        let lame4 = BroadcastSpec::plain_tree(TreeKind::Lame {
            k: 4,
            order: Ordering::Interleaved,
        });
        rows.push(Fig12Row {
            series: "lame4 (d=0)".into(),
            p,
            result: harness::run_bench(&lame4, logp, &bench)?,
        });
        // Binomial d=2 with emulated failures (must stay fault-tolerant:
        // with d=2 only isolated failures are guaranteed coverable, so
        // this mirrors the paper's sparse random failures).
        let faulty_bench = BenchConfig::new(p)
            .with_iterations(cfg.warmup, cfg.iterations)
            .with_dead_ranks(&fault_ranks(p, cfg.seed));
        rows.push(Fig12Row {
            series: "binomial (d=2, with faults)".into(),
            p,
            result: harness::run_bench(&corrected(2), logp, &faulty_bench)?,
        });
    }
    Ok(rows)
}

/// Render as CSV.
pub fn to_csv(rows: &[Fig12Row]) -> CsvTable {
    let mut t = CsvTable::new([
        "series",
        "p",
        "median_us",
        "p25_us",
        "p75_us",
        "incomplete",
        "mean_messages",
    ]);
    for r in rows {
        t.row([
            r.series.clone(),
            r.p.to_string(),
            fmt_f64(r.result.median_us),
            fmt_f64(r.result.p25_us),
            fmt_f64(r.result.p75_us),
            r.result.incomplete.to_string(),
            fmt_f64(r.result.mean_messages),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_ranks_scale_and_exclude_root() {
        let ranks = fault_ranks(1024, 7);
        assert_eq!(ranks.len(), 2);
        assert!(ranks.iter().all(|&r| (1..1024).contains(&r)));
        let small = fault_ranks(8, 7);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn sweep_produces_all_series_and_completes() {
        let cfg = Fig12Config {
            process_counts: vec![16],
            warmup: 1,
            iterations: 4,
            seed: 3,
        };
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.result.median_us > 0.0, "{}", r.series);
            // All series complete: the faulty one uses d=2 against a
            // single isolated failure.
            assert_eq!(r.result.incomplete, 0, "{}", r.series);
        }
    }
}
