//! The `P = 2²⁰` scaling study (ROADMAP item 3).
//!
//! The paper validates its §4.2 closed forms by simulation at
//! `P = 2¹⁶`; the analytical bounds matter most exactly where
//! simulation gets expensive. This module sweeps process counts up to
//! `P = 2²⁰`, measuring latency and message counts per correction
//! variant and *asserting* the synchronized-checked-correction cells
//! against the closed forms:
//!
//! * fault-free quiescence equals Lemma 2 (discrete-model form,
//!   [`lff_scc_discrete`]) exactly,
//! * fault-free total messages equal `(P-1) + M_SCC·P` (tree edges plus
//!   Corollary 1's per-process correction messages,
//!   [`m_scc_discrete`]),
//! * faulty correction time lands inside the Lemma 3 gap bounds
//!   ([`lscc_bounds`]) for the observed `g_max`.
//!
//! Overlapped opportunistic cells have no closed form; they contribute
//! the latency/message series (and their uncolored counts) without
//! lemma assertions. Fault plans at scale are drawn by the chunked
//! parallel generator ([`crate::FaultSpec::ChunkedCount`]) so plan
//! construction never dominates a repetition.
//!
//! Consumed by `ct scale` and the `fig_scale` binary, which render the
//! report as a table/CSV and distill it into the tracked
//! `results/BENCH_sim_scale.json` snapshot (ns/event per `P` plus peak
//! RSS, lower is better).

use std::time::Instant;

use ct_analysis::{lff_scc, lff_scc_discrete, lscc_bounds, m_scc_discrete};
use ct_analyze::BenchSnapshot;
use ct_core::protocol::ProtocolFactory;
use ct_core::tree::TreeKind;
use ct_logp::LogP;

use crate::campaign::{default_threads, Campaign, CampaignError, FaultSpec, RunRecord};
use crate::csv::CsvTable;
use crate::variants::Variant;

/// Sweep configuration. Process counts are `2^min_exp, 2^(min_exp +
/// step_exp), …, 2^max_exp`; each `P` runs a fault-free and a
/// chunked-fault cell per correction variant.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Smallest process-count exponent (`P = 2^min_exp`).
    pub min_exp: u32,
    /// Largest process-count exponent.
    pub max_exp: u32,
    /// Exponent stride between sweep points.
    pub step_exp: u32,
    /// Repetitions per cell.
    pub reps: u32,
    /// Fault fraction of the faulty cells (`max(1, ⌊rate·P⌋)` failures,
    /// drawn via [`FaultSpec::ChunkedCount`]).
    pub rate: f64,
    /// Base seed (repetition `i` of every cell uses `seed0 + i`).
    pub seed0: u64,
    /// Machine model.
    pub logp: LogP,
    /// Tree shape under test.
    pub tree: TreeKind,
    /// Worker threads for the repetitions of one cell (results are
    /// thread-count independent).
    pub threads: usize,
}

impl ScaleConfig {
    /// The full study: `P ∈ {2¹², 2¹⁴, 2¹⁶, 2¹⁸, 2²⁰}`, two
    /// repetitions per cell.
    pub fn full() -> ScaleConfig {
        ScaleConfig {
            min_exp: 12,
            max_exp: 20,
            step_exp: 2,
            reps: 2,
            rate: 0.01,
            seed0: 1,
            logp: LogP::PAPER,
            tree: TreeKind::BINOMIAL,
            threads: default_threads(),
        }
    }

    /// CI-friendly run: capped at `P = 2¹⁶`, same assertions.
    pub fn quick() -> ScaleConfig {
        ScaleConfig {
            max_exp: 16,
            ..ScaleConfig::full()
        }
    }

    /// The swept process counts, ascending (always includes
    /// `2^max_exp`).
    pub fn process_counts(&self) -> Vec<u32> {
        assert!(self.min_exp <= self.max_exp && self.max_exp < 31);
        let step = self.step_exp.max(1);
        let mut ps: Vec<u32> = (self.min_exp..=self.max_exp)
            .step_by(step as usize)
            .map(|e| 1u32 << e)
            .collect();
        if *ps.last().expect("non-empty sweep") != 1u32 << self.max_exp {
            ps.push(1u32 << self.max_exp);
        }
        ps
    }

    /// Failures per repetition of a faulty cell at process count `p`.
    pub fn faults_at(&self, p: u32) -> u32 {
        (((p as f64) * self.rate) as u32).clamp(1, p - 1)
    }
}

/// One `(P, variant, fault regime)` cell: its records plus the wall
/// clock and event total of the timed pass.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Process count.
    pub p: u32,
    /// Variant label (as in run manifests).
    pub variant: String,
    /// Does synchronized checked correction's analysis apply?
    pub checked_sync: bool,
    /// Failures per repetition (0 for the fault-free cell).
    pub faults: u32,
    /// Per-repetition measurements.
    pub records: Vec<RunRecord>,
    /// Wall-clock nanoseconds over all repetitions of the cell.
    pub wall_ns: u64,
    /// Simulator events processed over all repetitions.
    pub events: u64,
}

impl ScaleCell {
    /// Wall nanoseconds per simulator event (the throughput metric the
    /// tracked snapshot carries per `P`).
    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events.max(1) as f64
    }

    /// Mean quiescence latency in steps.
    pub fn quiescence_mean(&self) -> f64 {
        let n = self.records.len().max(1) as f64;
        self.records
            .iter()
            .map(|r| r.quiescence as f64)
            .sum::<f64>()
            / n
    }

    /// Mean correction time (synchronized variants only).
    pub fn lscc_mean(&self) -> Option<f64> {
        let times: Vec<u64> = self.records.iter().filter_map(|r| r.lscc).collect();
        if times.is_empty() {
            return None;
        }
        Some(times.iter().sum::<u64>() as f64 / times.len() as f64)
    }

    /// Mean messages per process.
    pub fn messages_per_process_mean(&self) -> f64 {
        let n = self.records.len().max(1) as f64;
        self.records
            .iter()
            .map(|r| r.messages_per_process)
            .sum::<f64>()
            / n
    }

    /// Largest ring gap over all repetitions.
    pub fn g_max(&self) -> u32 {
        self.records.iter().map(|r| r.g_max).max().unwrap_or(0)
    }

    /// Mean live-but-uncolored count.
    pub fn uncolored_mean(&self) -> f64 {
        let n = self.records.len().max(1) as f64;
        self.records
            .iter()
            .map(|r| f64::from(r.uncolored))
            .sum::<f64>()
            / n
    }
}

/// The whole sweep plus every closed-form violation found. An empty
/// [`ScaleReport::violations`] is the study's pass verdict.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// All cells, in sweep order (ascending `P`, fault-free before
    /// faulty, checked-sync before opportunistic).
    pub cells: Vec<ScaleCell>,
    /// Human-readable descriptions of every repetition that escaped its
    /// variant's closed forms.
    pub violations: Vec<String>,
}

/// Run the sweep. Each cell is a seeded [`Campaign`]; repetitions fan
/// out over `cfg.threads` with thread-count-independent results, and
/// checked-sync cells are asserted against Lemmas 2–3 and Corollary 1
/// as they complete.
pub fn run_scale(cfg: &ScaleConfig) -> Result<ScaleReport, CampaignError> {
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    for p in cfg.process_counts() {
        let faults = cfg.faults_at(p);
        let variants: [(Variant, bool); 2] = [
            (Variant::tree_checked_sync(cfg.tree), true),
            (Variant::tree_opportunistic(cfg.tree, 4), false),
        ];
        for (variant, checked_sync) in variants {
            for spec in [FaultSpec::None, FaultSpec::ChunkedCount(faults)] {
                let cell_faults = match spec {
                    FaultSpec::None => 0,
                    _ => faults,
                };
                let campaign = Campaign::new(variant, p, cfg.logp)
                    .with_faults(spec)
                    .with_reps(cfg.reps)
                    .with_seed(cfg.seed0);
                let start = Instant::now();
                let records = campaign.run_parallel(cfg.threads)?;
                let wall_ns = start.elapsed().as_nanos() as u64;
                let cell = ScaleCell {
                    p,
                    variant: campaign.variant.label(),
                    checked_sync,
                    faults: cell_faults,
                    events: records.iter().map(|r| r.events).sum(),
                    records,
                    wall_ns,
                };
                check_cell(&cell, &cfg.logp, &mut violations);
                cells.push(cell);
            }
        }
    }
    Ok(ScaleReport { cells, violations })
}

/// Assert one cell against its variant's closed forms, appending a
/// description per escaping repetition.
///
/// Checked-sync cells carry the §4.2 analysis; the Lemma 3 bounds are
/// anchored at the discrete-model fault-free latency, which exceeds
/// Lemma 2's `4o + L + ⌊L/o⌋·o` by `(⌈L/o⌉ - ⌊L/o⌋)·o` (zero for every
/// configuration the paper evaluates). Opportunistic cells have no
/// closed form and only report.
fn check_cell(cell: &ScaleCell, logp: &LogP, violations: &mut Vec<String>) {
    if !cell.checked_sync {
        return;
    }
    let tag = |rec: &RunRecord| {
        format!(
            "p={} variant={} faults={} seed={}",
            cell.p, cell.variant, cell.faults, rec.seed
        )
    };
    // The discrete receive-port model's Lemma 2 / Corollary 1 values.
    let lff = lff_scc_discrete(logp).steps();
    let m = m_scc_discrete(logp);
    let discrete_shift = lff - lff_scc(logp).steps();
    for rec in &cell.records {
        if !rec.all_live_colored {
            violations.push(format!(
                "{}: {} live processes left uncolored under checked correction",
                tag(rec),
                rec.uncolored
            ));
        }
        let Some(lscc) = rec.lscc else {
            violations.push(format!("{}: synchronized cell without L_SCC", tag(rec)));
            continue;
        };
        if cell.faults == 0 {
            if rec.g_max != 0 {
                violations.push(format!("{}: fault-free g_max = {}", tag(rec), rec.g_max));
            }
            if lscc != lff {
                violations.push(format!(
                    "{}: fault-free L_SCC = {lscc}, Lemma 2 says exactly {lff}",
                    tag(rec)
                ));
            }
            let expected = u64::from(cell.p - 1) + m * u64::from(cell.p);
            if rec.messages != expected {
                violations.push(format!(
                    "{}: fault-free messages = {}, (P-1) + M_SCC·P = {expected}",
                    tag(rec),
                    rec.messages
                ));
            }
        } else {
            let (lo, hi) = lscc_bounds(rec.g_max, logp);
            let (lo, hi) = (lo.steps() + discrete_shift, hi.steps() + discrete_shift);
            if lscc < lo || lscc > hi {
                violations.push(format!(
                    "{}: L_SCC = {lscc} outside Lemma 3 bounds [{lo}, {hi}] at g_max = {}",
                    tag(rec),
                    rec.g_max
                ));
            }
        }
    }
}

impl ScaleReport {
    /// The cells at the largest swept `P`.
    fn max_p(&self) -> u32 {
        self.cells.iter().map(|c| c.p).max().unwrap_or(0)
    }

    /// Aggregate ns/event over all cells at process count `p`.
    pub fn ns_per_event_at(&self, p: u32) -> f64 {
        let (wall, events) = self
            .cells
            .iter()
            .filter(|c| c.p == p)
            .fold((0u64, 0u64), |(w, e), c| (w + c.wall_ns, e + c.events));
        wall as f64 / events.max(1) as f64
    }

    /// Distill into the tracked `BENCH_sim_scale` snapshot: one
    /// ns/event metric per swept `P`, the process's peak RSS (probed
    /// now — after the largest-`P` cells ran), and per-cell latency and
    /// message series as provenance.
    pub fn bench_snapshot(&self, cfg: &ScaleConfig) -> BenchSnapshot {
        let mut snap = BenchSnapshot::new("sim_scale")
            .with_host_provenance()
            .with_provenance("tree", &cfg.tree.label())
            .with_provenance("logp", &cfg.logp.to_string())
            .with_provenance("reps", &cfg.reps.to_string())
            .with_provenance("seed0", &cfg.seed0.to_string())
            .with_provenance("rate", &format!("{}", cfg.rate))
            .with_provenance("max_p", &self.max_p().to_string())
            .with_provenance("violations", &self.violations.len().to_string())
            .with_metric("peak_rss_kb", ct_obs::manifest::peak_rss_kb() as f64);
        let mut seen = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.p) {
                seen.push(cell.p);
                snap = snap.with_metric(
                    &format!("ns_per_event_p{}", cell.p),
                    self.ns_per_event_at(cell.p),
                );
            }
            let key = format!(
                "p{}_{}_{}",
                cell.p,
                if cell.checked_sync { "scc" } else { "opp4" },
                if cell.faults == 0 { "ff" } else { "faulty" }
            );
            snap = snap
                .with_provenance(
                    &format!("quiescence_mean_{key}"),
                    &format!("{:.1}", cell.quiescence_mean()),
                )
                .with_provenance(
                    &format!("messages_per_process_{key}"),
                    &format!("{:.3}", cell.messages_per_process_mean()),
                );
            if cell.faults > 0 {
                snap = snap
                    .with_provenance(&format!("g_max_{key}"), &cell.g_max().to_string())
                    .with_provenance(
                        &format!("uncolored_mean_{key}"),
                        &format!("{:.2}", cell.uncolored_mean()),
                    );
            }
        }
        snap
    }

    /// Render the sweep as CSV (the `fig_scale` series).
    pub fn to_csv(&self) -> CsvTable {
        let mut t = CsvTable::new([
            "p",
            "variant",
            "faults",
            "reps",
            "quiescence_mean",
            "lscc_mean",
            "g_max",
            "messages_per_process",
            "uncolored_mean",
            "ns_per_event",
        ]);
        for c in &self.cells {
            t.row([
                c.p.to_string(),
                c.variant.clone(),
                c.faults.to_string(),
                c.records.len().to_string(),
                format!("{:.1}", c.quiescence_mean()),
                c.lscc_mean()
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".to_owned()),
                c.g_max().to_string(),
                format!("{:.3}", c.messages_per_process_mean()),
                format!("{:.2}", c.uncolored_mean()),
                format!("{:.2}", c.ns_per_event()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            min_exp: 6,
            max_exp: 8,
            step_exp: 1,
            reps: 2,
            rate: 0.02,
            seed0: 11,
            logp: LogP::PAPER,
            tree: TreeKind::BINOMIAL,
            threads: 2,
        }
    }

    #[test]
    fn sweep_points_always_include_the_cap() {
        assert_eq!(
            ScaleConfig::full().process_counts(),
            vec![1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
        );
        let odd = ScaleConfig {
            min_exp: 6,
            max_exp: 9,
            step_exp: 2,
            ..ScaleConfig::full()
        };
        assert_eq!(odd.process_counts(), vec![64, 256, 512]);
        assert_eq!(ScaleConfig::quick().max_exp, 16);
    }

    #[test]
    fn tiny_sweep_respects_every_closed_form() {
        let report = run_scale(&tiny()).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // 3 process counts × 2 variants × {fault-free, faulty}.
        assert_eq!(report.cells.len(), 12);
        for cell in &report.cells {
            assert_eq!(cell.records.len(), 2);
            assert!(cell.events > 0);
            assert!(cell.ns_per_event() > 0.0);
        }
        // Fault-free checked cells hit Lemma 2 / Corollary 1 exactly.
        let ff = report
            .cells
            .iter()
            .find(|c| c.checked_sync && c.faults == 0 && c.p == 256)
            .unwrap();
        assert_eq!(ff.lscc_mean(), Some(8.0));
        let expected = 255.0 + 5.0 * 256.0;
        for r in &ff.records {
            assert_eq!(r.messages as f64, expected);
        }
    }

    #[test]
    fn violations_are_reported_not_panicked() {
        // Forge a record that breaks Lemma 2 and check it is described.
        let cfg = tiny();
        let mut report = run_scale(&ScaleConfig {
            max_exp: 6,
            reps: 1,
            ..cfg
        })
        .unwrap();
        assert!(report.violations.is_empty());
        let cell = report
            .cells
            .iter_mut()
            .find(|c| c.checked_sync && c.faults == 0)
            .unwrap();
        cell.records[0].lscc = Some(999);
        let mut violations = Vec::new();
        check_cell(cell, &LogP::PAPER, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("Lemma 2"), "{}", violations[0]);
    }

    #[test]
    fn snapshot_carries_per_p_metrics_and_peak_rss() {
        let cfg = ScaleConfig {
            max_exp: 7,
            ..tiny()
        };
        let report = run_scale(&cfg).unwrap();
        let snap = report.bench_snapshot(&cfg);
        assert_eq!(snap.name, "sim_scale");
        assert!(snap.metrics.contains_key("ns_per_event_p64"));
        assert!(snap.metrics.contains_key("ns_per_event_p128"));
        assert!(snap.metrics.contains_key("peak_rss_kb"));
        assert_eq!(snap.provenance["violations"], "0");
        assert_eq!(snap.provenance["max_p"], "128");
        assert!(snap.provenance.contains_key("quiescence_mean_p64_scc_ff"));
        assert!(snap.provenance.contains_key("g_max_p128_opp4_faulty"));
        // The CSV mirrors the cells one row each.
        let csv = report.to_csv().to_csv();
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
    }
}
