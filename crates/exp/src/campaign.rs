//! Seeded Monte-Carlo campaigns.
//!
//! A [`Campaign`] runs one protocol variant `reps` times with seeds
//! `seed0, seed0+1, …` — fault placement and gossip randomness both
//! derive from the per-run seed, so any row of any figure can be
//! regenerated exactly ("we keep the random generator seed of every
//! experiment", §4). Repetitions are embarrassingly parallel and can be
//! spread over OS threads.

use ct_core::protocol::ColoredVia;
use ct_core::tree::ring;
use ct_logp::{LogP, Rank};
use ct_sim::{FaultPlan, SimError, Simulation};

use crate::variants::Variant;

/// How failures are drawn for each repetition.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// No failures.
    None,
    /// Exactly `n` uniformly random failures per run (Figure 1b).
    Count(u32),
    /// A fraction of all processes fails per run (Figures 8–10, Table 1).
    Rate(f64),
    /// A fixed set of ranks fails in every run.
    Ranks(Vec<Rank>),
}

impl FaultSpec {
    fn plan(&self, p: u32, seed: u64) -> Result<FaultPlan, String> {
        match self {
            FaultSpec::None => Ok(FaultPlan::none(p)),
            FaultSpec::Count(n) => {
                FaultPlan::random_count(p, *n, seed).map_err(|e| e.to_string())
            }
            FaultSpec::Rate(r) => FaultPlan::random_rate(p, *r, seed).map_err(|e| e.to_string()),
            FaultSpec::Ranks(ranks) => {
                FaultPlan::from_ranks(p, ranks).map_err(|e| e.to_string())
            }
        }
    }
}

/// One repetition's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Seed of this repetition.
    pub seed: u64,
    /// Number of failed processes.
    pub faults: u32,
    /// Quiescence latency in steps.
    pub quiescence: u64,
    /// Coloring latency in steps.
    pub coloring: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Messages per process (over all `P`).
    pub messages_per_process: f64,
    /// Did every live process get colored?
    pub all_live_colored: bool,
    /// Live processes left uncolored.
    pub uncolored: u32,
    /// Maximum ring gap after dissemination (dead processes count as
    /// uncolored).
    pub g_max: u32,
    /// Correction time `quiescence − sync_start`, for variants with
    /// synchronized correction.
    pub lscc: Option<u64>,
}

/// A configured experiment cell: one variant, one fault regime.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Protocol under test.
    pub variant: Variant,
    /// Process count.
    pub p: u32,
    /// Machine model.
    pub logp: LogP,
    /// Fault regime.
    pub faults: FaultSpec,
    /// Repetitions.
    pub reps: u32,
    /// First seed; repetition `i` uses `seed0 + i`.
    pub seed0: u64,
}

impl Campaign {
    /// Fault-free single-variant campaign.
    pub fn new(variant: Variant, p: u32, logp: LogP) -> Campaign {
        Campaign { variant, p, logp, faults: FaultSpec::None, reps: 1, seed0: 1 }
    }

    /// Set the fault regime.
    pub fn with_faults(mut self, faults: FaultSpec) -> Campaign {
        self.faults = faults;
        self
    }

    /// Set repetitions.
    pub fn with_reps(mut self, reps: u32) -> Campaign {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed0: u64) -> Campaign {
        self.seed0 = seed0;
        self
    }

    /// Execute one repetition.
    pub fn run_one(&self, rep: u32) -> Result<RunRecord, CampaignError> {
        let seed = self.seed0 + rep as u64;
        let plan = self
            .faults
            .plan(self.p, seed)
            .map_err(CampaignError::Faults)?;
        let faults = plan.count();
        let sim = Simulation::builder(self.p, self.logp)
            .faults(plan)
            .seed(seed)
            .build();
        let out = sim.run(&self.variant).map_err(CampaignError::Sim)?;
        let diss_mask: Vec<bool> = out
            .colored_via
            .iter()
            .map(|v| matches!(v, Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)))
            .collect();
        let g_max = ring::max_gap(&diss_mask);
        let lscc = self
            .variant
            .sync_start(self.p, &self.logp)
            .map(|start| out.quiescence.since(start).steps());
        Ok(RunRecord {
            seed,
            faults,
            quiescence: out.quiescence.steps(),
            coloring: out.coloring_latency.steps(),
            messages: out.messages.total(),
            messages_per_process: out.messages_per_process(),
            all_live_colored: out.all_live_colored(),
            uncolored: out.uncolored_live().len() as u32,
            g_max,
            lscc,
        })
    }

    /// Execute all repetitions sequentially.
    pub fn run(&self) -> Result<Vec<RunRecord>, CampaignError> {
        (0..self.reps).map(|i| self.run_one(i)).collect()
    }

    /// Execute all repetitions across `threads` OS threads. Results are
    /// identical to [`Campaign::run`] (each repetition is seeded
    /// independently); only wall-clock time changes.
    pub fn run_parallel(&self, threads: usize) -> Result<Vec<RunRecord>, CampaignError> {
        let threads = threads.max(1).min((self.reps as usize).max(1));
        if threads <= 1 {
            return self.run();
        }
        let mut slots: Vec<Option<Result<RunRecord, CampaignError>>> =
            (0..self.reps).map(|_| None).collect();
        let next = std::sync::atomic::AtomicU32::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= self.reps {
                        break;
                    }
                    let record = self.run_one(i);
                    let mut guard = slots_mutex.lock().expect("no poisoning");
                    guard[i as usize] = Some(record);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every repetition filled"))
            .collect()
    }
}

/// Campaign-level errors.
#[derive(Debug)]
pub enum CampaignError {
    /// Fault plan construction failed.
    Faults(String),
    /// Simulation failed.
    Sim(SimError),
}

impl core::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::Faults(s) => write!(f, "fault plan: {s}"),
            CampaignError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::tree::TreeKind;

    #[test]
    fn fault_free_checked_campaign_matches_lemma2() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            256,
            LogP::PAPER,
        )
        .with_reps(3);
        let records = c.run().unwrap();
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(r.all_live_colored);
            assert_eq!(r.g_max, 0);
            assert_eq!(r.lscc, Some(8));
            assert_eq!(r.faults, 0);
        }
    }

    #[test]
    fn fault_count_spec_is_exact_per_run() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            512,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Count(5))
        .with_reps(4);
        for r in c.run().unwrap() {
            assert_eq!(r.faults, 5);
            assert!(r.all_live_colored, "checked correction heals everything");
            assert!(r.g_max >= 1);
            assert!(r.lscc.unwrap() >= 8);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let c = Campaign::new(
            Variant::tree_opportunistic(TreeKind::LAME2, 4),
            256,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(0.01))
        .with_reps(8);
        let seq = c.run().unwrap();
        let par = c.run_parallel(4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn fixed_rank_faults_apply_every_run() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            64,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Ranks(vec![1, 2]))
        .with_reps(2);
        for r in c.run().unwrap() {
            assert_eq!(r.faults, 2);
        }
    }
}
