//! Seeded Monte-Carlo campaigns.
//!
//! A [`Campaign`] runs one protocol variant `reps` times with seeds
//! `seed0, seed0+1, …` — fault placement and gossip randomness both
//! derive from the per-run seed, so any row of any figure can be
//! regenerated exactly ("we keep the random generator seed of every
//! experiment", §4). Repetitions are embarrassingly parallel and can be
//! spread over OS threads.

use std::sync::Arc;

use ct_core::protocol::ColoredVia;
use ct_core::tree::ring;
use ct_logp::{LogP, Rank, Time};
use ct_obs::event::phases;
use ct_obs::json::JsonObject;
use ct_obs::telemetry::TelemetryHub;
use ct_obs::{
    Event, EventKind, EventSink, MetricsRegistry, MetricsSink, MonitorConfig, MonitorReport,
    MonitorSink, NullSink,
};
use ct_sim::{FaultPlan, RunArena, SimError, Simulation};

use crate::variants::Variant;

/// Default worker-thread count for parallel campaigns: the `CT_THREADS`
/// environment variable when set to a positive integer (the CI and
/// reproducibility override), otherwise the machine's available
/// parallelism. One knob for the whole stack: this is the same function
/// that sizes the cluster runtime's M:N worker pool.
pub fn default_threads() -> usize {
    ct_runtime::default_threads()
}

/// How failures are drawn for each repetition.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// No failures.
    None,
    /// Exactly `n` uniformly random failures per run (Figure 1b).
    Count(u32),
    /// Exactly `n` failures per run, drawn by the chunked parallel
    /// generator ([`FaultPlan::random_count_chunked`]). Same exact-count
    /// guarantee as [`FaultSpec::Count`] under a different (stratified)
    /// distribution; plan construction scales to `P = 2²⁰` without
    /// dominating a repetition. The draw depends only on `(p, n, seed)`,
    /// never on thread count.
    ChunkedCount(u32),
    /// A fraction of all processes fails per run (Figures 8–10, Table 1).
    Rate(f64),
    /// A fixed set of ranks fails in every run.
    Ranks(Vec<Rank>),
}

impl FaultSpec {
    fn plan(&self, p: u32, seed: u64) -> Result<FaultPlan, String> {
        match self {
            FaultSpec::None => Ok(FaultPlan::none(p)),
            FaultSpec::Count(n) => FaultPlan::random_count(p, *n, seed).map_err(|e| e.to_string()),
            FaultSpec::ChunkedCount(n) => {
                FaultPlan::random_count_chunked(p, *n, seed).map_err(|e| e.to_string())
            }
            FaultSpec::Rate(r) => FaultPlan::random_rate(p, *r, seed).map_err(|e| e.to_string()),
            FaultSpec::Ranks(ranks) => FaultPlan::from_ranks(p, ranks).map_err(|e| e.to_string()),
        }
    }
}

/// One repetition's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Seed of this repetition.
    pub seed: u64,
    /// Number of failed processes.
    pub faults: u32,
    /// Quiescence latency in steps.
    pub quiescence: u64,
    /// Coloring latency in steps.
    pub coloring: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Messages per process (over all `P`).
    pub messages_per_process: f64,
    /// Did every live process get colored?
    pub all_live_colored: bool,
    /// Live processes left uncolored.
    pub uncolored: u32,
    /// Maximum ring gap after dissemination (dead processes count as
    /// uncolored).
    pub g_max: u32,
    /// Correction time `quiescence − sync_start`, for variants with
    /// synchronized correction.
    pub lscc: Option<u64>,
    /// Simulator events processed by this repetition (the denominator
    /// of the tracked events/sec throughput metric).
    pub events: u64,
}

impl RunRecord {
    /// Render as one JSON object (fixed field order, one line — ready
    /// for JSONL export).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("seed", self.seed);
        obj.field_u64("faults", u64::from(self.faults));
        obj.field_u64("quiescence", self.quiescence);
        obj.field_u64("coloring", self.coloring);
        obj.field_u64("messages", self.messages);
        obj.field_f64("messages_per_process", self.messages_per_process);
        obj.field_bool("all_live_colored", self.all_live_colored);
        obj.field_u64("uncolored", u64::from(self.uncolored));
        obj.field_u64("g_max", u64::from(self.g_max));
        match self.lscc {
            Some(v) => obj.field_u64("lscc", v),
            None => obj.field_null("lscc"),
        };
        obj.field_u64("events", self.events);
        obj.finish()
    }
}

/// Render a batch of records as JSONL: one record per line, trailing
/// newline, empty string for no records.
pub fn records_to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// A configured experiment cell: one variant, one fault regime.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Protocol under test.
    pub variant: Variant,
    /// Process count.
    pub p: u32,
    /// Machine model.
    pub logp: LogP,
    /// Fault regime.
    pub faults: FaultSpec,
    /// Repetitions.
    pub reps: u32,
    /// First seed; repetition `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Per-repetition telemetry hub, attached to every simulation this
    /// campaign builds (default off — results are identical either way).
    telemetry: Option<Arc<TelemetryHub>>,
}

impl Campaign {
    /// Fault-free single-variant campaign.
    pub fn new(variant: Variant, p: u32, logp: LogP) -> Campaign {
        Campaign {
            variant,
            p,
            logp,
            faults: FaultSpec::None,
            reps: 1,
            seed0: 1,
            telemetry: None,
        }
    }

    /// Set the fault regime.
    pub fn with_faults(mut self, faults: FaultSpec) -> Campaign {
        self.faults = faults;
        self
    }

    /// Set repetitions.
    pub fn with_reps(mut self, reps: u32) -> Campaign {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed0: u64) -> Campaign {
        self.seed0 = seed0;
        self
    }

    /// Record per-repetition counters (events, sends, quiescence,
    /// completion) into `hub`. Recording happens once per finished
    /// repetition — the hot path and every [`RunRecord`] are
    /// bit-identical with telemetry on or off.
    pub fn with_telemetry(mut self, hub: Arc<TelemetryHub>) -> Campaign {
        self.telemetry = Some(hub);
        self
    }

    /// The fault plan repetition `rep` runs under (derived from
    /// `seed0 + rep`, exactly as the run itself draws it). Exposed so
    /// the invariant monitor and the waste accounting can be configured
    /// with the per-repetition fault mask.
    pub fn fault_plan(&self, rep: u32) -> Result<FaultPlan, CampaignError> {
        self.faults
            .plan(self.p, self.seed0 + rep as u64)
            .map_err(CampaignError::Faults)
    }

    /// Execute one repetition.
    pub fn run_one(&self, rep: u32) -> Result<RunRecord, CampaignError> {
        self.run_one_observed(rep, &mut NullSink)
    }

    /// [`Campaign::run_one`] with arena-backed storage; reusing one
    /// arena across repetitions avoids rebuilding the engine per run.
    pub fn run_one_reusable(
        &self,
        rep: u32,
        arena: &mut RunArena,
    ) -> Result<RunRecord, CampaignError> {
        self.run_one_observed_reusable(rep, &mut NullSink, arena)
    }

    /// Execute one repetition, streaming its protocol events into
    /// `sink` (the engine wraps each run in a `broadcast` phase span).
    /// With a [`NullSink`] this is exactly [`Campaign::run_one`].
    pub fn run_one_observed(
        &self,
        rep: u32,
        sink: &mut dyn EventSink,
    ) -> Result<RunRecord, CampaignError> {
        self.run_one_observed_reusable(rep, sink, &mut RunArena::new())
    }

    /// [`Campaign::run_one_observed`] with arena-backed storage.
    pub fn run_one_observed_reusable(
        &self,
        rep: u32,
        sink: &mut dyn EventSink,
        arena: &mut RunArena,
    ) -> Result<RunRecord, CampaignError> {
        let seed = self.seed0 + rep as u64;
        let plan = self.fault_plan(rep)?;
        let faults = plan.count();
        let mut builder = Simulation::builder(self.p, self.logp)
            .faults(plan)
            .seed(seed);
        if let Some(hub) = &self.telemetry {
            builder = builder.telemetry(Arc::clone(hub));
        }
        let sim = builder.build();
        let out = sim
            .run_with_sink_reusable(&self.variant, sink, arena)
            .map_err(CampaignError::Sim)?;
        let diss_mask: Vec<bool> = out
            .colored_via
            .iter()
            .map(|v| matches!(v, Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)))
            .collect();
        let g_max = ring::max_gap(&diss_mask);
        let lscc = self
            .variant
            .sync_start(self.p, &self.logp)
            .map(|start| out.quiescence.since(start).steps());
        Ok(RunRecord {
            seed,
            faults,
            quiescence: out.quiescence.steps(),
            coloring: out.coloring_latency.steps(),
            messages: out.messages.total(),
            messages_per_process: out.messages_per_process(),
            all_live_colored: out.all_live_colored(),
            uncolored: out.uncolored_live().len() as u32,
            g_max,
            lscc,
            events: out.events,
        })
    }

    /// Execute all repetitions sequentially. One run arena serves all
    /// repetitions (results are bit-identical to per-run allocation).
    pub fn run(&self) -> Result<Vec<RunRecord>, CampaignError> {
        let mut arena = RunArena::new();
        (0..self.reps)
            .map(|i| self.run_one_reusable(i, &mut arena))
            .collect()
    }

    /// Execute all repetitions sequentially, calling `progress` after
    /// each completed repetition with `(rep_index, record)` — the hook
    /// behind structured campaign progress reporting.
    pub fn run_with_progress(
        &self,
        mut progress: impl FnMut(u32, &RunRecord),
    ) -> Result<Vec<RunRecord>, CampaignError> {
        let mut arena = RunArena::new();
        let mut records = Vec::with_capacity(self.reps as usize);
        for i in 0..self.reps {
            let record = self.run_one_reusable(i, &mut arena)?;
            progress(i, &record);
            records.push(record);
        }
        Ok(records)
    }

    /// Execute all repetitions sequentially, streaming every event into
    /// `sink`. The whole campaign is wrapped in a `campaign` phase span
    /// and repetition `i` in a `rep i` span. Phase-begin events carry
    /// logical time `0` — each repetition restarts the logical clock —
    /// and phase-end events the repetition's quiescence time.
    pub fn run_observed(&self, sink: &mut dyn EventSink) -> Result<Vec<RunRecord>, CampaignError> {
        let observing = sink.enabled();
        if observing {
            sink.emit(&Event::sim(
                Time::ZERO,
                EventKind::PhaseBegin {
                    name: phases::CAMPAIGN.to_owned(),
                },
            ));
        }
        let mut arena = RunArena::new();
        let mut records = Vec::with_capacity(self.reps as usize);
        for i in 0..self.reps {
            let name = format!("{} {i}", phases::REP);
            if observing {
                sink.emit(&Event::sim(
                    Time::ZERO,
                    EventKind::PhaseBegin { name: name.clone() },
                ));
            }
            let record = self.run_one_observed_reusable(i, sink, &mut arena)?;
            if observing {
                sink.emit(&Event::sim(
                    Time::new(record.quiescence),
                    EventKind::PhaseEnd { name },
                ));
            }
            records.push(record);
        }
        if observing {
            let end = records.iter().map(|r| r.quiescence).max().unwrap_or(0);
            sink.emit(&Event::sim(
                Time::new(end),
                EventKind::PhaseEnd {
                    name: phases::CAMPAIGN.to_owned(),
                },
            ));
        }
        Ok(records)
    }

    /// Execute all repetitions while folding every event into a
    /// [`MetricsRegistry`]: per-payload message counters, delivery and
    /// coloring counters and the coloring-time histogram, aggregated
    /// over the whole campaign.
    pub fn run_metered(&self) -> Result<(Vec<RunRecord>, MetricsRegistry), CampaignError> {
        let mut sink = MetricsSink::new();
        let records = self.run_observed(&mut sink)?;
        Ok((records, sink.registry))
    }

    /// Execute all repetitions under the streaming invariant monitor,
    /// one monitor per repetition configured with that repetition's
    /// exact fault mask (random fault regimes draw a different mask per
    /// seed). Returns the records alongside the merged
    /// [`MonitorReport`]; callers decide whether violations are fatal.
    pub fn run_checked(&self) -> Result<(Vec<RunRecord>, MonitorReport), CampaignError> {
        let mut arena = RunArena::new();
        let mut records = Vec::with_capacity(self.reps as usize);
        let mut report = MonitorReport::default();
        for i in 0..self.reps {
            let (record, rep_report) = self.run_one_checked(i, &mut arena)?;
            records.push(record);
            report.absorb(rep_report, i);
        }
        Ok((records, report))
    }

    /// One repetition under its own freshly configured monitor; returns
    /// the record and the finished per-repetition report.
    fn run_one_checked(
        &self,
        rep: u32,
        arena: &mut RunArena,
    ) -> Result<(RunRecord, MonitorReport), CampaignError> {
        let plan = self.fault_plan(rep)?;
        let cfg = MonitorConfig::new()
            .with_p(self.p)
            .with_logp(self.logp)
            .with_failed(plan.mask().to_vec());
        let mut monitor = MonitorSink::new(cfg);
        let record = self.run_one_observed_reusable(rep, &mut monitor, arena)?;
        Ok((record, monitor.finish()))
    }

    /// Execute all repetitions across `threads` OS threads. Results are
    /// identical to [`Campaign::run`] (each repetition is seeded
    /// independently); only wall-clock time changes.
    ///
    /// Each worker owns a run arena and claims repetition indices from a
    /// shared counter; results land in lock-free per-repetition cells,
    /// so output order is exactly the sequential order.
    pub fn run_parallel(&self, threads: usize) -> Result<Vec<RunRecord>, CampaignError> {
        let threads = self.clamp_threads(threads);
        if threads <= 1 {
            return self.run();
        }
        self.parallel_slots(threads, |rep, arena| self.run_one_reusable(rep, arena))
            .into_iter()
            .collect()
    }

    /// [`Campaign::run_metered`] across `threads` OS threads. Each
    /// repetition meters into its own sink; the per-repetition
    /// registries are merged in repetition order at join. Counter and
    /// histogram merges are additive, and the registry ignores the
    /// campaign/rep phase spans (the only events a sequential metered
    /// run sees beyond the repetitions themselves), so the merged
    /// registry equals the sequential one exactly.
    pub fn run_metered_parallel(
        &self,
        threads: usize,
    ) -> Result<(Vec<RunRecord>, MetricsRegistry), CampaignError> {
        let threads = self.clamp_threads(threads);
        if threads <= 1 {
            return self.run_metered();
        }
        let slots = self.parallel_slots(threads, |rep, arena| {
            let mut sink = MetricsSink::new();
            let record = self.run_one_observed_reusable(rep, &mut sink, arena)?;
            Ok((record, sink.registry))
        });
        let mut records = Vec::with_capacity(self.reps as usize);
        let mut registry = MetricsRegistry::new();
        for slot in slots {
            let (record, rep_registry) = slot?;
            records.push(record);
            registry.merge(&rep_registry);
        }
        Ok((records, registry))
    }

    /// [`Campaign::run_checked`] across `threads` OS threads. Each
    /// repetition runs under its own monitor exactly as in the
    /// sequential path; the finished per-repetition reports are absorbed
    /// in repetition order at join, so the merged [`MonitorReport`]
    /// (violation order included) equals the sequential one.
    pub fn run_checked_parallel(
        &self,
        threads: usize,
    ) -> Result<(Vec<RunRecord>, MonitorReport), CampaignError> {
        let threads = self.clamp_threads(threads);
        if threads <= 1 {
            return self.run_checked();
        }
        let slots = self.parallel_slots(threads, |rep, arena| self.run_one_checked(rep, arena));
        let mut records = Vec::with_capacity(self.reps as usize);
        let mut report = MonitorReport::default();
        for (i, slot) in slots.into_iter().enumerate() {
            let (record, rep_report) = slot?;
            records.push(record);
            report.absorb(rep_report, i as u32);
        }
        Ok((records, report))
    }

    fn clamp_threads(&self, threads: usize) -> usize {
        threads.max(1).min((self.reps as usize).max(1))
    }

    /// Fan repetitions out over `threads` workers. Workers claim
    /// repetition indices from a shared atomic counter and write each
    /// result into its repetition's own once-cell — no lock around the
    /// result vector — so the returned order is the sequential order
    /// regardless of scheduling. Each worker reuses one [`RunArena`]
    /// for all repetitions it claims.
    fn parallel_slots<T, F>(&self, threads: usize, body: F) -> Vec<Result<T, CampaignError>>
    where
        T: Send + Sync,
        F: Fn(u32, &mut RunArena) -> Result<T, CampaignError> + Sync,
    {
        let slots: Vec<std::sync::OnceLock<Result<T, CampaignError>>> =
            (0..self.reps).map(|_| std::sync::OnceLock::new()).collect();
        let next = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut arena = RunArena::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= self.reps {
                            break;
                        }
                        let result = body(i, &mut arena);
                        let fresh = slots[i as usize].set(result).is_ok();
                        debug_assert!(fresh, "repetition filled twice");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every repetition filled"))
            .collect()
    }
}

/// Campaign-level errors.
#[derive(Debug)]
pub enum CampaignError {
    /// Fault plan construction failed.
    Faults(String),
    /// Simulation failed.
    Sim(SimError),
}

impl core::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::Faults(s) => write!(f, "fault plan: {s}"),
            CampaignError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::tree::TreeKind;

    #[test]
    fn fault_free_checked_campaign_matches_lemma2() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            256,
            LogP::PAPER,
        )
        .with_reps(3);
        let records = c.run().unwrap();
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(r.all_live_colored);
            assert_eq!(r.g_max, 0);
            assert_eq!(r.lscc, Some(8));
            assert_eq!(r.faults, 0);
        }
    }

    #[test]
    fn fault_count_spec_is_exact_per_run() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            512,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Count(5))
        .with_reps(4);
        for r in c.run().unwrap() {
            assert_eq!(r.faults, 5);
            assert!(r.all_live_colored, "checked correction heals everything");
            assert!(r.g_max >= 1);
            assert!(r.lscc.unwrap() >= 8);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let c = Campaign::new(
            Variant::tree_opportunistic(TreeKind::LAME2, 4),
            256,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(0.01))
        .with_reps(8);
        let seq = c.run().unwrap();
        let par = c.run_parallel(4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_metered_equals_sequential() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            256,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(0.02))
        .with_reps(6);
        let (seq_records, seq_registry) = c.run_metered().unwrap();
        let (par_records, par_registry) = c.run_metered_parallel(3).unwrap();
        assert_eq!(seq_records, par_records);
        assert_eq!(seq_registry, par_registry);
    }

    #[test]
    fn parallel_checked_equals_sequential() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            256,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Rate(0.02))
        .with_reps(6);
        let (seq_records, seq_report) = c.run_checked().unwrap();
        let (par_records, par_report) = c.run_checked_parallel(3).unwrap();
        assert_eq!(seq_records, par_records);
        assert_eq!(seq_report.events, par_report.events);
        assert_eq!(seq_report.reps, par_report.reps);
        assert_eq!(
            format!("{:?}", seq_report.violations),
            format!("{:?}", par_report.violations),
        );
    }

    #[test]
    fn default_threads_honors_env_override() {
        // Runs in-process: avoid mutating the env for other tests by
        // only asserting the fallback path's lower bound.
        assert!(default_threads() >= 1);
    }

    #[test]
    fn records_export_as_stable_jsonl() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            64,
            LogP::PAPER,
        )
        .with_reps(2);
        let records = c.run().unwrap();
        let jsonl = records_to_jsonl(&records);
        assert!(jsonl.ends_with('\n'));
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with(r#"{"seed":1,"faults":0,"#),
            "{}",
            lines[0]
        );
        assert!(
            lines[0].contains(r#""all_live_colored":true"#),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains(r#""lscc":8"#), "{}", lines[0]);
    }

    #[test]
    fn progress_callback_sees_every_repetition_in_order() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            64,
            LogP::PAPER,
        )
        .with_reps(4);
        let mut seen = Vec::new();
        let records = c.run_with_progress(|i, r| seen.push((i, r.seed))).unwrap();
        assert_eq!(records.len(), 4);
        let expected: Vec<(u32, u64)> = (0..4).map(|i| (i, 1 + u64::from(i))).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn observed_campaign_wraps_reps_in_phase_spans() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            32,
            LogP::PAPER,
        )
        .with_reps(2);
        let mut sink = ct_obs::VecSink::new();
        let records = c.run_observed(&mut sink).unwrap();
        let spans: Vec<String> = sink
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::PhaseBegin { name } => Some(format!("+{name}")),
                EventKind::PhaseEnd { name } => Some(format!("-{name}")),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                "+campaign",
                "+rep 0",
                "+broadcast",
                "-broadcast",
                "-rep 0",
                "+rep 1",
                "+broadcast",
                "-broadcast",
                "-rep 1",
                "-campaign",
            ]
        );
        // Observation never perturbs results.
        assert_eq!(records, c.run().unwrap());
    }

    /// The registry's per-payload counters, fed purely from the event
    /// stream, must reproduce the engine's own `MessageCounts` on a
    /// Figure-6-style campaign (corrected tree, random faults).
    #[test]
    fn metered_campaign_counters_match_message_counts() {
        use ct_obs::metrics::names;

        let reps = 5u32;
        let c = Campaign::new(
            Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
            256,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Count(3))
        .with_reps(reps);
        let (records, registry) = c.run_metered().unwrap();

        // Recompute the campaign's aggregate MessageCounts straight
        // from the simulator, without any sink in the loop.
        let mut tree = 0u64;
        let mut gossip = 0u64;
        let mut correction = 0u64;
        let mut ack = 0u64;
        for i in 0..reps {
            let seed = c.seed0 + u64::from(i);
            let plan = FaultPlan::random_count(c.p, 3, seed).unwrap();
            let out = Simulation::builder(c.p, c.logp)
                .faults(plan)
                .seed(seed)
                .build()
                .run(&c.variant)
                .unwrap();
            tree += out.messages.tree;
            gossip += out.messages.gossip;
            correction += out.messages.correction;
            ack += out.messages.ack;
        }

        assert_eq!(registry.counter(names::MSGS_TREE), tree);
        assert_eq!(registry.counter(names::MSGS_GOSSIP), gossip);
        assert_eq!(registry.counter(names::MSGS_CORRECTION), correction);
        assert_eq!(registry.counter(names::MSGS_ACK), ack);
        assert_eq!(
            registry.messages_total(),
            records.iter().map(|r| r.messages).sum::<u64>()
        );
        // One Colored event per rank that got colored (dead ranks and
        // stragglers never do), and each coloring lands in the
        // histogram.
        let colored_expected: u64 = records
            .iter()
            .map(|r| u64::from(c.p - r.faults - r.uncolored))
            .sum();
        assert_eq!(registry.counter(names::COLORED), colored_expected);
        let hist = registry.histogram(names::COLORING_TIME).unwrap();
        assert_eq!(hist.count(), colored_expected);
    }

    /// Every repetition of a faulty corrected campaign must pass the
    /// streaming invariant monitor — this is the `run_observed`-path
    /// integration the monitor exists for.
    #[test]
    fn checked_campaign_has_no_violations() {
        let c = Campaign::new(
            Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
            128,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Count(3))
        .with_reps(4);
        let (records, report) = c.run_checked().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(report.reps, 4);
        assert!(report.is_ok(), "{}", report.render_text());
        // Checking never perturbs results.
        assert_eq!(records, c.run().unwrap());
    }

    #[test]
    fn fault_plan_accessor_matches_run_draw() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            64,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Count(4))
        .with_reps(2);
        for i in 0..2 {
            let plan = c.fault_plan(i).unwrap();
            assert_eq!(plan.count(), c.run_one(i).unwrap().faults);
        }
    }

    #[test]
    fn chunked_count_spec_is_exact_and_heals() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            512,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::ChunkedCount(5))
        .with_reps(3);
        for (i, r) in c.run().unwrap().into_iter().enumerate() {
            assert_eq!(r.faults, 5);
            assert!(r.all_live_colored);
            // The plan accessor and the run itself draw the same mask.
            assert_eq!(c.fault_plan(i as u32).unwrap().count(), 5);
        }
    }

    #[test]
    fn fixed_rank_faults_apply_every_run() {
        let c = Campaign::new(
            Variant::tree_checked_sync(TreeKind::BINOMIAL),
            64,
            LogP::PAPER,
        )
        .with_faults(FaultSpec::Ranks(vec![1, 2]))
        .with_reps(2);
        for r in c.run().unwrap() {
            assert_eq!(r.faults, 2);
        }
    }
}
