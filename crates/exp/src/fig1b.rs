//! Figure 1b: expected correction time, in-order vs interleaved
//! binomial trees.
//!
//! 64K processes, synchronized checked correction, exactly 1, 2 or 5
//! uniformly random failed processes. The in-order tree's correction
//! time grows with the number of faults (a failed subtree is one big
//! contiguous gap); the interleaved tree's stays near the fault-free
//! 8 steps (vertical line at ≈10.5 in the paper). Whiskers are the
//! 10%/90% quantiles.

use ct_analysis::Summary;
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError, FaultSpec};
use crate::csv::{fmt_f64, CsvTable};
use crate::variants::Variant;

/// Configuration for the Figure 1b campaign.
#[derive(Clone, Debug)]
pub struct Fig1bConfig {
    /// Process count (paper: 2¹⁶).
    pub p: u32,
    /// Fault counts per row (paper: 1, 2, 5).
    pub fault_counts: Vec<u32>,
    /// Repetitions per row.
    pub reps: u32,
    /// Base seed.
    pub seed0: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Fig1bConfig {
    /// Laptop-scale defaults (`P = 2¹⁴`, 60 reps); pass `p = 1 << 16`
    /// and more reps for the paper's exact setting.
    pub fn quick() -> Fig1bConfig {
        Fig1bConfig {
            p: 1 << 14,
            fault_counts: vec![1, 2, 5],
            reps: 60,
            seed0: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// One row of the figure.
#[derive(Clone, Debug)]
pub struct Fig1bRow {
    /// `in-order` or `interleaved`.
    pub ordering: Ordering,
    /// Number of failed processes.
    pub faults: u32,
    /// Distribution of correction times (steps).
    pub correction_time: Summary,
}

/// Run the campaign.
pub fn run(cfg: &Fig1bConfig) -> Result<Vec<Fig1bRow>, CampaignError> {
    let mut rows = Vec::new();
    for ordering in [Ordering::InOrder, Ordering::Interleaved] {
        for &faults in &cfg.fault_counts {
            let spec = BroadcastSpec::corrected_tree_sync(
                TreeKind::Binomial { order: ordering },
                CorrectionKind::Checked,
            );
            let records = Campaign::new(Variant::Tree(spec), cfg.p, LogP::PAPER)
                .with_faults(FaultSpec::Count(faults))
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            let lscc: Vec<u64> = records
                .iter()
                .map(|r| r.lscc.expect("synchronized correction"))
                .collect();
            rows.push(Fig1bRow {
                ordering,
                faults,
                correction_time: Summary::of_u64(lscc),
            });
        }
    }
    Ok(rows)
}

/// Render rows as the figure's CSV.
pub fn to_csv(rows: &[Fig1bRow]) -> CsvTable {
    let mut t = CsvTable::new([
        "ordering", "faults", "mean", "p10", "p90", "min", "max", "reps",
    ]);
    for r in rows {
        t.row([
            r.ordering.to_string(),
            r.faults.to_string(),
            fmt_f64(r.correction_time.mean),
            fmt_f64(r.correction_time.p10),
            fmt_f64(r.correction_time.p90),
            fmt_f64(r.correction_time.min),
            fmt_f64(r.correction_time.max),
            r.correction_time.n.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig1bConfig {
        Fig1bConfig {
            p: 1 << 10,
            fault_counts: vec![1, 5],
            reps: 12,
            seed0: 3,
            threads: 2,
        }
    }

    #[test]
    fn interleaved_correction_time_beats_in_order() {
        let rows = run(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        for &faults in &[1u32, 5] {
            let in_order = rows
                .iter()
                .find(|r| r.ordering == Ordering::InOrder && r.faults == faults)
                .unwrap();
            let interleaved = rows
                .iter()
                .find(|r| r.ordering == Ordering::Interleaved && r.faults == faults)
                .unwrap();
            assert!(
                interleaved.correction_time.mean <= in_order.correction_time.mean,
                "faults={faults}: interleaved {} vs in-order {}",
                interleaved.correction_time.mean,
                in_order.correction_time.mean
            );
        }
    }

    #[test]
    fn in_order_degrades_with_more_faults() {
        let rows = run(&tiny()).unwrap();
        let mean = |f: u32| {
            rows.iter()
                .find(|r| r.ordering == Ordering::InOrder && r.faults == f)
                .unwrap()
                .correction_time
                .mean
        };
        assert!(mean(5) >= mean(1));
    }

    #[test]
    fn csv_shape() {
        let rows = run(&tiny()).unwrap();
        let csv = to_csv(&rows);
        assert_eq!(csv.len(), 4);
        assert!(csv.to_csv().starts_with("ordering,faults,mean"));
    }
}
