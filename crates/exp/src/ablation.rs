//! Ablation: the correction-algorithm trade-off space (§3.1/§3.3).
//!
//! The paper picks optimized opportunistic correction as its default and
//! leaves delayed correction unevaluated ("the appropriate delay is
//! application-specific"). This campaign fills in the whole grid: for a
//! fixed tree, sweep every correction algorithm (and for delayed, a
//! range of delays) under a range of fault counts, recording latency,
//! messages and liveness — the quantitative basis for the paper's
//! qualitative trade-off table:
//!
//! * opportunistic — cheapest bounded-coverage correction;
//! * optimized opportunistic — same guarantee, fewer messages;
//! * checked — unconditional coverage, `M_SCC` messages;
//! * failure-proof — coverage even under mid-correction failures, paid
//!   in acknowledgments;
//! * delayed — near-minimal messages fault-free, latency spikes under
//!   faults growing with the configured delay.

use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError, FaultSpec};
use crate::csv::{fmt_f64, CsvTable};
use crate::variants::Variant;

/// Configuration of the ablation grid.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// Process count.
    pub p: u32,
    /// Tree under test.
    pub tree: TreeKind,
    /// Fault counts to sweep.
    pub fault_counts: Vec<u32>,
    /// Delays (steps) for delayed correction.
    pub delays: Vec<u64>,
    /// Opportunistic distances.
    pub distances: Vec<u32>,
    /// Repetitions per cell.
    pub reps: u32,
    /// Base seed.
    pub seed0: u64,
    /// Worker threads.
    pub threads: usize,
}

impl AblationConfig {
    /// Laptop-scale defaults.
    pub fn quick() -> AblationConfig {
        AblationConfig {
            p: 1 << 12,
            tree: TreeKind::BINOMIAL,
            fault_counts: vec![0, 1, 8, 64],
            delays: vec![8, 16, 32],
            distances: vec![1, 4],
            reps: 20,
            seed0: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// One grid cell result.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Correction configuration label.
    pub correction: String,
    /// Injected fault count.
    pub faults: u32,
    /// Mean quiescence latency (steps).
    pub mean_quiescence: f64,
    /// Mean messages per process.
    pub mean_messages_per_process: f64,
    /// Fraction of runs with all live processes colored.
    pub liveness_rate: f64,
}

/// Correction kinds swept by the ablation for a given config.
pub fn correction_grid(cfg: &AblationConfig) -> Vec<CorrectionKind> {
    let mut kinds = vec![CorrectionKind::None];
    for &d in &cfg.distances {
        kinds.push(CorrectionKind::Opportunistic { distance: d });
        kinds.push(CorrectionKind::OpportunisticOptimized { distance: d });
    }
    kinds.push(CorrectionKind::Checked);
    kinds.push(CorrectionKind::FailureProof);
    for &delay in &cfg.delays {
        kinds.push(CorrectionKind::Delayed { delay });
    }
    kinds
}

/// Run the grid. All corrections run synchronized so their latencies
/// are directly comparable (the dissemination part is identical).
pub fn run(cfg: &AblationConfig) -> Result<Vec<AblationRow>, CampaignError> {
    let logp = LogP::PAPER;
    let mut rows = Vec::new();
    for kind in correction_grid(cfg) {
        for &faults in &cfg.fault_counts {
            let spec = if kind.is_none() {
                BroadcastSpec::plain_tree(cfg.tree)
            } else {
                BroadcastSpec::corrected_tree_sync(cfg.tree, kind)
            };
            let records = Campaign::new(Variant::Tree(spec), cfg.p, logp)
                .with_faults(if faults == 0 {
                    FaultSpec::None
                } else {
                    FaultSpec::Count(faults)
                })
                .with_reps(cfg.reps)
                .with_seed(cfg.seed0)
                .run_parallel(cfg.threads)?;
            let n = records.len() as f64;
            rows.push(AblationRow {
                correction: kind.to_string(),
                faults,
                mean_quiescence: records.iter().map(|r| r.quiescence as f64).sum::<f64>() / n,
                mean_messages_per_process: records
                    .iter()
                    .map(|r| r.messages_per_process)
                    .sum::<f64>()
                    / n,
                liveness_rate: records.iter().filter(|r| r.all_live_colored).count() as f64 / n,
            });
        }
    }
    Ok(rows)
}

/// Render as CSV.
pub fn to_csv(rows: &[AblationRow]) -> CsvTable {
    let mut t = CsvTable::new([
        "correction",
        "faults",
        "mean_quiescence",
        "mean_msgs_per_process",
        "liveness_rate",
    ]);
    for r in rows {
        t.row([
            r.correction.clone(),
            r.faults.to_string(),
            fmt_f64(r.mean_quiescence),
            fmt_f64(r.mean_messages_per_process),
            fmt_f64(r.liveness_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            p: 256,
            tree: TreeKind::BINOMIAL,
            fault_counts: vec![0, 4],
            delays: vec![12],
            distances: vec![2],
            reps: 5,
            seed0: 11,
            threads: 2,
        }
    }

    fn find<'a>(rows: &'a [AblationRow], corr: &str, faults: u32) -> &'a AblationRow {
        rows.iter()
            .find(|r| r.correction == corr && r.faults == faults)
            .unwrap_or_else(|| panic!("missing cell {corr}/{faults}"))
    }

    #[test]
    fn grid_covers_expected_cells() {
        let cfg = tiny();
        let rows = run(&cfg).unwrap();
        // kinds: none, opp(2), opp-opt(2), checked, failure-proof,
        // delayed(12) = 6; × 2 fault counts.
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn fault_free_message_ordering_matches_the_tradeoff() {
        let rows = run(&tiny()).unwrap();
        let none = find(&rows, "none", 0).mean_messages_per_process;
        let delayed = find(&rows, "delayed(12)", 0).mean_messages_per_process;
        let checked = find(&rows, "checked", 0).mean_messages_per_process;
        let fp = find(&rows, "failure-proof", 0).mean_messages_per_process;
        assert!(none < delayed, "plain tree is the floor");
        assert!(delayed < checked, "delayed is the cheapest correction");
        assert!(checked <= fp, "failure-proof pays at least checked's cost");
    }

    #[test]
    fn only_plain_tree_loses_liveness_under_faults() {
        let rows = run(&tiny()).unwrap();
        assert!(find(&rows, "none", 4).liveness_rate < 1.0);
        for corr in ["checked", "failure-proof", "delayed(12)"] {
            assert_eq!(find(&rows, corr, 4).liveness_rate, 1.0, "{corr}");
        }
    }

    #[test]
    fn delayed_correction_pays_latency_under_faults() {
        let rows = run(&tiny()).unwrap();
        let ff = find(&rows, "delayed(12)", 0).mean_quiescence;
        let faulty = find(&rows, "delayed(12)", 4).mean_quiescence;
        assert!(
            faulty > ff,
            "faults must trigger the probe delay: {ff} vs {faulty}"
        );
    }
}
