//! # ct-exp — the paper's evaluation, as runnable campaigns
//!
//! One module per experiment of §4:
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1b`] | Figure 1b — checked-correction time of in-order vs interleaved binomial trees under 1/2/5 failures |
//! | [`fig6`] | Figure 6 — average messages per process by correction type × broadcast variant |
//! | [`fig7`] | Figure 7 — fault-free quiescence latency vs process count |
//! | [`resilience`] | the fault-rate sweep shared by Figures 8, 9, 10 and Table 1 |
//! | [`fig8`] | Figure 8 — quiescence latency vs fault rate |
//! | [`fig9`] | Figure 9 — messages per process vs fault rate |
//! | [`fig10`] | Figure 10 — (g_max, correction time) scatter with Lemma-3 bounds |
//! | [`table1`] | Table 1 — correction-cost percentiles under faults |
//! | [`fig11`] | Figure 11 — cluster broadcast latency vs rank count |
//! | [`fig12`] | Figure 12 — cluster latency of Corrected-Tree variants |
//!
//! Shared machinery: [`variants`] (the protocol zoo), [`campaign`]
//! (seeded Monte-Carlo runs, optionally across threads), [`tuning`]
//! (empirical gossip-time selection, §4.1) and [`csv`] (plain-text
//! emitters so every binary can dump machine-readable series).
//!
//! Scale note: repetition counts and maximum process counts default to
//! laptop-friendly values; every campaign accepts the paper's original
//! scale (`P = 2¹⁶`, 10⁵ repetitions) through its config.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod correlated;
pub mod csv;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig1b;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod pubsub;
pub mod resilience;
pub mod scale;
pub mod table1;
pub mod tuning;
pub mod variants;

pub use campaign::{default_threads, Campaign, FaultSpec, RunRecord};
pub use perf::{analyze_campaign, CampaignAnalysis};
pub use pubsub::{run_pubsub_bench, PubsubBench, PubsubCell};
pub use scale::{run_scale, ScaleConfig, ScaleReport};
pub use variants::Variant;
