//! Empirical gossip-time selection (§4.1).
//!
//! The paper tunes Corrected Gossip per process count: "We picked the
//! smallest gossiping time for opportunistic Corrected Gossip where we
//! observed no uncolored processes in `N` simulations", and "for checked
//! Corrected Gossip we optimized gossiping time for the lowest latency".
//! These tuners are reproductions of that procedure at configurable
//! repetition counts.
//!
//! Both tuners are deterministic functions of their arguments (every
//! underlying campaign is seeded), so — like the topology cache in
//! `ct_core::tree::cache` — their results are memoized process-wide:
//! a figure sweep that tunes the gossip schedule for the same `(P,
//! LogP, …)` repeatedly pays for the search once.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use ct_core::correction::CorrectionKind;
use ct_logp::LogP;

use crate::campaign::{Campaign, CampaignError};
use crate::variants::Variant;

/// Memo key: a tag discriminating the tuner plus every argument either
/// tuner reads. Unused slots are zero for the other tuner.
type TuneKey = (u8, u32, LogP, u64, u64, u64, u32, u64);

fn memo() -> &'static Mutex<HashMap<TuneKey, u64>> {
    static MEMO: OnceLock<Mutex<HashMap<TuneKey, u64>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn memoized(
    key: TuneKey,
    compute: impl FnOnce() -> Result<u64, CampaignError>,
) -> Result<u64, CampaignError> {
    if let Some(&g) = memo().lock().expect("tuning memo poisoned").get(&key) {
        return Ok(g);
    }
    let g = compute()?;
    memo().lock().expect("tuning memo poisoned").insert(key, g);
    Ok(g)
}

/// Smallest gossip time `G` for which opportunistic Corrected Gossip
/// (distance `d`) colored every process in all of `reps` seeded
/// simulations. Scans upward from a transit-time floor; `hi` caps the
/// search (returns `hi` if even that is not reliably coloring).
pub fn min_full_coloring_gossip_time(
    p: u32,
    logp: LogP,
    d: u32,
    reps: u32,
    seed0: u64,
    hi: u64,
) -> Result<u64, CampaignError> {
    memoized((0, p, logp, u64::from(d), hi, 0, reps, seed0), || {
        min_full_coloring_gossip_time_uncached(p, logp, d, reps, seed0, hi)
    })
}

fn min_full_coloring_gossip_time_uncached(
    p: u32,
    logp: LogP,
    d: u32,
    reps: u32,
    seed0: u64,
    hi: u64,
) -> Result<u64, CampaignError> {
    let lo = logp.transit_steps();
    // The failure-free coloring probability is monotone in G, so a
    // binary search over the scanned range is sound in expectation; we
    // still verify the chosen point with the full repetition budget.
    let mut lo = lo;
    let mut hi_b = hi;
    let fully_colors = |g: u64| -> Result<bool, CampaignError> {
        let c = Campaign::new(
            Variant::gossip(g, CorrectionKind::Opportunistic { distance: d }),
            p,
            logp,
        )
        .with_reps(reps)
        .with_seed(seed0);
        Ok(c.run()?.iter().all(|r| r.all_live_colored))
    };
    if fully_colors(lo)? {
        return Ok(lo);
    }
    while lo + 1 < hi_b {
        let mid = lo + (hi_b - lo) / 2;
        if fully_colors(mid)? {
            hi_b = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi_b)
}

/// Gossip time minimizing the mean quiescence latency of checked
/// Corrected Gossip over `reps` runs, scanned over `lo..=hi` in `step`
/// increments.
pub fn min_latency_gossip_time(
    p: u32,
    logp: LogP,
    lo: u64,
    hi: u64,
    step: u64,
    reps: u32,
    seed0: u64,
) -> Result<u64, CampaignError> {
    memoized((1, p, logp, lo, hi, step, reps, seed0), || {
        min_latency_gossip_time_uncached(p, logp, lo, hi, step, reps, seed0)
    })
}

fn min_latency_gossip_time_uncached(
    p: u32,
    logp: LogP,
    lo: u64,
    hi: u64,
    step: u64,
    reps: u32,
    seed0: u64,
) -> Result<u64, CampaignError> {
    assert!(lo >= 1 && step >= 1 && hi >= lo);
    let mut best = (lo, f64::INFINITY);
    let mut g = lo;
    while g <= hi {
        let c = Campaign::new(Variant::gossip(g, CorrectionKind::Checked), p, logp)
            .with_reps(reps)
            .with_seed(seed0);
        let records = c.run()?;
        let mean = records.iter().map(|r| r.quiescence as f64).sum::<f64>() / records.len() as f64;
        if mean < best.1 {
            best = (g, mean);
        }
        g += step;
    }
    Ok(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuners_are_memoized_and_stable() {
        let logp = LogP::PAPER;
        let a = min_full_coloring_gossip_time(64, logp, 4, 2, 17, 200).unwrap();
        let b = min_full_coloring_gossip_time(64, logp, 4, 2, 17, 200).unwrap();
        assert_eq!(a, b);
        let c = min_latency_gossip_time(64, logp, 4, 24, 4, 2, 17).unwrap();
        let d = min_latency_gossip_time(64, logp, 4, 24, 4, 2, 17).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn full_coloring_time_is_minimal() {
        let logp = LogP::PAPER;
        let g = min_full_coloring_gossip_time(64, logp, 4, 3, 10, 200).unwrap();
        assert!(g >= logp.transit_steps());
        assert!(g < 200, "search must not hit the cap for small P");
        // One step less must fail to fully color for at least one seed
        // (otherwise the result would not be minimal). Tolerate the
        // boundary case g == floor.
        if g > logp.transit_steps() {
            let c = Campaign::new(
                Variant::gossip(g - 1, CorrectionKind::Opportunistic { distance: 4 }),
                64,
                logp,
            )
            .with_reps(3)
            .with_seed(10);
            assert!(c.run().unwrap().iter().any(|r| !r.all_live_colored));
        }
    }

    #[test]
    fn latency_tuner_prefers_interior_optimum() {
        // Too-short gossip ⇒ long correction; too-long gossip ⇒ wasted
        // dissemination. The tuned point must beat both extremes.
        let logp = LogP::PAPER;
        let g = min_latency_gossip_time(128, logp, 4, 40, 4, 2, 3).unwrap();
        assert!((4..=40).contains(&g));
        let mean_q = |g: u64| {
            let c = Campaign::new(Variant::gossip(g, CorrectionKind::Checked), 128, logp)
                .with_reps(2)
                .with_seed(3);
            let rec = c.run().unwrap();
            rec.iter().map(|r| r.quiescence as f64).sum::<f64>() / rec.len() as f64
        };
        assert!(mean_q(g) <= mean_q(4));
        assert!(mean_q(g) <= mean_q(40));
    }
}
