//! Table 1: cost of correction under faults.
//!
//! Per fault rate, the 99%, 99.9% and max percentiles of both the
//! maximum gap `g_max` and the correction time `L_SCC`, aggregated over
//! **all tree types** (the table's caption). Fault-free reference:
//! `g_max = 0`, `L_SCC = 8`.

use ct_analysis::percentile;

use crate::csv::{fmt_f64, CsvTable};
use crate::resilience::ResilienceCell;

/// One table row (one fault rate).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Fault rate (fraction, e.g. 0.01 = 1%).
    pub rate: f64,
    /// `g_max` at the 99th percentile.
    pub gmax_p99: f64,
    /// `g_max` at the 99.9th percentile.
    pub gmax_p999: f64,
    /// Largest observed `g_max`.
    pub gmax_max: f64,
    /// `L_SCC` at the 99th percentile.
    pub lscc_p99: f64,
    /// `L_SCC` at the 99.9th percentile.
    pub lscc_p999: f64,
    /// Largest observed `L_SCC`.
    pub lscc_max: f64,
    /// Sample size aggregated across tree types.
    pub samples: usize,
}

/// Aggregate grid cells (tree cells only) into the table.
pub fn from_cells(cells: &[ResilienceCell]) -> Vec<Table1Row> {
    let mut rates: Vec<f64> = cells.iter().filter(|c| c.is_tree).map(|c| c.rate).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    rates.dedup();
    rates
        .into_iter()
        .map(|rate| {
            let mut gmax: Vec<f64> = Vec::new();
            let mut lscc: Vec<f64> = Vec::new();
            for cell in cells
                .iter()
                .filter(|c| c.is_tree && (c.rate - rate).abs() < 1e-15)
            {
                for rec in &cell.records {
                    gmax.push(rec.g_max as f64);
                    lscc.push(rec.lscc.expect("synchronized grid") as f64);
                }
            }
            Table1Row {
                rate,
                gmax_p99: percentile(&gmax, 0.99),
                gmax_p999: percentile(&gmax, 0.999),
                gmax_max: percentile(&gmax, 1.0),
                lscc_p99: percentile(&lscc, 0.99),
                lscc_p999: percentile(&lscc, 0.999),
                lscc_max: percentile(&lscc, 1.0),
                samples: gmax.len(),
            }
        })
        .collect()
}

/// Render as CSV (the paper's column layout).
pub fn to_csv(rows: &[Table1Row]) -> CsvTable {
    let mut t = CsvTable::new([
        "fault_rate_pct",
        "gmax_p99",
        "gmax_p999",
        "gmax_max",
        "lscc_p99",
        "lscc_p999",
        "lscc_max",
        "samples",
    ]);
    for r in rows {
        t.row([
            fmt_f64(r.rate * 100.0),
            fmt_f64(r.gmax_p99),
            fmt_f64(r.gmax_p999),
            fmt_f64(r.gmax_max),
            fmt_f64(r.lscc_p99),
            fmt_f64(r.lscc_p999),
            fmt_f64(r.lscc_max),
            r.samples.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{run_grid, ResilienceConfig};
    use ct_logp::LogP;

    fn cells() -> Vec<ResilienceCell> {
        run_grid(&ResilienceConfig {
            p: 1024,
            logp: LogP::PAPER,
            rates: vec![0.001, 0.04],
            reps: 10,
            seed0: 13,
            threads: crate::campaign::default_threads(),
            gossip_time: 24,
            include_gossip: true,
        })
        .unwrap()
    }

    #[test]
    fn rows_aggregate_over_all_trees_per_rate() {
        let rows = from_cells(&cells());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // 4 trees × 10 reps.
            assert_eq!(r.samples, 40);
            assert!(r.gmax_p99 <= r.gmax_p999);
            assert!(r.gmax_p999 <= r.gmax_max);
            assert!(r.lscc_p99 <= r.lscc_p999);
            assert!(r.lscc_p999 <= r.lscc_max);
            // Under faults the correction always exceeds the fault-free 8.
            assert!(r.lscc_max >= 8.0);
        }
    }

    #[test]
    fn costs_grow_with_fault_rate() {
        let rows = from_cells(&cells());
        assert!(rows[1].gmax_max >= rows[0].gmax_max);
        assert!(rows[1].lscc_p99 >= rows[0].lscc_p99);
    }

    #[test]
    fn csv_reports_rates_in_percent() {
        let rows = from_cells(&cells());
        let csv = to_csv(&rows).to_csv();
        assert!(csv.contains("\n0.1000,"), "{csv}");
        assert!(csv.contains("\n4,"), "{csv}");
    }
}
