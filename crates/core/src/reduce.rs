//! Fault-tolerant reduction — the paper's composition hint, made
//! executable.
//!
//! §1: "applying correction before dissemination allows to create a
//! reduction tree". The composition runs the two phases of a corrected
//! broadcast in reverse order:
//!
//! 1. **Correction first** (ring replication): every live process sends
//!    its contribution to its `d` clockwise ring neighbors, so each
//!    contribution is *held* by up to `d + 1` processes that — thanks to
//!    the interleaving property — belong to different subtrees.
//! 2. **Dissemination reversed** (schedule-driven gather): following
//!    the reverse of the fault-free dissemination schedule, every
//!    process sends the union of the contributions it holds to its tree
//!    parent. No acknowledgments and no failure detector: a dead
//!    child's slot simply passes in silence, and its subtree's
//!    contributions still reach the root through their ring replicas in
//!    other subtrees. Rank-tagging makes the union idempotent, so
//!    replication never double-counts (the "no duplicates" discipline
//!    of §2.1, applied to reduction operands).
//!
//! A contribution is **delivered** iff some process holding it has an
//! all-live ancestor path — the closed form implemented by
//! [`simulate`]. The cost model mirrors the broadcast's: the ring phase
//! costs `d` sends per live process and `d·o + 2o + L` steps; the
//! gather phase is the mirror image of the dissemination schedule.

use ct_logp::{ring_add, LogP, Rank, Time};

use crate::tree::{schedule, Topology, Tree};

/// Result of one corrected reduction.
#[derive(Clone, Debug)]
pub struct ReduceOutcome {
    /// `delivered[r]`: did `r`'s contribution reach the root?
    pub delivered: Vec<bool>,
    /// Ring-replication messages sent (phase 1).
    pub ring_messages: u64,
    /// Gather messages sent (phase 2).
    pub gather_messages: u64,
    /// Completion time: ring phase plus the reverse gather schedule.
    pub latency: Time,
}

impl ReduceOutcome {
    /// Were the contributions of *all* live processes delivered
    /// (non-faulty liveness, reduction flavor)?
    pub fn all_live_delivered(&self, failed: &[bool]) -> bool {
        self.delivered.iter().zip(failed).all(|(&d, &f)| f || d)
    }

    /// Live processes whose contribution was lost.
    pub fn lost(&self, failed: &[bool]) -> Vec<Rank> {
        self.delivered
            .iter()
            .zip(failed)
            .enumerate()
            .filter_map(|(r, (&d, &f))| (!f && !d).then_some(r as Rank))
            .collect()
    }

    /// Total messages.
    pub fn messages(&self) -> u64 {
        self.ring_messages + self.gather_messages
    }
}

/// Execute a corrected reduction over `tree` with replication distance
/// `d` and fail-stop mask `failed` (root alive). Exact with respect to
/// the protocol described in the module docs.
///
/// ```
/// use ct_core::{reduce, tree::TreeKind};
/// use ct_logp::LogP;
///
/// let tree = TreeKind::BINOMIAL.build(64, &LogP::PAPER)?;
/// let mut failed = vec![false; 64];
/// failed[1] = true; // a root child dies with its whole subtree path
/// let out = reduce::simulate(&tree, 4, &failed, &LogP::PAPER);
/// assert!(out.all_live_delivered(&failed)); // ring replicas save them
/// # Ok::<(), ct_core::tree::TreeError>(())
/// ```
pub fn simulate(tree: &Tree, d: u32, failed: &[bool], logp: &LogP) -> ReduceOutcome {
    let p = tree.num_processes();
    assert_eq!(failed.len(), p as usize);
    assert!(!failed[0], "the root collects the result and must be alive");

    // live_ancestry[r]: r is alive and so is every ancestor.
    let mut live_ancestry = vec![false; p as usize];
    live_ancestry[0] = true;
    // Parents precede children in depth order.
    let mut order: Vec<Rank> = (0..p).collect();
    order.sort_unstable_by_key(|&r| tree.depth(r));
    for &r in order.iter().skip(1) {
        let parent = tree.parent(r).expect("non-root");
        live_ancestry[r as usize] = !failed[r as usize] && live_ancestry[parent as usize];
    }

    // Phase 1: live process r replicates to r+1 … r+d (mod P); its
    // contribution is delivered iff some live-ancestry process holds it.
    let eff_d = d.min(p.saturating_sub(1));
    let mut delivered = vec![false; p as usize];
    let mut ring_messages = 0u64;
    for r in 0..p {
        if failed[r as usize] {
            continue;
        }
        ring_messages += eff_d as u64;
        let mut ok = live_ancestry[r as usize];
        for i in 1..=eff_d {
            // A dead holder drops the replica; a live one forwards it up
            // during its gather slot.
            let h = ring_add(r, i, p);
            ok |= live_ancestry[h as usize];
        }
        delivered[r as usize] = ok;
    }

    // Phase 2 cost: every live process with a live parent sends one
    // gather message (the root sends none).
    let gather_messages = (1..p)
        .filter(|&r| !failed[r as usize] && !failed[tree.parent(r).expect("non-root") as usize])
        .count() as u64;

    // Latency: the ring phase injects d messages back-to-back
    // (d·o + transit to land the last one), then the gather mirrors the
    // dissemination schedule.
    let ring_phase =
        Time::new(eff_d.max(1) as u64 * logp.o()).minus(logp.o()) + logp.transit_steps();
    let gather_phase = schedule::dissemination_schedule(tree, logp)
        .into_iter()
        .max()
        .unwrap_or(Time::ZERO);
    ReduceOutcome {
        delivered,
        ring_messages,
        gather_messages,
        latency: ring_phase + gather_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, TreeKind};

    fn tree(p: u32) -> Tree {
        TreeKind::BINOMIAL.build(p, &LogP::PAPER).unwrap()
    }

    #[test]
    fn fault_free_reduction_delivers_everything() {
        let t = tree(128);
        let out = simulate(&t, 4, &vec![false; 128], &LogP::PAPER);
        assert!(out.all_live_delivered(&vec![false; 128]));
        assert_eq!(out.ring_messages, 128 * 4);
        assert_eq!(out.gather_messages, 127);
    }

    #[test]
    fn dead_subtree_contributions_survive_via_ring_replicas() {
        // Kill rank 1 (a root child): its live descendants cannot gather
        // through it, but their ring neighbors sit in other subtrees.
        let t = tree(64);
        let mut failed = vec![false; 64];
        failed[1] = true;
        let out = simulate(&t, 4, &failed, &LogP::PAPER);
        assert!(
            out.all_live_delivered(&failed),
            "lost: {:?}",
            out.lost(&failed)
        );
    }

    #[test]
    fn without_replication_orphans_are_lost() {
        // d = 0 is a plain (fault-agnostic) gather: the subtree of a
        // dead inner node is lost.
        let t = tree(64);
        let mut failed = vec![false; 64];
        failed[1] = true;
        let out = simulate(&t, 0, &failed, &LogP::PAPER);
        let lost = out.lost(&failed);
        // Binomial subtree of 1 in P=64: every odd-indexed descendant…
        // at minimum its direct children are gone.
        assert!(!lost.is_empty());
        assert!(lost.contains(&3));
    }

    #[test]
    fn in_order_numbering_loses_whole_blocks() {
        // The reduction dual of Figure 1: with in-order numbering a dead
        // inner node's orphaned subtree is ring-contiguous, so replicas
        // of its deeper members land on *other orphans* and die with
        // them — interleaving is what saves the day.
        let p = 64u32;
        let d = 2;
        let in_order = TreeKind::Binomial {
            order: Ordering::InOrder,
        }
        .build(p, &LogP::PAPER)
        .unwrap();
        let interleaved = tree(p);
        // Fail an inner node with a subtree larger than d everywhere.
        let victim = 1u32;
        let mut failed_io = vec![false; p as usize];
        failed_io[victim as usize] = true;
        let out_io = simulate(&in_order, d, &failed_io, &LogP::PAPER);
        assert!(
            !out_io.all_live_delivered(&failed_io),
            "in-order must lose contributions deep inside the orphan block"
        );
        let mut failed_il = vec![false; p as usize];
        failed_il[victim as usize] = true;
        let out_il = simulate(&interleaved, d, &failed_il, &LogP::PAPER);
        assert!(
            out_il.all_live_delivered(&failed_il),
            "interleaving scatters replicas into live subtrees: {:?}",
            out_il.lost(&failed_il)
        );
    }

    #[test]
    fn latency_accounts_for_both_phases() {
        let t = tree(256);
        let logp = LogP::PAPER;
        let out = simulate(&t, 4, &vec![false; 256], &logp);
        let gather = t.dissemination_deadline(&logp);
        // Ring phase: 4 sends (last starts at 3o) + transit.
        assert_eq!(out.latency, Time::new(3 + 4) + gather);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn dead_root_is_rejected() {
        let t = tree(8);
        let mut failed = vec![false; 8];
        failed[0] = true;
        let _ = simulate(&t, 2, &failed, &LogP::PAPER);
    }
}
