//! Tree broadcast with acknowledgments — the traditional fault-tolerance
//! baseline (§4.1, e.g. Buntinas \[5\]).
//!
//! Acknowledgments travel along the same tree as dissemination: a leaf
//! acknowledges to its parent as soon as it is colored; an inner process
//! acknowledges after it has received acknowledgments from all of its
//! children; the root is finished when all children acknowledged. "Even
//! in the fault-free case the tree has to be traversed twice, effectively
//! doubling the latency in comparison to a non-resilient algorithm"
//! (§5) — exactly the effect Figure 7 shows.
//!
//! Under failures the ack wave stalls (a dead child never acknowledges);
//! recovering from that requires a failure detector and tree
//! restructuring, which is what Corrected Trees avoid.

use std::sync::Arc;

use ct_logp::{Rank, Time};

use crate::tree::{Topology, Tree};

use super::{ColoredVia, Payload, Process, SendPoll};

/// State machine for one rank of the acknowledged tree broadcast.
pub struct AckTreeProcess {
    rank: Rank,
    tree: Arc<Tree>,
    colored_at: Option<Time>,
    colored_via: Option<ColoredVia>,
    next_child: usize,
    acks_received: usize,
    ack_sent: bool,
    done: bool,
}

impl AckTreeProcess {
    /// Create the machine for `rank` of the shared topology.
    pub fn new(rank: Rank, tree: Arc<Tree>) -> Self {
        let is_root = rank == 0;
        AckTreeProcess {
            rank,
            tree,
            colored_at: is_root.then_some(Time::ZERO),
            colored_via: is_root.then_some(ColoredVia::Root),
            next_child: 0,
            acks_received: 0,
            ack_sent: false,
            done: false,
        }
    }

    fn num_children(&self) -> usize {
        self.tree.children(self.rank).len()
    }

    /// Has the root observed a fully acknowledged broadcast? Only
    /// meaningful on rank 0.
    pub fn root_completed(&self) -> bool {
        self.rank == 0 && self.acks_received == self.num_children()
    }
}

impl Process for AckTreeProcess {
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time) {
        match payload {
            Payload::Tree => {
                if self.colored_at.is_none() {
                    self.colored_at = Some(now);
                    self.colored_via = Some(ColoredVia::Dissemination);
                }
            }
            Payload::Ack => {
                debug_assert!(self.tree.children(self.rank).contains(&from));
                self.acks_received += 1;
            }
            Payload::Correction | Payload::Gossip { .. } => {
                debug_assert!(false, "unexpected payload in ack-tree broadcast");
            }
        }
    }

    fn poll_send(&mut self, now: Time) -> SendPoll {
        let _ = now;
        if self.done {
            return SendPoll::Done;
        }
        if self.colored_at.is_none() {
            return SendPoll::Idle;
        }
        let children = self.tree.children(self.rank);
        if self.next_child < children.len() {
            let to = children[self.next_child];
            self.next_child += 1;
            return SendPoll::Now {
                to,
                payload: Payload::Tree,
            };
        }
        if self.acks_received < children.len() {
            return SendPoll::Idle; // waiting for child acknowledgments
        }
        if self.rank != 0 && !self.ack_sent {
            self.ack_sent = true;
            return SendPoll::Now {
                to: self.tree.parent(self.rank).expect("non-root"),
                payload: Payload::Ack,
            };
        }
        self.done = true;
        SendPoll::Done
    }

    fn colored_at(&self) -> Option<Time> {
        self.colored_at
    }

    fn colored_via(&self) -> Option<ColoredVia> {
        self.colored_via
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeKind;
    use ct_logp::LogP;

    fn tree(p: u32) -> Arc<Tree> {
        Arc::new(TreeKind::BINOMIAL.build(p, &LogP::PAPER).unwrap())
    }

    #[test]
    fn leaf_acks_immediately_after_coloring() {
        let mut p7 = AckTreeProcess::new(7, tree(8));
        assert_eq!(p7.poll_send(Time::ZERO), SendPoll::Idle);
        p7.on_message(3, Payload::Tree, Time::new(12));
        assert_eq!(
            p7.poll_send(Time::new(12)),
            SendPoll::Now {
                to: 3,
                payload: Payload::Ack
            }
        );
        assert_eq!(p7.poll_send(Time::new(13)), SendPoll::Done);
    }

    #[test]
    fn inner_node_waits_for_all_child_acks() {
        // Rank 1 in binomial(8) has children {3, 5}.
        let mut p1 = AckTreeProcess::new(1, tree(8));
        p1.on_message(0, Payload::Tree, Time::new(4));
        assert_eq!(
            p1.poll_send(Time::new(4)),
            SendPoll::Now {
                to: 3,
                payload: Payload::Tree
            }
        );
        assert_eq!(
            p1.poll_send(Time::new(5)),
            SendPoll::Now {
                to: 5,
                payload: Payload::Tree
            }
        );
        assert_eq!(p1.poll_send(Time::new(6)), SendPoll::Idle);
        p1.on_message(3, Payload::Ack, Time::new(14));
        assert_eq!(p1.poll_send(Time::new(14)), SendPoll::Idle);
        p1.on_message(5, Payload::Ack, Time::new(15));
        assert_eq!(
            p1.poll_send(Time::new(15)),
            SendPoll::Now {
                to: 0,
                payload: Payload::Ack
            }
        );
        assert_eq!(p1.poll_send(Time::new(16)), SendPoll::Done);
    }

    #[test]
    fn root_completes_only_after_every_ack() {
        let mut root = AckTreeProcess::new(0, tree(8));
        for to in [1u32, 2, 4] {
            assert_eq!(
                root.poll_send(Time::ZERO),
                SendPoll::Now {
                    to,
                    payload: Payload::Tree
                }
            );
        }
        assert_eq!(root.poll_send(Time::ZERO), SendPoll::Idle);
        assert!(!root.root_completed());
        for from in [1u32, 2, 4] {
            root.on_message(from, Payload::Ack, Time::new(20));
        }
        assert!(root.root_completed());
        assert_eq!(root.poll_send(Time::new(20)), SendPoll::Done);
    }

    #[test]
    fn two_process_ack_roundtrip() {
        let t = tree(2);
        let mut root = AckTreeProcess::new(0, Arc::clone(&t));
        let mut leaf = AckTreeProcess::new(1, t);
        assert_eq!(
            root.poll_send(Time::ZERO),
            SendPoll::Now {
                to: 1,
                payload: Payload::Tree
            }
        );
        leaf.on_message(0, Payload::Tree, Time::new(4));
        assert_eq!(
            leaf.poll_send(Time::new(4)),
            SendPoll::Now {
                to: 0,
                payload: Payload::Ack
            }
        );
        root.on_message(1, Payload::Ack, Time::new(8));
        assert!(root.root_completed());
    }
}
