//! General rank relabeling: random process numbering (§2.1).
//!
//! Real failures are rarely independent — all processes of one node die
//! together, and on a linear ring such a block is one big gap no tree
//! interleaving can prevent. The paper's remedy: "independence can be
//! achieved by numbering tree nodes in a random manner" (§2.1). This
//! module implements that as a bijection between *virtual* ranks (the
//! protocol's numbering, where all interleaving/gap guarantees live)
//! and *physical* ranks (where correlated failures strike): scattering
//! a physical block across the virtual ring turns one `m`-sized gap
//! into `m` unit gaps.
//!
//! [`RotatedProcess`](super::rotate::RotatedProcess) is the special case
//! of a cyclic relabeling (different root, correlations preserved).

use std::sync::Arc;

use ct_logp::{Rank, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{ColoredVia, Payload, Process, SendPoll};

/// A virtual↔physical rank bijection shared by all `P` processes.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// `to_physical[v]` = physical rank running virtual rank `v`.
    to_physical: Arc<Vec<Rank>>,
    /// `to_virtual[r]` = virtual rank run by physical rank `r`.
    to_virtual: Arc<Vec<Rank>>,
}

impl Relabeling {
    /// Build from an explicit virtual→physical table.
    ///
    /// # Panics
    /// Panics if `to_physical` is not a permutation of `0..P`.
    pub fn from_table(to_physical: Vec<Rank>) -> Relabeling {
        let p = to_physical.len();
        let mut to_virtual = vec![u32::MAX; p];
        for (v, &phys) in to_physical.iter().enumerate() {
            assert!((phys as usize) < p, "physical rank out of range");
            assert_eq!(
                to_virtual[phys as usize],
                u32::MAX,
                "duplicate physical rank"
            );
            to_virtual[phys as usize] = v as Rank;
        }
        Relabeling {
            to_physical: Arc::new(to_physical),
            to_virtual: Arc::new(to_virtual),
        }
    }

    /// Uniformly random numbering with the virtual root pinned to the
    /// physical `root` (the initiator must keep its role).
    pub fn random(p: u32, root: Rank, seed: u64) -> Relabeling {
        assert!(root < p);
        let mut table: Vec<Rank> = (0..p).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        table.shuffle(&mut rng);
        // Pin virtual 0 to the physical root by one swap.
        let pos = table.iter().position(|&r| r == root).expect("root present");
        table.swap(0, pos);
        Relabeling::from_table(table)
    }

    /// Cyclic relabeling: virtual `v` ↔ physical `(v + root) mod P`.
    pub fn rotation(p: u32, root: Rank) -> Relabeling {
        assert!(root < p);
        Relabeling::from_table((0..p).map(|v| (v + root) % p).collect())
    }

    /// Number of processes.
    pub fn p(&self) -> u32 {
        self.to_physical.len() as u32
    }

    /// Physical rank of virtual `v`.
    #[inline]
    pub fn physical(&self, v: Rank) -> Rank {
        self.to_physical[v as usize]
    }

    /// Virtual rank of physical `r`.
    #[inline]
    pub fn virtual_of(&self, r: Rank) -> Rank {
        self.to_virtual[r as usize]
    }

    /// Translate a physical fault mask into the virtual numbering (the
    /// space where gaps are measured).
    pub fn virtual_mask(&self, physical_mask: &[bool]) -> Vec<bool> {
        assert_eq!(physical_mask.len(), self.to_physical.len());
        (0..self.p())
            .map(|v| physical_mask[self.physical(v) as usize])
            .collect()
    }
}

/// Wraps a virtual-rank protocol state machine for its physical host.
pub struct RelabeledProcess {
    inner: Box<dyn Process>,
    map: Relabeling,
}

impl RelabeledProcess {
    /// Wrap `inner` (the machine for some virtual rank) with the shared
    /// relabeling.
    pub fn new(inner: Box<dyn Process>, map: Relabeling) -> Self {
        RelabeledProcess { inner, map }
    }
}

impl Process for RelabeledProcess {
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time) {
        self.inner
            .on_message(self.map.virtual_of(from), payload, now);
    }

    fn poll_send(&mut self, now: Time) -> SendPoll {
        match self.inner.poll_send(now) {
            SendPoll::Now { to, payload } => SendPoll::Now {
                to: self.map.physical(to),
                payload,
            },
            other => other,
        }
    }

    fn colored_at(&self) -> Option<Time> {
        self.inner.colored_at()
    }

    fn colored_via(&self) -> Option<ColoredVia> {
        self.inner.colored_via()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_relabeling_is_a_root_pinned_bijection() {
        for seed in 0..10u64 {
            let map = Relabeling::random(64, 7, seed);
            assert_eq!(map.physical(0), 7, "virtual root on physical 7");
            assert_eq!(map.virtual_of(7), 0);
            for v in 0..64 {
                assert_eq!(map.virtual_of(map.physical(v)), v);
            }
        }
    }

    #[test]
    fn rotation_matches_modular_arithmetic() {
        let map = Relabeling::rotation(16, 5);
        for v in 0..16u32 {
            assert_eq!(map.physical(v), (v + 5) % 16);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Relabeling::random(256, 0, 1);
        let b = Relabeling::random(256, 0, 2);
        assert!((0..256).any(|v| a.physical(v) != b.physical(v)));
    }

    #[test]
    fn virtual_mask_translates_failures() {
        let map = Relabeling::from_table(vec![2, 0, 1]);
        // Physical 1 dead → virtual rank with physical(v) == 1 is v=2.
        let vm = map.virtual_mask(&[false, true, false]);
        assert_eq!(vm, vec![false, false, true]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_permutations() {
        let _ = Relabeling::from_table(vec![0, 0, 2]);
    }
}
