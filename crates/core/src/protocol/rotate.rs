//! Arbitrary broadcast roots via rank rotation.
//!
//! The paper fixes the root at rank 0 "without loss of generality" (§2)
//! — this module supplies the generality: a broadcast rooted at `root`
//! runs the rank-0 protocol on *virtual* ranks `v = (r - root) mod P`.
//! Rotation is an automorphism of the correction ring (it preserves all
//! ring distances), so every interleaving and gap property carries over
//! verbatim; only the physical addressing changes.

use ct_logp::{Rank, Time};

use super::{ColoredVia, Payload, Process, SendPoll};

/// Wraps a rank-0-rooted protocol state machine, translating between
/// physical and virtual ranks at the driver boundary.
pub struct RotatedProcess {
    inner: Box<dyn Process>,
    root: Rank,
    p: u32,
}

impl RotatedProcess {
    /// Wrap `inner` (built for the virtual rank of some physical rank)
    /// for a broadcast rooted at physical `root`.
    pub fn new(inner: Box<dyn Process>, root: Rank, p: u32) -> Self {
        assert!(root < p);
        RotatedProcess { inner, root, p }
    }

    /// Physical rank of virtual rank `v`.
    #[inline]
    pub fn to_physical(v: Rank, root: Rank, p: u32) -> Rank {
        debug_assert!(v < p && root < p);
        let x = v as u64 + root as u64;
        (x % p as u64) as Rank
    }

    /// Virtual rank of physical rank `r`.
    #[inline]
    pub fn to_virtual(r: Rank, root: Rank, p: u32) -> Rank {
        debug_assert!(r < p && root < p);
        let x = r as u64 + p as u64 - root as u64;
        (x % p as u64) as Rank
    }
}

impl Process for RotatedProcess {
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time) {
        self.inner
            .on_message(Self::to_virtual(from, self.root, self.p), payload, now);
    }

    fn poll_send(&mut self, now: Time) -> SendPoll {
        match self.inner.poll_send(now) {
            SendPoll::Now { to, payload } => SendPoll::Now {
                to: Self::to_physical(to, self.root, self.p),
                payload,
            },
            other => other,
        }
    }

    fn colored_at(&self) -> Option<Time> {
        self.inner.colored_at()
    }

    fn colored_via(&self) -> Option<ColoredVia> {
        self.inner.colored_via()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_translation_roundtrip() {
        for p in [1u32, 2, 7, 64] {
            for root in 0..p {
                for r in 0..p {
                    let v = RotatedProcess::to_virtual(r, root, p);
                    assert!(v < p);
                    assert_eq!(RotatedProcess::to_physical(v, root, p), r);
                }
                // The root maps to virtual rank 0.
                assert_eq!(RotatedProcess::to_virtual(root, root, p), 0);
                assert_eq!(RotatedProcess::to_physical(0, root, p), root);
            }
        }
    }

    #[test]
    fn rotation_preserves_ring_distances() {
        let p = 32u32;
        let root = 13u32;
        for a in 0..p {
            for b in 0..p {
                let (va, vb) = (
                    RotatedProcess::to_virtual(a, root, p),
                    RotatedProcess::to_virtual(b, root, p),
                );
                assert_eq!(
                    ct_logp::ring_gap_cw(a, b, p),
                    ct_logp::ring_gap_cw(va, vb, p)
                );
            }
        }
    }
}
