//! Transport-agnostic broadcast protocols.
//!
//! A broadcast instance is a vector of per-rank [`Process`] state
//! machines. The driver — the `ct-sim` LogP simulator or the
//! `ct-runtime` thread cluster — owns delivery and timing and obeys one
//! contract:
//!
//! * [`Process::on_message`] is invoked when a message has been fully
//!   received (LogP: arrival plus receive overhead `o`).
//! * [`Process::poll_send`] is invoked whenever the process's sender
//!   port is free: after start-up, after each completed send, after each
//!   delivered message, and at any requested [`SendPoll::WaitUntil`]
//!   time. A returned [`SendPoll::Now`] occupies the port for `o`.
//! * [`SendPoll::Idle`] means "nothing until another message arrives";
//!   [`SendPoll::Done`] is terminal.
//!
//! Because both drivers run the *same* state machines, the simulator and
//! the cluster implementation cannot diverge — mirroring the paper's
//! flogsim/dying-tree split without the code duplication.

pub mod ack_tree;
pub mod corrected;
pub mod relabel;
pub mod rotate;

use core::fmt;
use std::sync::Arc;

use crate::correction::CorrectionKind;
use crate::tree::{Tree, TreeError, TreeKind};
use ct_logp::{LogP, Rank, Time};

pub use ack_tree::AckTreeProcess;
pub use corrected::CorrectedTreeProcess;
pub use relabel::{RelabeledProcess, Relabeling};
pub use rotate::RotatedProcess;

/// The content of a broadcast message. The paper's payloads are small
/// (no segmentation, §2); what matters to the protocols is only the
/// message *kind*, so payload bytes are not modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Payload {
    /// Dissemination message along a tree edge.
    Tree,
    /// Gossip dissemination message carrying its round number.
    Gossip {
        /// Rounds already taken, incremented per hop (§4.4).
        round: u32,
    },
    /// Ring-correction message.
    Correction,
    /// Acknowledgment: child → parent in the ack-tree baseline, or a
    /// failure-proof delivery confirmation to a correction prober.
    Ack,
}

impl Payload {
    /// Does this payload color an uncolored receiver?
    pub fn colors(&self) -> bool {
        !matches!(self, Payload::Ack)
    }
}

/// How a process was first colored — used by metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoredVia {
    /// It is the root.
    Root,
    /// A dissemination (tree or gossip) message.
    Dissemination,
    /// A correction message.
    Correction,
}

/// Result of polling a process for its next send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendPoll {
    /// Send `payload` to `to` now.
    Now {
        /// Destination rank.
        to: Rank,
        /// Message kind.
        payload: Payload,
    },
    /// Nothing before this time; poll again then (and on any delivery).
    WaitUntil(Time),
    /// Nothing to send until another message is delivered.
    Idle,
    /// This process will never send again.
    Done,
}

/// One rank's protocol state machine.
pub trait Process: Send {
    /// Deliver a fully received message.
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time);

    /// Ask for the next send; the sender port is free at `now`.
    fn poll_send(&mut self, now: Time) -> SendPoll;

    /// When this process became colored, if it has.
    fn colored_at(&self) -> Option<Time>;

    /// How this process became colored, if it has.
    fn colored_via(&self) -> Option<ColoredVia>;
}

/// Context handed to a [`ProtocolFactory`].
#[derive(Clone, Copy, Debug)]
pub struct BuildCtx {
    /// Number of processes.
    pub p: u32,
    /// LogP parameters (trees and synchronized deadlines depend on them).
    pub logp: LogP,
    /// Seed for protocols with randomized behavior (gossip); tree
    /// protocols ignore it.
    pub seed: u64,
}

/// Anything that can instantiate a full set of per-rank processes.
pub trait ProtocolFactory {
    /// Stable label for experiment output.
    fn label(&self) -> String;

    /// Build the `P` state machines for one broadcast.
    fn build(&self, ctx: &BuildCtx) -> Result<Vec<Box<dyn Process>>, ProtocolError>;

    /// Build into an existing vector, reusing its backing storage.
    ///
    /// The default delegates to [`ProtocolFactory::build`] and moves the
    /// boxes over; factories whose per-rank machines are expensive to
    /// allocate may override this to rebuild in place. On error `out`
    /// is left empty.
    fn build_into(
        &self,
        ctx: &BuildCtx,
        out: &mut Vec<Box<dyn Process>>,
    ) -> Result<(), ProtocolError> {
        out.clear();
        match self.build(ctx) {
            Ok(procs) => {
                out.extend(procs);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Errors from protocol construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The underlying topology could not be built.
    Tree(TreeError),
    /// A configuration value is invalid (description inside).
    InvalidConfig(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Tree(e) => write!(f, "topology: {e}"),
            ProtocolError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<TreeError> for ProtocolError {
    fn from(e: TreeError) -> Self {
        ProtocolError::Tree(e)
    }
}

/// When correction begins relative to dissemination (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StartMode {
    /// All processes start correction at a pre-specified global time —
    /// the fault-free dissemination deadline unless overridden.
    Synchronized,
    /// Each process starts correction immediately after its own
    /// dissemination sends; correction messages may arrive *early*
    /// (before the tree message), in which case the receiver still
    /// forwards tree messages to its children.
    Overlapped,
}

impl fmt::Display for StartMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartMode::Synchronized => write!(f, "sync"),
            StartMode::Overlapped => write!(f, "overlap"),
        }
    }
}

/// Declarative description of a tree-based broadcast variant.
///
/// This is the main public entry point: pick a tree, a correction
/// algorithm and a start mode, then hand the spec to a driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BroadcastSpec {
    /// Dissemination topology.
    pub tree: TreeKind,
    /// Correction algorithm ([`CorrectionKind::None`] = fault-agnostic
    /// plain tree broadcast).
    pub correction: CorrectionKind,
    /// Synchronized or overlapped correction.
    pub mode: StartMode,
    /// Acknowledgment wave after dissemination (the traditional
    /// fault-tolerance baseline of §4.1). Mutually exclusive with
    /// correction.
    pub acked: bool,
    /// Override for the synchronized correction start; `None` uses the
    /// fault-free dissemination deadline.
    pub sync_start_override: Option<u64>,
    /// The broadcasting process. The paper fixes rank 0 "without loss
    /// of generality" (§2); any other root runs the same protocol under
    /// a rank rotation (an automorphism of the correction ring, so all
    /// interleaving and gap properties are preserved).
    pub root: Rank,
    /// Randomize the process numbering (§2.1): each run maps virtual
    /// ranks to physical processes by a seeded random bijection (derived
    /// from this base seed plus the run seed), de-correlating block
    /// failures on the ring. `None` keeps the linear numbering.
    pub shuffle_seed: Option<u64>,
}

impl BroadcastSpec {
    /// Corrected Tree broadcast with overlapped correction — the
    /// configuration the paper's prototype implements (§4.4).
    pub fn corrected_tree(tree: TreeKind, correction: CorrectionKind) -> BroadcastSpec {
        BroadcastSpec {
            tree,
            correction,
            mode: StartMode::Overlapped,
            acked: false,
            sync_start_override: None,
            root: 0,
            shuffle_seed: None,
        }
    }

    /// Corrected Tree broadcast with synchronized correction (the
    /// analysis configuration of §4.2).
    pub fn corrected_tree_sync(tree: TreeKind, correction: CorrectionKind) -> BroadcastSpec {
        BroadcastSpec {
            tree,
            correction,
            mode: StartMode::Synchronized,
            acked: false,
            sync_start_override: None,
            root: 0,
            shuffle_seed: None,
        }
    }

    /// Plain, fault-agnostic tree broadcast (no correction, no acks).
    pub fn plain_tree(tree: TreeKind) -> BroadcastSpec {
        BroadcastSpec {
            tree,
            correction: CorrectionKind::None,
            mode: StartMode::Overlapped,
            acked: false,
            sync_start_override: None,
            root: 0,
            shuffle_seed: None,
        }
    }

    /// Tree broadcast with the acknowledgment wave (§4.1 baseline).
    pub fn ack_tree(tree: TreeKind) -> BroadcastSpec {
        BroadcastSpec {
            tree,
            correction: CorrectionKind::None,
            mode: StartMode::Overlapped,
            acked: true,
            sync_start_override: None,
            root: 0,
            shuffle_seed: None,
        }
    }

    /// Same broadcast, rooted at `root` instead of rank 0.
    pub fn with_root(mut self, root: Rank) -> BroadcastSpec {
        self.root = root;
        self
    }

    /// Same broadcast with a randomized process numbering (§2.1) keyed
    /// off `seed` (combined with the per-run seed).
    pub fn with_shuffle(mut self, seed: u64) -> BroadcastSpec {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Build the shared topology for this spec. Served from the
    /// process-wide [`cache`](crate::tree::cache) — all repetitions of a
    /// campaign (and all campaigns sharing a shape) get one `Arc<Tree>`.
    pub fn build_tree(&self, p: u32, logp: &LogP) -> Result<Arc<Tree>, ProtocolError> {
        Ok(crate::tree::cache::cached(self.tree, p, logp)?)
    }
}

impl fmt::Display for BroadcastSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.acked {
            write!(f, "{}+ack", self.tree)?;
        } else if self.correction.is_none() {
            write!(f, "{}", self.tree)?;
        } else {
            write!(f, "{}+{}/{}", self.tree, self.correction, self.mode)?;
        }
        if self.root != 0 {
            write!(f, "@root{}", self.root)?;
        }
        Ok(())
    }
}

impl ProtocolFactory for BroadcastSpec {
    fn label(&self) -> String {
        self.to_string()
    }

    fn build(&self, ctx: &BuildCtx) -> Result<Vec<Box<dyn Process>>, ProtocolError> {
        if self.acked && !self.correction.is_none() {
            return Err(ProtocolError::InvalidConfig(
                "acknowledgments and correction are mutually exclusive".into(),
            ));
        }
        if self.root >= ctx.p {
            return Err(ProtocolError::InvalidConfig(format!(
                "root {} out of range for P = {}",
                self.root, ctx.p
            )));
        }
        let tree = self.build_tree(ctx.p, &ctx.logp)?;
        // Build the rank-0-rooted machines on virtual ranks.
        let mut virtual_procs: Vec<Box<dyn Process>> = if self.acked {
            (0..ctx.p)
                .map(|v| Box::new(AckTreeProcess::new(v, Arc::clone(&tree))) as Box<dyn Process>)
                .collect()
        } else {
            let sync_start = match self.mode {
                StartMode::Synchronized => match self.sync_start_override {
                    Some(t) => Some(Time::new(t)),
                    None => Some(crate::tree::cache::cached_deadline(
                        self.tree, ctx.p, &ctx.logp,
                    )?),
                },
                StartMode::Overlapped => None,
            };
            (0..ctx.p)
                .map(|v| {
                    Box::new(CorrectedTreeProcess::new(
                        v,
                        Arc::clone(&tree),
                        self.correction,
                        sync_start,
                    )) as Box<dyn Process>
                })
                .collect()
        };
        let map = match self.shuffle_seed {
            Some(base) => Some(relabel::Relabeling::random(
                ctx.p,
                self.root,
                base.wrapping_add(ctx.seed),
            )),
            None if self.root != 0 => Some(relabel::Relabeling::rotation(ctx.p, self.root)),
            None => None,
        };
        let Some(map) = map else {
            return Ok(virtual_procs);
        };
        // Physical rank map.physical(v) runs virtual rank v.
        let mut physical: Vec<Option<Box<dyn Process>>> = (0..ctx.p).map(|_| None).collect();
        for v in (0..ctx.p).rev() {
            let inner = virtual_procs.pop().expect("one per virtual rank");
            let phys = map.physical(v);
            physical[phys as usize] =
                Some(Box::new(relabel::RelabeledProcess::new(inner, map.clone())));
        }
        Ok(physical
            .into_iter()
            .map(|p| p.expect("relabeling is a bijection"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Ordering;

    #[test]
    fn payload_coloring() {
        assert!(Payload::Tree.colors());
        assert!(Payload::Correction.colors());
        assert!(Payload::Gossip { round: 3 }.colors());
        assert!(!Payload::Ack.colors());
    }

    #[test]
    fn spec_labels() {
        let spec = BroadcastSpec::corrected_tree(
            TreeKind::BINOMIAL,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        assert_eq!(
            spec.label(),
            "binomial/interleaved+opportunistic-opt(d=4)/overlap"
        );
        assert_eq!(
            BroadcastSpec::ack_tree(TreeKind::LAME2).label(),
            "lame2/interleaved+ack"
        );
        assert_eq!(
            BroadcastSpec::plain_tree(TreeKind::FOUR_ARY).label(),
            "4-ary/interleaved"
        );
    }

    #[test]
    fn build_produces_p_processes() {
        let ctx = BuildCtx {
            p: 33,
            logp: LogP::PAPER,
            seed: 1,
        };
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        let procs = spec.build(&ctx).unwrap();
        assert_eq!(procs.len(), 33);
        // Only the root is colored initially.
        assert_eq!(procs[0].colored_via(), Some(ColoredVia::Root));
        assert!(procs[1..].iter().all(|p| p.colored_at().is_none()));
    }

    #[test]
    fn acked_with_correction_is_rejected() {
        let ctx = BuildCtx {
            p: 8,
            logp: LogP::PAPER,
            seed: 0,
        };
        let spec = BroadcastSpec {
            tree: TreeKind::BINOMIAL,
            correction: CorrectionKind::Checked,
            mode: StartMode::Overlapped,
            acked: true,
            sync_start_override: None,
            root: 0,
            shuffle_seed: None,
        };
        assert!(matches!(
            spec.build(&ctx),
            Err(ProtocolError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_tree_propagates() {
        let ctx = BuildCtx {
            p: 8,
            logp: LogP::PAPER,
            seed: 0,
        };
        let spec = BroadcastSpec::plain_tree(TreeKind::Kary {
            k: 0,
            order: Ordering::Interleaved,
        });
        match spec.build(&ctx) {
            Err(ProtocolError::Tree(TreeError::ZeroArity)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("build must fail"),
        }
    }
}
