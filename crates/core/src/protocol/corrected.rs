//! The Corrected Tree broadcast state machine (§3).
//!
//! Per-rank behavior:
//!
//! 1. **Dissemination** — once colored by a tree message (the root is
//!    born colored), send the payload to all tree children, one per
//!    sender-port slot.
//! 2. **Correction** — afterwards, if the process was colored by
//!    dissemination, run the configured correction machine: immediately
//!    (overlapped) or from the pre-specified global start time
//!    (synchronized).
//!
//! Reliability bookkeeping follows §2.1: a colored process never becomes
//! uncolored and masks duplicate payloads (*no duplicates*); an
//! uncolored process only becomes colored by a message from a colored
//! process (*integrity*). Processes colored *by correction* send no
//! correction messages; in overlapped mode an *early* correction message
//! (arriving before the tree message) still triggers tree forwarding to
//! the process's children (§3.3), which shortens coloring.

use std::collections::VecDeque;
use std::sync::Arc;

use ct_logp::{Rank, Time};

use crate::correction::{CorrPoll, Correction, CorrectionKind};
use crate::tree::{Topology, Tree};

use super::{ColoredVia, Payload, Process, SendPoll};

/// State machine for one rank of a (corrected) tree broadcast.
pub struct CorrectedTreeProcess {
    rank: Rank,
    tree: Arc<Tree>,
    corr_kind: CorrectionKind,
    /// `Some(t)` = synchronized correction starting at `t`;
    /// `None` = overlapped.
    sync_start: Option<Time>,
    colored_at: Option<Time>,
    colored_via: Option<ColoredVia>,
    /// Tree-forwarding progress; active while `sending_tree`.
    next_child: usize,
    sending_tree: bool,
    /// Correction machine, created lazily after dissemination sends.
    machine: Option<Box<dyn Correction>>,
    machine_done: bool,
    /// Correction messages received before the machine existed.
    pending_corr: Vec<(Rank, Time)>,
    /// Failure-proof acknowledgments owed (correction-colored processes
    /// reply once per distinct prober).
    replies: VecDeque<Rank>,
    replied_to: Vec<Rank>,
    done: bool,
}

impl CorrectedTreeProcess {
    /// Create the machine for `rank`. `sync_start` selects synchronized
    /// (`Some(global start)`) vs overlapped (`None`) correction.
    pub fn new(
        rank: Rank,
        tree: Arc<Tree>,
        corr_kind: CorrectionKind,
        sync_start: Option<Time>,
    ) -> Self {
        let is_root = rank == 0;
        CorrectedTreeProcess {
            rank,
            tree,
            corr_kind,
            sync_start,
            colored_at: is_root.then_some(Time::ZERO),
            colored_via: is_root.then_some(ColoredVia::Root),
            next_child: 0,
            sending_tree: is_root,
            machine: None,
            machine_done: false,
            pending_corr: Vec::new(),
            replies: VecDeque::new(),
            replied_to: Vec::new(),
            done: false,
        }
    }

    /// Does this process take part in the correction phase? Only
    /// processes colored by dissemination (or the root) send correction
    /// messages (§3.1).
    fn participates_in_correction(&self) -> bool {
        !self.corr_kind.is_none()
            && matches!(
                self.colored_via,
                Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)
            )
    }

    fn color(&mut self, via: ColoredVia, now: Time) {
        debug_assert!(self.colored_at.is_none());
        self.colored_at = Some(now);
        self.colored_via = Some(via);
    }

    fn ensure_machine(&mut self, now: Time) {
        if self.machine.is_some() || self.machine_done {
            return;
        }
        let start = self.sync_start.unwrap_or(now);
        let mut machine = self
            .corr_kind
            .machine(self.rank, self.tree.num_processes(), start)
            .expect("participating implies a correction kind");
        for (from, t) in self.pending_corr.drain(..) {
            machine.on_correction(from, t);
        }
        self.machine = Some(machine);
    }
}

impl Process for CorrectedTreeProcess {
    fn on_message(&mut self, from: Rank, payload: Payload, now: Time) {
        match payload {
            Payload::Tree | Payload::Gossip { .. } => {
                if self.colored_at.is_none() {
                    self.color(ColoredVia::Dissemination, now);
                    self.sending_tree = true;
                    self.done = false;
                }
                // Colored already: duplicate masked (§2.1) — tree
                // forwarding is in progress or finished either way.
            }
            Payload::Correction => {
                if self.colored_at.is_none() {
                    self.color(ColoredVia::Correction, now);
                    // Early correction (§3.3, overlapped only): the
                    // payload arrived, so forward it along tree edges.
                    if self.sync_start.is_none() {
                        self.sending_tree = true;
                        self.done = false;
                    }
                }
                match self.colored_via {
                    Some(ColoredVia::Correction) => {
                        // Not participating; failure-proof correction
                        // makes us acknowledge each distinct prober once.
                        // The acknowledgment is a *delivery confirmation*
                        // (Payload::Ack), deliberately not a correction
                        // message: hearing an ack proves the probe
                        // arrived, not that anything beyond the sender
                        // is covered, so it must not trigger the checked
                        // stop rule.
                        if self.corr_kind.replies_when_correction_colored()
                            && from != self.rank
                            && !self.replied_to.contains(&from)
                        {
                            self.replied_to.push(from);
                            self.replies.push_back(from);
                            self.done = false;
                        }
                    }
                    _ => {
                        // Participating: feed the machine (or buffer until
                        // it exists).
                        if let Some(m) = self.machine.as_mut() {
                            m.on_correction(from, now);
                        } else if !self.machine_done {
                            self.pending_corr.push((from, now));
                        }
                    }
                }
            }
            Payload::Ack => {
                // Failure-proof delivery confirmation. Under the paper's
                // fault model (processes are dead or alive for the whole
                // broadcast, §2.1) a confirmed delivery carries no
                // decision-relevant information — the probing discipline
                // already terminates — so it is accounted and dropped.
            }
        }
    }

    fn poll_send(&mut self, now: Time) -> SendPoll {
        if self.done {
            return SendPoll::Done;
        }
        // Failure-proof acknowledgments first.
        if let Some(to) = self.replies.pop_front() {
            return SendPoll::Now {
                to,
                payload: Payload::Ack,
            };
        }
        if self.colored_at.is_none() {
            return SendPoll::Idle;
        }
        if self.sending_tree {
            let children = self.tree.children(self.rank);
            if self.next_child < children.len() {
                let to = children[self.next_child];
                self.next_child += 1;
                return SendPoll::Now {
                    to,
                    payload: Payload::Tree,
                };
            }
            self.sending_tree = false;
        }
        if self.participates_in_correction() && !self.machine_done {
            self.ensure_machine(now);
            let poll = self
                .machine
                .as_mut()
                .expect("machine just ensured")
                .poll(now);
            return match poll {
                CorrPoll::Send(to) => SendPoll::Now {
                    to,
                    payload: Payload::Correction,
                },
                CorrPoll::WaitUntil(t) => SendPoll::WaitUntil(t),
                CorrPoll::Idle => SendPoll::Idle,
                CorrPoll::Done => {
                    self.machine = None;
                    self.machine_done = true;
                    self.done = true;
                    SendPoll::Done
                }
            };
        }
        // Colored, nothing left to do. Correction-colored processes under
        // failure-proof correction may still owe future replies.
        if self.corr_kind.replies_when_correction_colored()
            && self.colored_via == Some(ColoredVia::Correction)
        {
            SendPoll::Idle
        } else {
            self.done = true;
            SendPoll::Done
        }
    }

    fn colored_at(&self) -> Option<Time> {
        self.colored_at
    }

    fn colored_via(&self) -> Option<ColoredVia> {
        self.colored_via
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeKind;
    use ct_logp::LogP;

    fn tree(p: u32) -> Arc<Tree> {
        Arc::new(TreeKind::BINOMIAL.build(p, &LogP::PAPER).unwrap())
    }

    fn drain_now(proc_: &mut CorrectedTreeProcess, now: Time) -> Vec<(Rank, Payload)> {
        let mut out = Vec::new();
        loop {
            match proc_.poll_send(now) {
                SendPoll::Now { to, payload } => out.push((to, payload)),
                _ => return out,
            }
        }
    }

    #[test]
    fn root_sends_tree_then_correction() {
        let mut root = CorrectedTreeProcess::new(
            0,
            tree(8),
            CorrectionKind::Opportunistic { distance: 1 },
            None,
        );
        let sent = drain_now(&mut root, Time::ZERO);
        assert_eq!(
            sent,
            vec![
                (1, Payload::Tree),
                (2, Payload::Tree),
                (4, Payload::Tree),
                (1, Payload::Correction),
                (7, Payload::Correction),
            ]
        );
        assert_eq!(root.poll_send(Time::ZERO), SendPoll::Done);
        assert_eq!(root.colored_via(), Some(ColoredVia::Root));
    }

    #[test]
    fn uncolored_process_is_idle_and_duplicates_are_masked() {
        let mut p5 = CorrectedTreeProcess::new(5, tree(8), CorrectionKind::None, None);
        assert_eq!(p5.poll_send(Time::ZERO), SendPoll::Idle);
        assert_eq!(p5.colored_at(), None);
        p5.on_message(1, Payload::Tree, Time::new(4));
        assert_eq!(p5.colored_at(), Some(Time::new(4)));
        p5.on_message(1, Payload::Tree, Time::new(9));
        assert_eq!(p5.colored_at(), Some(Time::new(4)), "first coloring wins");
    }

    #[test]
    fn plain_tree_leaf_finishes_after_coloring() {
        let mut p7 = CorrectedTreeProcess::new(7, tree(8), CorrectionKind::None, None);
        p7.on_message(3, Payload::Tree, Time::new(8));
        assert_eq!(p7.poll_send(Time::new(8)), SendPoll::Done);
    }

    #[test]
    fn correction_colored_sends_no_correction() {
        // Overlapped: rank 3 colored by a correction message — it must
        // forward tree messages (early correction) but never correct.
        let mut p3 = CorrectedTreeProcess::new(3, tree(8), CorrectionKind::Checked, None);
        p3.on_message(4, Payload::Correction, Time::new(5));
        assert_eq!(p3.colored_via(), Some(ColoredVia::Correction));
        let sent = drain_now(&mut p3, Time::new(5));
        assert_eq!(sent, vec![(7, Payload::Tree)], "tree forwarding only");
        assert_eq!(p3.poll_send(Time::new(6)), SendPoll::Done);
    }

    #[test]
    fn synchronized_correction_colored_does_not_forward() {
        let t = tree(8);
        let start = t.dissemination_deadline(&LogP::PAPER);
        let mut p3 = CorrectedTreeProcess::new(3, t, CorrectionKind::Checked, Some(start));
        p3.on_message(2, Payload::Correction, start + 3);
        assert_eq!(p3.colored_via(), Some(ColoredVia::Correction));
        assert_eq!(p3.poll_send(start + 3), SendPoll::Done);
    }

    #[test]
    fn synchronized_participant_waits_for_global_start() {
        let t = tree(8);
        let start = Time::new(40);
        let mut p3 = CorrectedTreeProcess::new(3, t, CorrectionKind::Checked, Some(start));
        p3.on_message(1, Payload::Tree, Time::new(6));
        // Tree child of 3 is 7.
        assert_eq!(
            p3.poll_send(Time::new(6)),
            SendPoll::Now {
                to: 7,
                payload: Payload::Tree
            }
        );
        assert_eq!(p3.poll_send(Time::new(7)), SendPoll::WaitUntil(start));
        assert_eq!(
            p3.poll_send(start),
            SendPoll::Now {
                to: 2,
                payload: Payload::Correction
            }
        );
    }

    #[test]
    fn early_corrections_buffered_for_late_machine() {
        // Overlapped, optimized opportunistic d=4: a correction from 5
        // (right, gap 2) arrives while rank 3 is still tree-forwarding;
        // the machine must still honor it (left targets trimmed).
        let mut p3 = CorrectedTreeProcess::new(
            3,
            tree(8),
            CorrectionKind::OpportunisticOptimized { distance: 4 },
            None,
        );
        p3.on_message(1, Payload::Tree, Time::new(4));
        p3.on_message(5, Payload::Correction, Time::new(4));
        let sent = drain_now(&mut p3, Time::new(4));
        // Tree child 7 first; then correction with the left side trimmed:
        // 5 covers ranks {4, 3, 2, 1} so left offsets 1–2 are skipped and
        // only offsets 3, 4 (ranks 0, 7) remain, interleaved with the
        // untrimmed right side (4, 5, 6, 7).
        assert_eq!(sent[0], (7, Payload::Tree));
        let corr: Vec<Rank> = sent[1..]
            .iter()
            .map(|&(to, p)| {
                assert_eq!(p, Payload::Correction);
                to
            })
            .collect();
        assert_eq!(corr, vec![4, 0, 5, 7, 6, 7]);
    }

    #[test]
    fn failure_proof_correction_colored_replies_once_per_prober() {
        let mut p3 = CorrectedTreeProcess::new(3, tree(8), CorrectionKind::FailureProof, None);
        p3.on_message(1, Payload::Correction, Time::new(9));
        assert_eq!(p3.colored_via(), Some(ColoredVia::Correction));
        let sent = drain_now(&mut p3, Time::new(9));
        // Tree forwarding (early correction) plus the ack to prober 1.
        assert!(sent.contains(&(1, Payload::Ack)), "{sent:?}");
        // Duplicate probe from 1: no second reply.
        p3.on_message(1, Payload::Correction, Time::new(12));
        assert_eq!(p3.poll_send(Time::new(12)), SendPoll::Idle);
        // A different prober gets its own reply.
        p3.on_message(2, Payload::Correction, Time::new(13));
        assert_eq!(
            p3.poll_send(Time::new(13)),
            SendPoll::Now {
                to: 2,
                payload: Payload::Ack
            }
        );
    }

    #[test]
    fn checked_participant_runs_to_completion() {
        let mut p3 = CorrectedTreeProcess::new(3, tree(8), CorrectionKind::Checked, None);
        p3.on_message(1, Payload::Tree, Time::new(4));
        // Feed neighbor messages so checked correction can stop.
        p3.on_message(2, Payload::Correction, Time::new(5));
        p3.on_message(4, Payload::Correction, Time::new(5));
        let sent = drain_now(&mut p3, Time::new(5));
        assert_eq!(
            sent,
            vec![
                (7, Payload::Tree),
                (2, Payload::Correction),
                (4, Payload::Correction),
            ]
        );
        assert_eq!(p3.poll_send(Time::new(6)), SendPoll::Done);
    }
}
