//! # ct-core — Corrected Trees
//!
//! The paper's primary contribution (Küttler et al., PPoPP'19): reliable
//! low-latency broadcast built from two phases,
//!
//! 1. **dissemination** over a tree ([`tree`]) — fast but fault-agnostic;
//! 2. **correction** over a ring ([`correction`]) — colors every live
//!    process the tree missed.
//!
//! The key insight is a *renumbering* one: if the tree is **interleaved**
//! (Definition 1, [`tree::interleaving`]), any process failure leaves only
//! small, scattered gaps of unreached processes on the correction ring, so
//! correction stays cheap regardless of where the fault hits.
//!
//! [`protocol`] assembles trees and correction algorithms into complete,
//! transport-agnostic broadcast state machines that are driven identically
//! by the `ct-sim` LogP simulator and the `ct-runtime` thread cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correction;
pub mod protocol;
pub mod reduce;
pub mod tree;

pub use correction::CorrectionKind;
pub use protocol::BroadcastSpec;
pub use tree::{Topology, Tree, TreeKind};
