//! Failure-proof correction.
//!
//! The paper introduces this as "a generalization of checked correction
//! that guarantees each process to be colored even in the presence of
//! failures during correction" and defers the details to Corrected
//! Gossip \[17\] because of "its complexity and high overhead" (§3.1).
//!
//! Our reconstruction keeps checked correction's probing discipline
//! unchanged and adds *delivery acknowledgments*: a correction-colored
//! process confirms each distinct prober once (the protocol layer sends
//! these as [`Payload::Ack`], see
//! [`CorrectionKind::replies_when_correction_colored`]). Crucially the
//! acknowledgment is **not** a correction message and never feeds the
//! checked stop rule — an ack proves the probe *arrived*, not that
//! anything beyond its sender is covered. (The test suite's property
//! checks caught exactly that unsoundness in an earlier design: a
//! prober that stops on the first ack strands the middle of a large
//! gap.)
//!
//! Under the paper's fault model (processes are dead or alive for the
//! whole broadcast, §2.1) the acknowledgments carry no decision-relevant
//! information, so coloring behavior coincides with checked correction
//! while paying the extra traffic — exactly how the paper characterizes
//! failure-proof correction. In a model with mid-broadcast failures the
//! acks are the raw material for retransmission decisions, which is the
//! complexity the paper (and this reproduction) leaves out of scope.
//!
//! [`CorrectionKind::replies_when_correction_colored`]: super::CorrectionKind::replies_when_correction_colored
//! [`Payload::Ack`]: crate::protocol::Payload::Ack

use ct_logp::{Rank, Time};

use super::checked::CheckedCorrection;
use super::{CorrPoll, Correction};

/// Checked-correction probing plus acknowledgment semantics (the acks
/// themselves are issued by the protocol layer for correction-colored
/// processes; this machine runs on dissemination-colored ones and is
/// driven only by genuine correction messages).
#[derive(Debug, Clone)]
pub struct FailureProofCorrection {
    inner: CheckedCorrection,
}

impl FailureProofCorrection {
    /// Create the machine for `rank` of `p`, first send not before
    /// `start`.
    pub fn new(rank: Rank, p: u32, start: Time) -> Self {
        FailureProofCorrection {
            inner: CheckedCorrection::new(rank, p, start),
        }
    }
}

impl Correction for FailureProofCorrection {
    fn on_correction(&mut self, from: Rank, now: Time) {
        self.inner.on_correction(from, now);
    }

    fn poll(&mut self, now: Time) -> CorrPoll {
        self.inner.poll(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probing_matches_checked_correction() {
        let mut fp = FailureProofCorrection::new(23, 64, Time::ZERO);
        let mut ck = CheckedCorrection::new(23, 64, Time::ZERO);
        for from in [19u32, 28] {
            fp.on_correction(from, Time::ZERO);
            ck.on_correction(from, Time::ZERO);
        }
        loop {
            let a = fp.poll(Time::ZERO);
            let b = ck.poll(Time::ZERO);
            assert_eq!(a, b);
            if a == CorrPoll::Done {
                break;
            }
        }
    }

    #[test]
    fn correction_messages_bound_directions_like_checked() {
        // Genuine correction messages (from dissemination-colored
        // participants) stop the probe exactly as in checked correction.
        let mut fp = FailureProofCorrection::new(0, 32, Time::ZERO);
        let mut sent = Vec::new();
        for _ in 0..6 {
            match fp.poll(Time::ZERO) {
                CorrPoll::Send(t) => sent.push(t),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(sent, vec![31, 1, 30, 2, 29, 3]);
        fp.on_correction(3, Time::ZERO);
        fp.on_correction(29, Time::ZERO);
        assert_eq!(fp.poll(Time::ZERO), CorrPoll::Done);
    }
}
