//! Ring-correction algorithms (§3.1, §3.3).
//!
//! After dissemination, all processes colored *by dissemination* send
//! correction messages to ring neighbors so that every live process the
//! tree missed still gets the payload. Processes colored *by correction*
//! stay silent (except for tree forwarding on early correction in
//! overlapped mode, handled by the protocol layer).
//!
//! Each algorithm is a small pull-model state machine ([`Correction`]):
//! the driver (protocol layer) feeds it received correction messages and
//! polls it for the next target whenever the sender port is free. The
//! machines are transport-agnostic and identical under the LogP
//! simulator and the thread-cluster runtime.
//!
//! | kind | messages (fault-free) | guarantee |
//! |---|---|---|
//! | [`OpportunisticCorrection`] | `2d` per process | colors all iff `g_max ≤ 2d` |
//! | optimized opportunistic | `≤ 2d` | same, fewer messages (§3.3) |
//! | [`CheckedCorrection`] | `3 + ⌊L/o⌋` synchronized | all live colored for any `g_max`, if no failures during correction |
//! | [`FailureProofCorrection`] | more | all live colored even with failures during correction |
//! | [`DelayedCorrection`] | 1 + reply | minimal messages, latency penalty on faults (§3.3) |

pub mod checked;
pub mod delayed;
pub mod failure_proof;
pub mod opportunistic;
pub mod paced;

use core::fmt;

pub use checked::CheckedCorrection;
use ct_logp::{LogP, Rank, Time};
pub use delayed::DelayedCorrection;
pub use failure_proof::FailureProofCorrection;
pub use opportunistic::OpportunisticCorrection;
pub use paced::PacedCheckedCorrection;

/// A direction on the correction ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Descending ranks (`r-1, r-2, …`).
    Left,
    /// Ascending ranks (`r+1, r+2, …`).
    Right,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
        }
    }
}

/// Which correction algorithm a broadcast uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CorrectionKind {
    /// No correction: plain, fault-agnostic tree broadcast.
    None,
    /// Opportunistic with correction distance `d` (§3.1): `d` messages
    /// in each direction, unconditionally.
    Opportunistic {
        /// Correction distance `d ≥ 1`.
        distance: u32,
    },
    /// Optimized opportunistic (§3.3): skips targets provably covered by
    /// a correction message already received from the other side. The
    /// paper's default for Corrected Trees.
    OpportunisticOptimized {
        /// Correction distance `d ≥ 1`.
        distance: u32,
    },
    /// Checked correction (§3.1): keep alternating left/right at
    /// increasing distance until a message arrives from each direction
    /// from a process already sent to.
    Checked,
    /// Checked correction with the discrete-model probe schedule
    /// enforced causally ([`PacedCheckedCorrection`]): fault-free
    /// synchronized runs send exactly `3 + lag` messages per process
    /// (Corollary 1 with `lag = ⌈L/o⌉`) on any driver, discrete-event
    /// or wall-clock. Built by [`CorrectionKind::checked_paced`].
    CheckedPaced {
        /// `⌈L/o⌉` of the LogP model the count is provisioned for.
        lag: u32,
        /// Arrival-gate fallback in [`Time`] units (only consulted when
        /// an expected handshake neighbor is dead or silent).
        fallback: u64,
    },
    /// Failure-proof correction: generalized checked correction in which
    /// correction-colored processes acknowledge, so senders converge
    /// even when processes fail *during* correction. (The paper defers
    /// details to Corrected Gossip; this is our faithful-overhead
    /// reconstruction, see DESIGN.md.)
    FailureProof,
    /// Delayed correction (§3.3): one left message, then probe rightward
    /// only if no message arrived from the right within `delay` steps.
    Delayed {
        /// Steps to wait before suspecting the right side is uncolored.
        delay: u64,
    },
}

impl CorrectionKind {
    /// Paced checked correction provisioned for `logp`: the fault-free
    /// synchronized count is `3 + ⌈L/o⌉` per process, exactly
    /// [`ct_logp`]'s discrete model (Corollary 1).
    pub fn checked_paced(logp: &LogP, fallback: u64) -> CorrectionKind {
        CorrectionKind::CheckedPaced {
            lag: logp.l().div_ceil(logp.o()) as u32,
            fallback,
        }
    }

    /// Does this kind participate in the correction phase at all?
    pub fn is_none(&self) -> bool {
        matches!(self, CorrectionKind::None)
    }

    /// Do correction-colored processes send a reply/acknowledgment?
    /// Only failure-proof correction requires this.
    pub fn replies_when_correction_colored(&self) -> bool {
        matches!(self, CorrectionKind::FailureProof)
    }

    /// Instantiate the state machine for `rank` in a ring of `p`
    /// processes, starting (i.e. allowed to send) at `start`.
    pub fn machine(&self, rank: Rank, p: u32, start: Time) -> Option<Box<dyn Correction>> {
        match *self {
            CorrectionKind::None => None,
            CorrectionKind::Opportunistic { distance } => Some(Box::new(
                OpportunisticCorrection::new(rank, p, distance, start, false),
            )),
            CorrectionKind::OpportunisticOptimized { distance } => Some(Box::new(
                OpportunisticCorrection::new(rank, p, distance, start, true),
            )),
            CorrectionKind::Checked => Some(Box::new(CheckedCorrection::new(rank, p, start))),
            CorrectionKind::CheckedPaced { lag, fallback } => Some(Box::new(
                PacedCheckedCorrection::new(rank, p, start, lag, fallback),
            )),
            CorrectionKind::FailureProof => {
                Some(Box::new(FailureProofCorrection::new(rank, p, start)))
            }
            CorrectionKind::Delayed { delay } => {
                Some(Box::new(DelayedCorrection::new(rank, p, delay, start)))
            }
        }
    }
}

impl fmt::Display for CorrectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectionKind::None => write!(f, "none"),
            CorrectionKind::Opportunistic { distance } => {
                write!(f, "opportunistic(d={distance})")
            }
            CorrectionKind::OpportunisticOptimized { distance } => {
                write!(f, "opportunistic-opt(d={distance})")
            }
            CorrectionKind::Checked => write!(f, "checked"),
            CorrectionKind::CheckedPaced { lag, .. } => write!(f, "checked-paced(lag={lag})"),
            CorrectionKind::FailureProof => write!(f, "failure-proof"),
            CorrectionKind::Delayed { delay } => write!(f, "delayed({delay})"),
        }
    }
}

/// What a correction machine wants to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorrPoll {
    /// Send a correction message to this rank now.
    Send(Rank),
    /// Nothing to send before this time; poll again then.
    WaitUntil(Time),
    /// Nothing to send until another message is received.
    Idle,
    /// This machine will never send again.
    Done,
}

/// A correction state machine for one dissemination-colored process.
pub trait Correction: Send {
    /// A correction message from `from` arrived (processing finished) at
    /// `now`.
    fn on_correction(&mut self, from: Rank, now: Time);

    /// Next action, given that the sender port is free at `now`.
    fn poll(&mut self, now: Time) -> CorrPoll;
}

/// Classify the ring direction of a message from `from` as seen by `me`:
/// the side on which `from` is nearer. Ties (`p` even, antipodal
/// sender) count as both sides and are reported as `None`.
pub fn direction_of(me: Rank, from: Rank, p: u32) -> Option<Direction> {
    let right = ct_logp::ring_gap_cw(me, from, p);
    let left = ct_logp::ring_gap_ccw(me, from, p);
    match right.cmp(&left) {
        core::cmp::Ordering::Less => Some(Direction::Right),
        core::cmp::Ordering::Greater => Some(Direction::Left),
        core::cmp::Ordering::Equal => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert_eq!(direction_of(5, 6, 16), Some(Direction::Right));
        assert_eq!(direction_of(5, 4, 16), Some(Direction::Left));
        assert_eq!(direction_of(0, 15, 16), Some(Direction::Left));
        assert_eq!(direction_of(15, 0, 16), Some(Direction::Right));
        // Antipodal tie.
        assert_eq!(direction_of(0, 8, 16), None);
        assert_eq!(direction_of(0, 7, 16), Some(Direction::Right));
        assert_eq!(direction_of(0, 9, 16), Some(Direction::Left));
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Direction::Left.flip(), Direction::Right);
        assert_eq!(Direction::Right.flip().flip(), Direction::Right);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(CorrectionKind::None.to_string(), "none");
        assert_eq!(
            CorrectionKind::Opportunistic { distance: 2 }.to_string(),
            "opportunistic(d=2)"
        );
        assert_eq!(
            CorrectionKind::OpportunisticOptimized { distance: 4 }.to_string(),
            "opportunistic-opt(d=4)"
        );
        assert_eq!(CorrectionKind::Checked.to_string(), "checked");
        assert_eq!(CorrectionKind::FailureProof.to_string(), "failure-proof");
        assert_eq!(
            CorrectionKind::Delayed { delay: 9 }.to_string(),
            "delayed(9)"
        );
    }

    #[test]
    fn machine_constructor_dispatch() {
        assert!(CorrectionKind::None.machine(0, 8, Time::ZERO).is_none());
        for kind in [
            CorrectionKind::Opportunistic { distance: 2 },
            CorrectionKind::OpportunisticOptimized { distance: 2 },
            CorrectionKind::Checked,
            CorrectionKind::FailureProof,
            CorrectionKind::Delayed { delay: 6 },
        ] {
            assert!(kind.machine(3, 8, Time::ZERO).is_some(), "{kind}");
        }
    }

    #[test]
    fn only_failure_proof_replies() {
        assert!(CorrectionKind::FailureProof.replies_when_correction_colored());
        assert!(!CorrectionKind::Checked.replies_when_correction_colored());
        assert!(!CorrectionKind::Opportunistic { distance: 1 }.replies_when_correction_colored());
    }
}
