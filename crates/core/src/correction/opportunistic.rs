//! Opportunistic correction (§3.1) and its optimized variant (§3.3).
//!
//! Plain: process `r` unconditionally sends to
//! `{r+1, r-1, r+2, r-2, …, r+d, r-d}`. All processes are colored iff
//! the maximum gap does not exceed `2d`.
//!
//! Optimized (the Corrected Trees default): receiving a correction
//! message from `j` on the right proves `j` is dissemination-colored and
//! will cover `j-1, …, j-d` itself, so the remaining left targets shrink
//! to `i-d, …, j-d-1` (paper example: `i = 19`, `j = 23`, `d = 8` ⇒ 19
//! only sends to `14, …, 11`). Symmetrically for the left. This
//! preserves non-faulty liveness because only dissemination-colored
//! processes send correction messages — a received message is a proof of
//! full coverage, never a promise.

use ct_logp::{ring_add, ring_gap_ccw, ring_gap_cw, ring_sub, Rank, Time};

use super::{CorrPoll, Correction};

/// State machine for (optimized) opportunistic correction.
#[derive(Debug, Clone)]
pub struct OpportunisticCorrection {
    rank: Rank,
    p: u32,
    /// Correction distance `d`.
    distance: u32,
    /// First time this machine may send (synchronized start or
    /// overlapped "now").
    start: Time,
    /// Next offset to send rightwards (ascending), 1-based.
    next_right: u32,
    /// Next offset to send leftwards.
    next_left: u32,
    /// Upper bounds (inclusive) on offsets still worth sending; plain
    /// opportunistic keeps these at `d`, the optimization lowers them.
    limit_right: u32,
    limit_left: u32,
    /// Whether the §3.3 optimization is active.
    optimized: bool,
    /// Alternation state: next poll prefers right (`{r+1, r-1, r+2, …}`).
    prefer_right: bool,
}

impl OpportunisticCorrection {
    /// Create the machine for `rank` of `p`, correction distance
    /// `distance ≥ 1`, first send not before `start`.
    pub fn new(rank: Rank, p: u32, distance: u32, start: Time, optimized: bool) -> Self {
        assert!(distance >= 1, "correction distance must be ≥ 1");
        assert!(p >= 1 && rank < p);
        // On a ring of p processes, offsets ≥ p wrap onto self/duplicates;
        // offsets i and p-i are the same target from both sides, which is
        // harmless (a duplicate delivery is masked) but pointless — cap
        // at p-1 so the machine never targets itself.
        let eff = distance.min(p.saturating_sub(1));
        OpportunisticCorrection {
            rank,
            p,
            distance: eff,
            start,
            next_right: 1,
            next_left: 1,
            limit_right: eff,
            limit_left: eff,
            optimized,
            prefer_right: true,
        }
    }

    fn right_exhausted(&self) -> bool {
        self.next_right > self.limit_right
    }

    fn left_exhausted(&self) -> bool {
        self.next_left > self.limit_left
    }
}

impl Correction for OpportunisticCorrection {
    fn on_correction(&mut self, from: Rank, _now: Time) {
        if !self.optimized || from == self.rank {
            return;
        }
        let d = self.distance;
        // Sender to the right at cw-gap g ≤ d covers my left offsets
        // 1 ..= d - g (ranks down to from - d), so skip those.
        let g_right = ring_gap_cw(self.rank, from, self.p);
        if g_right > 0 && g_right <= d {
            self.next_left = self.next_left.max(d - g_right + 1);
        }
        // Symmetrically for a sender on the left.
        let g_left = ring_gap_ccw(self.rank, from, self.p);
        if g_left > 0 && g_left <= d {
            self.next_right = self.next_right.max(d - g_left + 1);
        }
    }

    fn poll(&mut self, now: Time) -> CorrPoll {
        if now < self.start {
            return CorrPoll::WaitUntil(self.start);
        }
        if self.p <= 1 || (self.right_exhausted() && self.left_exhausted()) {
            return CorrPoll::Done;
        }
        // Alternate {+1, -1, +2, -2, …}, skipping exhausted directions.
        let go_right = if self.right_exhausted() {
            false
        } else if self.left_exhausted() {
            true
        } else {
            self.prefer_right
        };
        let target = if go_right {
            let t = ring_add(self.rank, self.next_right, self.p);
            self.next_right += 1;
            self.prefer_right = false;
            t
        } else {
            let t = ring_sub(self.rank, self.next_left, self.p);
            self.next_left += 1;
            self.prefer_right = true;
            t
        };
        CorrPoll::Send(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(m: &mut OpportunisticCorrection, now: Time) -> Vec<Rank> {
        let mut out = Vec::new();
        loop {
            match m.poll(now) {
                CorrPoll::Send(t) => out.push(t),
                CorrPoll::Done => break,
                other => panic!("unexpected poll result {other:?}"),
            }
        }
        out
    }

    #[test]
    fn plain_sends_paper_order() {
        // {r+1, r-1, r+2, r-2, …, r+d, r-d}
        let mut m = OpportunisticCorrection::new(10, 32, 3, Time::ZERO, false);
        assert_eq!(drain(&mut m, Time::ZERO), vec![11, 9, 12, 8, 13, 7]);
        // Once Done, stays Done.
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Done);
    }

    #[test]
    fn wraps_around_ring_boundaries() {
        let mut m = OpportunisticCorrection::new(0, 8, 2, Time::ZERO, false);
        assert_eq!(drain(&mut m, Time::ZERO), vec![1, 7, 2, 6]);
    }

    #[test]
    fn waits_for_synchronized_start() {
        let start = Time::new(30);
        let mut m = OpportunisticCorrection::new(5, 16, 1, start, false);
        assert_eq!(m.poll(Time::new(10)), CorrPoll::WaitUntil(start));
        assert_eq!(m.poll(start), CorrPoll::Send(6));
    }

    #[test]
    fn distance_capped_by_ring_size() {
        // p=4, d=9 → effective d=3: sends to the 3 other processes with
        // both-side duplicates allowed by the paper's target set.
        let mut m = OpportunisticCorrection::new(0, 4, 9, Time::ZERO, false);
        let sent = drain(&mut m, Time::ZERO);
        assert_eq!(sent, vec![1, 3, 2, 2, 3, 1]);
        assert!(sent.iter().all(|&t| t != 0));
    }

    #[test]
    fn single_process_is_done_immediately() {
        let mut m = OpportunisticCorrection::new(0, 1, 4, Time::ZERO, false);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Done);
    }

    #[test]
    fn optimized_skips_targets_covered_from_right_paper_example() {
        // Paper example (§3.3): process 19 receives from 23, d = 8.
        // 23 covers 22…15, so 19 sends left only 14, 13, 12, 11 (plus
        // its own right messages 20…27 — we check the left side here).
        let mut m = OpportunisticCorrection::new(19, 64, 8, Time::ZERO, true);
        m.on_correction(23, Time::ZERO);
        let sent = drain(&mut m, Time::ZERO);
        let left_sent: Vec<Rank> = sent.iter().copied().filter(|&t| t < 19).collect();
        assert_eq!(left_sent, vec![14, 13, 12, 11]);
        // Right side unaffected.
        let right_sent: Vec<Rank> = sent.iter().copied().filter(|&t| t > 19).collect();
        assert_eq!(right_sent, vec![20, 21, 22, 23, 24, 25, 26, 27]);
    }

    #[test]
    fn optimized_skips_targets_covered_from_left() {
        let mut m = OpportunisticCorrection::new(19, 64, 8, Time::ZERO, true);
        m.on_correction(16, Time::ZERO); // covers 17..24 on its right
        let sent = drain(&mut m, Time::ZERO);
        let right_sent: Vec<Rank> = sent.iter().copied().filter(|&t| t > 19).collect();
        // Remaining right targets: 16 + 8 + 1 = 25, 26, 27.
        assert_eq!(right_sent, vec![25, 26, 27]);
    }

    #[test]
    fn optimized_adjacent_sender_suppresses_whole_side() {
        let d = 4;
        let mut m = OpportunisticCorrection::new(10, 32, d, Time::ZERO, true);
        m.on_correction(11, Time::ZERO); // right neighbor covers 10-d+1..10? it covers 7..10
        let sent = drain(&mut m, Time::ZERO);
        // 11 covers 10, 9, 8, 7 — all my left targets except 10-4=6.
        let left_sent: Vec<Rank> = sent.iter().copied().filter(|&t| t < 10).collect();
        assert_eq!(left_sent, vec![6]);
    }

    #[test]
    fn plain_ignores_received_messages() {
        let mut a = OpportunisticCorrection::new(19, 64, 8, Time::ZERO, false);
        let mut b = OpportunisticCorrection::new(19, 64, 8, Time::ZERO, false);
        a.on_correction(23, Time::ZERO);
        assert_eq!(drain(&mut a, Time::ZERO), drain(&mut b, Time::ZERO));
    }

    #[test]
    fn optimized_never_sends_more_than_plain() {
        for received in [vec![], vec![21u32], vec![17, 22], vec![18, 20, 23]] {
            let mut opt = OpportunisticCorrection::new(19, 64, 4, Time::ZERO, true);
            let mut plain = OpportunisticCorrection::new(19, 64, 4, Time::ZERO, false);
            for &f in &received {
                opt.on_correction(f, Time::ZERO);
                plain.on_correction(f, Time::ZERO);
            }
            assert!(drain(&mut opt, Time::ZERO).len() <= drain(&mut plain, Time::ZERO).len());
        }
    }

    #[test]
    fn far_senders_do_not_trigger_optimization() {
        let mut m = OpportunisticCorrection::new(19, 64, 4, Time::ZERO, true);
        m.on_correction(40, Time::ZERO); // gap 21 > d: proves nothing
        assert_eq!(drain(&mut m, Time::ZERO).len(), 8);
    }
}
