//! Checked correction (§3.1).
//!
//! Every dissemination-colored process alternates sends left and right
//! at increasing ring distance. It stops sending into a direction once
//! it has received a message *from* that direction from a process it has
//! already sent *to* — i.e. the two colored ring segments have shaken
//! hands. Paper example: process 23 received nearest correction
//! messages from 19 and 28; it keeps sending until it has sent to both,
//! producing `{22, 24, 21, 25, 20, 26, 19, 27, 28}`.
//!
//! This colors all live processes regardless of the maximum gap size, as
//! long as no process fails during the correction phase, and costs
//! `M_SCC = 3 + ⌊L/o⌋` messages per process in the fault-free case
//! (Corollary 1).

use ct_logp::{ring_add, ring_gap_ccw, ring_gap_cw, ring_sub, Rank, Time};

use super::{CorrPoll, Correction};

/// State machine for checked correction.
#[derive(Debug, Clone)]
pub struct CheckedCorrection {
    rank: Rank,
    p: u32,
    start: Time,
    /// Next 1-based offsets per direction.
    next_right: u32,
    next_left: u32,
    /// Ring gaps `(g_right, g_left)` of every sender heard from. The
    /// nearer side is the message's direction (a tie counts as both);
    /// a direction is done once some sender from it has been sent to —
    /// via either side, which matters on tiny rings where both
    /// directions reach the same process.
    heard: Vec<(u32, u32)>,
    prefer_left: bool,
}

impl CheckedCorrection {
    /// Create the machine for `rank` of `p`, first send not before
    /// `start`.
    pub fn new(rank: Rank, p: u32, start: Time) -> Self {
        assert!(p >= 1 && rank < p);
        CheckedCorrection {
            rank,
            p,
            start,
            next_right: 1,
            next_left: 1,
            heard: Vec::new(),
            // The paper's Lemma 2 proof sends the first message to the
            // left ("If processes send the first message to the left…").
            prefer_left: true,
        }
    }

    /// `p - 1` caps every direction: after sending to all other
    /// processes there is nobody left (only reachable when the whole
    /// rest of the ring was uncolored and silent).
    fn cap(&self) -> u32 {
        self.p.saturating_sub(1)
    }

    fn sent_to(&self, gaps: (u32, u32)) -> bool {
        self.next_right > gaps.0 || self.next_left > gaps.1
    }

    fn right_done(&self) -> bool {
        self.next_right > self.cap()
            || self
                .heard
                .iter()
                .any(|&(gr, gl)| gr <= gl && self.sent_to((gr, gl)))
    }

    fn left_done(&self) -> bool {
        self.next_left > self.cap()
            || self
                .heard
                .iter()
                .any(|&(gr, gl)| gl <= gr && self.sent_to((gr, gl)))
    }

    /// Would [`Correction::poll`] report `Done` right now? Exposed for
    /// the paced wrapper, which must test the stop rule without letting
    /// `poll` commit another probe.
    pub(crate) fn done_now(&self) -> bool {
        self.p <= 1 || (self.right_done() && self.left_done())
    }
}

impl Correction for CheckedCorrection {
    fn on_correction(&mut self, from: Rank, _now: Time) {
        if from == self.rank {
            return;
        }
        let g = (
            ring_gap_cw(self.rank, from, self.p),
            ring_gap_ccw(self.rank, from, self.p),
        );
        if !self.heard.contains(&g) {
            self.heard.push(g);
        }
    }

    fn poll(&mut self, now: Time) -> CorrPoll {
        if now < self.start {
            return CorrPoll::WaitUntil(self.start);
        }
        if self.done_now() {
            return CorrPoll::Done;
        }
        let go_left = if self.left_done() {
            false
        } else if self.right_done() {
            true
        } else {
            self.prefer_left
        };
        let target = if go_left {
            let t = ring_sub(self.rank, self.next_left, self.p);
            self.next_left += 1;
            self.prefer_left = false;
            t
        } else {
            let t = ring_add(self.rank, self.next_right, self.p);
            self.next_right += 1;
            self.prefer_left = true;
            t
        };
        CorrPoll::Send(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the machine, feeding `arrivals` as (after_nth_send, from).
    fn run(mut m: CheckedCorrection, arrivals: &[(usize, Rank)]) -> Vec<Rank> {
        let mut sent = Vec::new();
        let mut ai = 0;
        loop {
            while ai < arrivals.len() && arrivals[ai].0 <= sent.len() {
                m.on_correction(arrivals[ai].1, Time::ZERO);
                ai += 1;
            }
            match m.poll(Time::ZERO) {
                CorrPoll::Send(t) => sent.push(t),
                CorrPoll::Done => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(sent.len() < 1000, "machine failed to terminate");
        }
        sent
    }

    #[test]
    fn paper_example_process_23() {
        // Receives from 19 (left, distance 4) and 28 (right, distance 5)
        // early; must send {22,24,21,25,20,26,19,27,28} in that order.
        let m = CheckedCorrection::new(23, 64, Time::ZERO);
        let sent = run(m, &[(0, 19), (0, 28)]);
        assert_eq!(sent, vec![22, 24, 21, 25, 20, 26, 19, 27, 28]);
    }

    #[test]
    fn fault_free_neighbors_stop_after_handshake() {
        // Both immediate neighbors heard: sends exactly to them, stops.
        let m = CheckedCorrection::new(5, 64, Time::ZERO);
        let sent = run(m, &[(0, 4), (0, 6)]);
        assert_eq!(sent, vec![4, 6]);
    }

    #[test]
    fn late_arrival_after_overshoot_stops_immediately() {
        // We already sent to distance 3 both sides when messages from
        // distance-2 senders arrive → both directions instantly done.
        let mut m = CheckedCorrection::new(10, 64, Time::ZERO);
        let mut sent = Vec::new();
        for _ in 0..6 {
            match m.poll(Time::ZERO) {
                CorrPoll::Send(t) => sent.push(t),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(sent, vec![9, 11, 8, 12, 7, 13]);
        m.on_correction(8, Time::ZERO);
        m.on_correction(12, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Done);
    }

    #[test]
    fn unheard_direction_keeps_probing() {
        // Only the left side answers; the right side keeps growing until
        // someone (rank 9 at distance 4) finally answers.
        let m = CheckedCorrection::new(5, 64, Time::ZERO);
        let sent = run(m, &[(0, 4), (5, 9)]);
        // Left: only 4. Right: 6, 7, 8, 9 (heard from 9 after 5 sends).
        assert_eq!(sent, vec![4, 6, 7, 8, 9]);
    }

    #[test]
    fn sole_colored_process_terminates_via_ring_cap() {
        // Nobody else ever sends: the machine must still terminate after
        // covering the whole ring in both directions.
        let m = CheckedCorrection::new(0, 6, Time::ZERO);
        let sent = run(m, &[]);
        // Alternating left/right over 5 offsets each.
        assert_eq!(sent.len(), 10);
        assert!(sent.iter().all(|&t| t != 0));
    }

    #[test]
    fn synchronized_start_is_respected() {
        let start = Time::new(25);
        let mut m = CheckedCorrection::new(3, 16, start);
        assert_eq!(m.poll(Time::new(24)), CorrPoll::WaitUntil(start));
        assert_eq!(m.poll(Time::new(25)), CorrPoll::Send(2));
    }

    #[test]
    fn two_process_ring_one_message_suffices() {
        // p=2: the only other process is at distance 1 both ways; after
        // sending left once and hearing from it, both directions are
        // done — no duplicate probe to the same process.
        let m = CheckedCorrection::new(0, 2, Time::ZERO);
        let sent = run(m, &[(1, 1)]);
        assert_eq!(sent, vec![1]);
    }

    #[test]
    fn single_process_done() {
        let mut m = CheckedCorrection::new(0, 1, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Done);
    }

    #[test]
    fn duplicate_arrivals_are_idempotent() {
        let mut m = CheckedCorrection::new(5, 64, Time::ZERO);
        m.on_correction(4, Time::ZERO);
        m.on_correction(4, Time::ZERO);
        m.on_correction(6, Time::ZERO);
        let sent = run(m, &[]);
        assert_eq!(sent, vec![4, 6]);
        // heard list stays small even under duplicates.
    }
}
