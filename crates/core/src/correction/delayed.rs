//! Delayed correction (§3.3).
//!
//! Minimizes messages in the fault-free case: every dissemination-
//! colored process sends a single correction message to its left
//! neighbor and then waits. If no correction message has arrived from
//! the right within `delay` steps, the process starts probing rightward
//! until one does. A dissemination-colored process that receives a
//! message *from the left* (i.e. a probe crossing it) immediately
//! replies to stop the prober.
//!
//! The delay must be long enough that a live, punctual right neighbor's
//! message always arrives in time — then no live process is ever
//! falsely suspected, so this is *not* a failure detector; non-faulty
//! liveness and termination still hold (§3.3). The paper does not
//! evaluate delayed correction because the appropriate delay is
//! application-specific; we implement and test it as the message-optimal
//! end of the trade-off space.

use std::collections::VecDeque;

use ct_logp::{ring_add, ring_sub, Rank, Time};

use super::{direction_of, CorrPoll, Correction, Direction};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Send the single leftward message.
    SendFirstLeft,
    /// Waiting for the right side until the deadline.
    Waiting,
    /// Deadline passed without a message from the right: probe rightward.
    Probing,
}

/// State machine for delayed correction.
#[derive(Debug, Clone)]
pub struct DelayedCorrection {
    rank: Rank,
    p: u32,
    start: Time,
    delay: u64,
    phase: Phase,
    /// Deadline for suspecting the right side; set after the first send.
    deadline: Time,
    /// Next rightward probe offset (1-based; offset 1 re-probes the
    /// direct neighbor first).
    next_right: u32,
    got_right: bool,
    /// Stop-replies owed to probers that crossed us from the left.
    replies: VecDeque<Rank>,
    /// Senders already replied to — a prober needs one stop-reply, and
    /// on tiny rings (antipodal ties count as *both* directions) a
    /// second reply would bounce back and forth forever.
    replied_to: Vec<Rank>,
}

impl DelayedCorrection {
    /// Create the machine for `rank` of `p` with suspicion delay
    /// `delay`, first send not before `start`.
    pub fn new(rank: Rank, p: u32, delay: u64, start: Time) -> Self {
        DelayedCorrection {
            rank,
            p,
            start,
            delay,
            phase: Phase::SendFirstLeft,
            deadline: Time::NEVER,
            next_right: 1,
            got_right: false,
            replies: VecDeque::new(),
            replied_to: Vec::new(),
        }
    }

    fn reply_once(&mut self, to: Rank) {
        if !self.replied_to.contains(&to) {
            self.replied_to.push(to);
            self.replies.push_back(to);
        }
    }
}

impl Correction for DelayedCorrection {
    fn on_correction(&mut self, from: Rank, _now: Time) {
        if from == self.rank {
            return;
        }
        match direction_of(self.rank, from, self.p) {
            Some(Direction::Right) => self.got_right = true,
            Some(Direction::Left) => self.reply_once(from),
            None => {
                // Antipodal tie: treat as both — the message stops our
                // right probe and, like a left-probe, earns a reply.
                self.got_right = true;
                self.reply_once(from);
            }
        }
    }

    fn poll(&mut self, now: Time) -> CorrPoll {
        if now < self.start {
            return CorrPoll::WaitUntil(self.start);
        }
        // Stop-replies take priority: a prober is burning messages.
        if let Some(to) = self.replies.pop_front() {
            return CorrPoll::Send(to);
        }
        if self.p <= 1 {
            return CorrPoll::Idle;
        }
        match self.phase {
            Phase::SendFirstLeft => {
                self.phase = Phase::Waiting;
                self.deadline = now + self.delay;
                CorrPoll::Send(ring_sub(self.rank, 1, self.p))
            }
            Phase::Waiting => {
                if self.got_right {
                    // Never Done: a late prober may still need a reply.
                    CorrPoll::Idle
                } else if now < self.deadline {
                    CorrPoll::WaitUntil(self.deadline)
                } else {
                    self.phase = Phase::Probing;
                    self.poll(now)
                }
            }
            Phase::Probing => {
                if self.got_right || self.next_right >= self.p {
                    CorrPoll::Idle
                } else {
                    let t = ring_add(self.rank, self.next_right, self.p);
                    self.next_right += 1;
                    CorrPoll::Send(t)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_sends_exactly_one_message() {
        let mut m = DelayedCorrection::new(5, 64, 10, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Send(4));
        // Right neighbor's message arrives within the delay.
        m.on_correction(6, Time::new(4));
        assert_eq!(m.poll(Time::new(5)), CorrPoll::Idle);
        assert_eq!(m.poll(Time::new(100)), CorrPoll::Idle);
    }

    #[test]
    fn waits_until_deadline_before_probing() {
        let mut m = DelayedCorrection::new(5, 64, 10, Time::ZERO);
        assert_eq!(m.poll(Time::new(0)), CorrPoll::Send(4));
        assert_eq!(m.poll(Time::new(3)), CorrPoll::WaitUntil(Time::new(10)));
        // Deadline passes in silence → probe rightward one per poll.
        assert_eq!(m.poll(Time::new(10)), CorrPoll::Send(6));
        assert_eq!(m.poll(Time::new(11)), CorrPoll::Send(7));
        assert_eq!(m.poll(Time::new(12)), CorrPoll::Send(8));
        // A reply finally arrives from the right.
        m.on_correction(8, Time::new(15));
        assert_eq!(m.poll(Time::new(15)), CorrPoll::Idle);
    }

    #[test]
    fn replies_to_left_probes_immediately() {
        let mut m = DelayedCorrection::new(10, 64, 100, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Send(9));
        // A prober three to the left reaches us.
        m.on_correction(7, Time::new(2));
        assert_eq!(m.poll(Time::new(2)), CorrPoll::Send(7), "stop-reply first");
        // Then back to waiting.
        assert_eq!(m.poll(Time::new(3)), CorrPoll::WaitUntil(Time::new(100)));
    }

    #[test]
    fn reply_obligation_can_arrive_after_quiescence() {
        let mut m = DelayedCorrection::new(10, 64, 5, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Send(9));
        m.on_correction(11, Time::new(3));
        assert_eq!(m.poll(Time::new(3)), CorrPoll::Idle);
        // A very late prober from the left must still get a reply —
        // this is why the machine never reports Done.
        m.on_correction(6, Time::new(50));
        assert_eq!(m.poll(Time::new(50)), CorrPoll::Send(6));
        assert_eq!(m.poll(Time::new(51)), CorrPoll::Idle);
    }

    #[test]
    fn replies_are_once_per_sender_no_ping_pong() {
        // Regression (found by property testing): on a 2-process ring
        // every message is an antipodal tie, so each arrival both stops
        // the right probe and earns a reply. Without per-sender dedup,
        // two delayed machines reply to each other's replies forever.
        let mut a = DelayedCorrection::new(0, 2, 5, Time::ZERO);
        let mut b = DelayedCorrection::new(1, 2, 5, Time::ZERO);
        let mut in_flight: Vec<(Rank, Rank)> = Vec::new(); // (from, to)
                                                           // First sends.
        if let CorrPoll::Send(t) = a.poll(Time::ZERO) {
            in_flight.push((0, t));
        }
        if let CorrPoll::Send(t) = b.poll(Time::ZERO) {
            in_flight.push((1, t));
        }
        let mut total = in_flight.len();
        let mut now = Time::new(4);
        while let Some((from, to)) = in_flight.pop() {
            let m = if to == 0 { &mut a } else { &mut b };
            m.on_correction(from, now);
            while let CorrPoll::Send(t) = m.poll(now) {
                in_flight.push((to, t));
                total += 1;
                assert!(total < 10, "reply ping-pong detected");
            }
            now = now + 1u64;
        }
        // Two first-sends plus at most one reply each.
        assert!(total <= 4, "{total} messages on a 2-ring");
    }

    #[test]
    fn probe_stops_at_ring_cap() {
        let mut m = DelayedCorrection::new(0, 4, 2, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Send(3));
        assert_eq!(m.poll(Time::new(2)), CorrPoll::Send(1));
        assert_eq!(m.poll(Time::new(3)), CorrPoll::Send(2));
        assert_eq!(m.poll(Time::new(4)), CorrPoll::Send(3));
        // All others probed; nothing left to try.
        assert_eq!(m.poll(Time::new(5)), CorrPoll::Idle);
    }

    #[test]
    fn respects_synchronized_start() {
        let start = Time::new(40);
        let mut m = DelayedCorrection::new(3, 16, 10, start);
        assert_eq!(m.poll(Time::new(0)), CorrPoll::WaitUntil(start));
        assert_eq!(m.poll(start), CorrPoll::Send(2));
        // Deadline counts from the first send, not from `start`.
        assert_eq!(m.poll(Time::new(41)), CorrPoll::WaitUntil(Time::new(50)));
    }

    #[test]
    fn singleton_ring_idles() {
        let mut m = DelayedCorrection::new(0, 1, 5, Time::ZERO);
        assert_eq!(m.poll(Time::ZERO), CorrPoll::Idle);
    }
}
