//! Causally paced checked correction.
//!
//! [`CheckedCorrection`] reproduces the paper's fault-free message
//! count `M_SCC = 3 + ⌈L/o⌉` (Corollary 1) only under the discrete
//! LogP schedule: probes leave one per `o`, and the terminating
//! handshake messages become *processable* exactly `o + L` after they
//! were sent. A discrete-event simulator enforces that schedule by
//! construction; a wall-clock runtime does not — under real scheduling
//! a rank may hear its neighbors before its second probe (2 sends) or
//! blast the whole ring while its neighbors are descheduled (2(P−1)
//! sends). [`PacedCheckedCorrection`] restores the discrete count
//! *causally*, without trusting any clock:
//!
//! * **Visibility gating** — an arrival from ring distance `d` carries
//!   enough information to reconstruct the sender's probe round
//!   (left-probes of distance `d` are round `2d−1`, right-probes round
//!   `2d`, because every machine alternates left/right from distance 1).
//!   The message is withheld from the stop rule until this machine is
//!   about to make its own send number `sender_round + D`, where
//!   `D = lag + 2` and `lag = ⌈L/o⌉` — exactly when the discrete model
//!   would process it. This prevents *undershoot* when neighbors run
//!   early.
//! * **Arrival gating** — sends number `D+1` and `D+2` (the first sends
//!   the discrete model makes at or after the handshake horizon) wait
//!   until the expected fault-free handshake message — from ring
//!   neighbor `r+1` respectively `r−1` — has physically arrived. This
//!   prevents *overshoot* when neighbors run late. A dead neighbor
//!   cannot send, so each gate also carries a generous fallback
//!   deadline; fault-free runs never consult it, faulty runs degrade to
//!   timing-dependent (but still stop-rule-bounded) counts.
//!
//! The result: on a fault-free synchronized run every rank sends
//! exactly `3 + lag` correction messages regardless of worker count,
//! scheduling delays, or how many concurrent broadcasts share the
//! machine — the property the pub/sub throughput benchmark asserts.

use ct_logp::{ring_add, ring_gap_ccw, ring_gap_cw, ring_sub, Rank, Time};

use super::{CheckedCorrection, CorrPoll, Correction};

/// Checked correction with the discrete-model probe schedule enforced
/// causally (see the module docs).
#[derive(Debug, Clone)]
pub struct PacedCheckedCorrection {
    inner: CheckedCorrection,
    rank: Rank,
    p: u32,
    start: Time,
    /// Visibility offset `D = lag + 2` in probe rounds.
    vis_offset: u32,
    /// Arrival-gate fallback (same unit as [`Time`]).
    fallback: u64,
    /// Correction messages sent so far (probe rounds completed).
    sends: u32,
    /// Withheld arrivals `(from, visible_round)`.
    held: Vec<(Rank, u32)>,
    /// Physical arrivals from the immediate ring neighbors.
    got_right: bool,
    got_left: bool,
    /// Fallback deadline of the arrival gate currently blocking.
    gate_deadline: Option<Time>,
    /// Arrival gates waived by fallback expiry (right nbr, left nbr).
    waived: [bool; 2],
}

impl PacedCheckedCorrection {
    /// Create the machine for `rank` of `p`, first send not before
    /// `start`. `lag = ⌈L/o⌉` fixes the fault-free count at `3 + lag`;
    /// `fallback` bounds how long an arrival gate waits for a (possibly
    /// dead) neighbor.
    pub fn new(rank: Rank, p: u32, start: Time, lag: u32, fallback: u64) -> Self {
        PacedCheckedCorrection {
            inner: CheckedCorrection::new(rank, p, start),
            rank,
            p,
            start,
            vis_offset: lag + 2,
            fallback,
            sends: 0,
            held: Vec::new(),
            got_right: false,
            got_left: false,
            gate_deadline: None,
            waived: [false; 2],
        }
    }

    /// Feed every withheld arrival whose visible round has been reached
    /// (processed strictly before send number `sends + 1`).
    fn feed_visible(&mut self, now: Time) {
        let horizon = self.sends + 1;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].1 <= horizon {
                let (from, _) = self.held.swap_remove(i);
                self.inner.on_correction(from, now);
            } else {
                i += 1;
            }
        }
    }

    /// The arrival gate for send number `n`, if any: gate 0 expects the
    /// right neighbor's first probe, gate 1 the left neighbor's second.
    fn gate_for(&self, n: u32) -> Option<usize> {
        if n == self.vis_offset + 1 {
            Some(0)
        } else if n == self.vis_offset + 2 {
            Some(1)
        } else {
            None
        }
    }
}

impl Correction for PacedCheckedCorrection {
    fn on_correction(&mut self, from: Rank, _now: Time) {
        if from == self.rank || self.p <= 1 {
            return;
        }
        if from == ring_add(self.rank, 1, self.p) {
            self.got_right = true;
        }
        if from == ring_sub(self.rank, 1, self.p) {
            self.got_left = true;
        }
        let gr = ring_gap_cw(self.rank, from, self.p);
        let gl = ring_gap_ccw(self.rank, from, self.p);
        // The nearer side names the sender's probe direction; an
        // antipodal tie is a left-probe (alternation sends left first).
        let sender_round = if gr <= gl { 2 * gr - 1 } else { 2 * gl };
        self.held.push((from, sender_round + self.vis_offset));
    }

    fn poll(&mut self, now: Time) -> CorrPoll {
        if now < self.start {
            return CorrPoll::WaitUntil(self.start);
        }
        self.feed_visible(now);
        if self.inner.done_now() {
            return CorrPoll::Done;
        }
        if let Some(gate) = self.gate_for(self.sends + 1) {
            let arrived = if gate == 0 {
                self.got_right
            } else {
                self.got_left
            };
            if !arrived && !self.waived[gate] {
                let deadline = *self
                    .gate_deadline
                    .get_or_insert_with(|| now + self.fallback);
                if now < deadline {
                    return CorrPoll::WaitUntil(deadline);
                }
                self.waived[gate] = true;
            }
            self.gate_deadline = None;
        }
        match self.inner.poll(now) {
            CorrPoll::Send(to) => {
                self.sends += 1;
                self.gate_deadline = None;
                CorrPoll::Send(to)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAG: u32 = 2; // ⌈L/o⌉ for LogP::PAPER
    const FB: u64 = 1_000;

    /// Drive to completion, delivering `arrivals` as
    /// `(after_nth_send, from)`, and collect the send targets.
    fn run(mut m: PacedCheckedCorrection, arrivals: &[(u32, Rank)]) -> Vec<Rank> {
        let mut sent = Vec::new();
        let mut now = Time::ZERO;
        loop {
            for &(after, from) in arrivals {
                if after == sent.len() as u32 {
                    m.on_correction(from, now);
                }
            }
            match m.poll(now) {
                CorrPoll::Send(t) => sent.push(t),
                CorrPoll::Done => return sent,
                CorrPoll::WaitUntil(t) => {
                    assert!(t > now, "non-advancing wait");
                    now = t;
                }
                CorrPoll::Idle => panic!("paced machine never idles"),
            }
            assert!(sent.len() < 1000, "failed to terminate");
        }
    }

    #[test]
    fn fault_free_count_is_three_plus_lag_regardless_of_arrival_timing() {
        // The discrete model sends exactly 3 + lag = 5 probes. The paced
        // machine must reproduce that count whether the neighbors'
        // messages arrive instantly (undershoot risk for plain checked:
        // it would stop after 2) or only after this rank has already
        // probed (overshoot risk: plain checked would keep growing).
        for arrivals in [
            &[(0u32, 6u32), (0, 4)][..], // both early
            &[(2, 6), (3, 4)][..],       // on the discrete schedule
            &[(4, 6), (4, 4)][..],       // as late as causality allows
        ] {
            let m = PacedCheckedCorrection::new(5, 64, Time::ZERO, LAG, FB);
            let sent = run(m, arrivals);
            assert_eq!(
                sent,
                vec![4, 6, 3, 7, 2],
                "arrivals {arrivals:?} changed the probe schedule"
            );
        }
    }

    #[test]
    fn second_ring_arrivals_are_withheld_from_the_stop_rule() {
        // Messages from distance 2 become visible only at rounds
        // 3+D and 4+D — after the fault-free horizon — so hearing them
        // early must not stop the machine before its 5 probes.
        let m = PacedCheckedCorrection::new(10, 64, Time::ZERO, LAG, FB);
        let sent = run(m, &[(0, 12), (0, 8), (1, 11), (2, 9)]);
        assert_eq!(sent, vec![9, 11, 8, 12, 7]);
    }

    #[test]
    fn dead_right_neighbor_waits_fallback_then_probes_past_the_gap() {
        // r+1 (rank 6) is dead: gate 0 expires after the fallback and
        // the machine keeps probing right until rank 7 answers.
        let m = PacedCheckedCorrection::new(5, 64, Time::ZERO, LAG, FB);
        let sent = run(m, &[(0, 4), (5, 7)]);
        // Gate 0 (expecting dead rank 6) expires, probing resumes; rank
        // 7's answer (a distance-2 probe, visible at round 3+D = 7)
        // stops the right side after one more probe past it.
        assert_eq!(sent, vec![4, 6, 3, 7, 2, 8]);
    }

    #[test]
    fn sync_start_is_respected() {
        let start = Time::new(25);
        let mut m = PacedCheckedCorrection::new(3, 16, start, LAG, FB);
        assert_eq!(m.poll(Time::new(24)), CorrPoll::WaitUntil(start));
        assert_eq!(m.poll(Time::new(25)), CorrPoll::Send(2));
    }

    #[test]
    fn two_process_ring_terminates() {
        let m = PacedCheckedCorrection::new(0, 2, Time::ZERO, LAG, FB);
        let sent = run(m, &[(1, 1)]);
        // Ring cap: both directions exhausted after probing the only
        // other process once per side.
        assert_eq!(sent, vec![1, 1]);
    }

    #[test]
    fn sole_colored_process_terminates_via_ring_cap_and_fallbacks() {
        let m = PacedCheckedCorrection::new(0, 6, Time::ZERO, LAG, FB);
        let sent = run(m, &[]);
        assert_eq!(sent.len(), 10);
        assert!(sent.iter().all(|&t| t != 0));
    }
}
