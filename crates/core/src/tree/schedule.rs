//! Exact fault-free dissemination timing under LogP.
//!
//! During dissemination every process receives exactly one message, so
//! there is no receive-port contention and the timeline is closed-form:
//! a process colored at time `c` starts sending immediately; its `j`-th
//! child's message (0-indexed, send order) starts at `c + j·o` and the
//! child is colored — processing finished — at `c + j·o + 2o + L`.
//!
//! The root is colored at time 0. The maximum over all ranks is the
//! dissemination deadline used to start synchronized correction, and
//! "the latency of a tree-based broadcast is exact" (§4.1).

use ct_logp::{LogP, Time};

use super::{Topology, Tree};

/// Per-rank coloring times of a fault-free dissemination.
pub fn dissemination_schedule(tree: &Tree, logp: &LogP) -> Vec<Time> {
    let p = tree.num_processes() as usize;
    let mut colored_at = vec![Time::NEVER; p];
    colored_at[0] = Time::ZERO;
    // Parents always have smaller color times than children, so a BFS
    // (or any order where parents precede children) computes in one pass.
    let mut queue = std::collections::VecDeque::with_capacity(64);
    queue.push_back(0u32);
    let o = logp.o();
    let transit = logp.transit_steps();
    while let Some(r) = queue.pop_front() {
        let c = colored_at[r as usize];
        for (j, &child) in tree.children(r).iter().enumerate() {
            colored_at[child as usize] = c + (j as u64 * o) + transit;
            queue.push_back(child);
        }
    }
    colored_at
}

/// Time at which rank `r`'s *sender* goes idle in a fault-free
/// dissemination: coloring time plus `o` per child message. Leaves go
/// idle at their coloring time.
pub fn sender_idle_schedule(tree: &Tree, logp: &LogP) -> Vec<Time> {
    let colored = dissemination_schedule(tree, logp);
    colored
        .iter()
        .enumerate()
        .map(|(r, &c)| c + logp.o() * tree.children(r as u32).len() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, TreeKind};
    use ct_logp::LogP;

    #[test]
    fn root_is_colored_at_zero() {
        let t = TreeKind::BINOMIAL.build(32, &LogP::PAPER).unwrap();
        let s = dissemination_schedule(&t, &LogP::PAPER);
        assert_eq!(s[0], Time::ZERO);
        assert!(s.iter().skip(1).all(|&t| t > Time::ZERO && !t.is_never()));
    }

    #[test]
    fn binomial_deadline_matches_closed_form() {
        // Interleaved binomial, P = 2^n: the critical path is the chain
        // 0 → 1 → 3 → 7 → … (first-child hops, offset 0 each), n hops of
        // 2o + L. With 2o + L > (n-1)o no offset-heavy path beats it, so
        // the deadline is n·(2o + L) for the paper's parameters.
        let logp = LogP::PAPER;
        for n in 1..10u32 {
            let p = 1u32 << n;
            let t = TreeKind::BINOMIAL.build(p, &logp).unwrap();
            let deadline = t.dissemination_deadline(&logp);
            let expected = n as u64 * logp.transit_steps();
            assert_eq!(deadline, Time::new(expected), "P=2^{n}");
        }
    }

    #[test]
    fn child_times_follow_send_order() {
        let logp = LogP::PAPER;
        let t = TreeKind::FOUR_ARY.build(200, &logp).unwrap();
        let s = dissemination_schedule(&t, &logp);
        for r in 0..200u32 {
            let kids = t.children(r);
            for (j, &c) in kids.iter().enumerate() {
                let expected = s[r as usize] + (j as u64 * logp.o()) + logp.transit_steps();
                assert_eq!(s[c as usize], expected);
            }
        }
    }

    #[test]
    fn fig5_lame3_is_latency_optimal_for_its_params() {
        // Figure 5: k = 3 Lamé tree with L = o = 1 (2o+L = 3 = k)
        // guarantees minimal latency: identical to the optimal tree.
        let logp = LogP::FIG5;
        for p in [2u32, 5, 9, 30, 100] {
            let lame = TreeKind::Lame {
                k: 3,
                order: Ordering::Interleaved,
            }
            .build(p, &logp)
            .unwrap();
            let opt = TreeKind::OPTIMAL.build(p, &logp).unwrap();
            assert_eq!(
                lame.dissemination_deadline(&logp),
                opt.dissemination_deadline(&logp),
                "P={p}"
            );
        }
    }

    #[test]
    fn optimal_tree_latency_dominates_other_trees() {
        let logp = LogP::PAPER;
        for p in [16u32, 100, 1000, 4096] {
            let opt = TreeKind::OPTIMAL.build(p, &logp).unwrap();
            let d_opt = opt.dissemination_deadline(&logp);
            for kind in [TreeKind::BINOMIAL, TreeKind::LAME2, TreeKind::FOUR_ARY] {
                let t = kind.build(p, &logp).unwrap();
                assert!(
                    d_opt <= t.dissemination_deadline(&logp),
                    "optimal must be fastest at P={p} vs {kind}"
                );
            }
        }
    }

    #[test]
    fn in_order_and_interleaved_have_identical_latency() {
        // Renumbering changes ring behavior under faults, not timing.
        let logp = LogP::PAPER;
        for p in [7u32, 64, 129] {
            let a = TreeKind::Binomial {
                order: Ordering::Interleaved,
            }
            .build(p, &logp)
            .unwrap();
            let b = TreeKind::Binomial {
                order: Ordering::InOrder,
            }
            .build(p, &logp)
            .unwrap();
            assert_eq!(
                a.dissemination_deadline(&logp),
                b.dissemination_deadline(&logp)
            );
        }
    }

    #[test]
    fn sender_idle_after_all_children_served() {
        let logp = LogP::PAPER;
        let t = TreeKind::BINOMIAL.build(64, &logp).unwrap();
        let colored = dissemination_schedule(&t, &logp);
        let idle = sender_idle_schedule(&t, &logp);
        for r in 0..64u32 {
            let kids = t.children(r).len() as u64;
            assert_eq!(idle[r as usize], colored[r as usize] + kids * logp.o());
        }
    }
}
