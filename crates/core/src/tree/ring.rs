//! Coloring state and ring-gap analysis (§2, §3.1).
//!
//! A process is *colored* once it received the broadcast payload (the
//! root is colored by definition). After dissemination the uncolored
//! processes form *gaps* on the correction ring: maximal runs of
//! consecutive uncolored ranks (wrapping at `P`). The maximum gap size
//! `g_max` is the key proxy for correction latency (Lemma 3, Figure 10).

use ct_logp::Rank;

use super::Topology;

/// A maximal run of uncolored processes on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gap {
    /// First uncolored rank of the run.
    pub start: Rank,
    /// Number of consecutive uncolored ranks (wrapping).
    pub len: u32,
}

/// Compute all gaps of a coloring, in ring order starting from the
/// lowest-rank gap that does not wrap through rank `P-1 → 0`.
///
/// `colored[r]` is the coloring; `colored[0]` must be `true` (the root
/// initiates the broadcast and is always colored), which also guarantees
/// at most one wrapping run.
pub fn gaps(colored: &[bool]) -> Vec<Gap> {
    assert!(!colored.is_empty());
    assert!(colored[0], "the root (rank 0) is colored by definition");
    let p = colored.len();
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (r, &is_colored) in colored.iter().enumerate() {
        match (is_colored, run_start) {
            (false, None) => run_start = Some(r),
            (true, Some(s)) => {
                out.push(Gap {
                    start: s as Rank,
                    len: (r - s) as u32,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        // Run reaches P-1; rank 0 is colored, so it ends there.
        out.push(Gap {
            start: s as Rank,
            len: (p - s) as u32,
        });
    }
    out
}

/// The maximum gap size `g_max`; 0 when fully colored.
pub fn max_gap(colored: &[bool]) -> u32 {
    gaps(colored).iter().map(|g| g.len).max().unwrap_or(0)
}

/// Number of uncolored processes.
pub fn uncolored_count(colored: &[bool]) -> u32 {
    colored.iter().filter(|&&c| !c).count() as u32
}

/// The coloring produced by a *complete* tree dissemination in the
/// presence of fail-stop processes: every process reachable from the
/// root through live intermediate nodes is colored; failed processes and
/// the descendants of failed processes stay uncolored (§2.1).
///
/// `failed[r]` marks dead processes; the root must be alive. This is the
/// closed-form equivalent of running the dissemination phase in the
/// simulator and is used by the fast Monte-Carlo campaigns (Figure 1b).
pub fn color_after_dissemination<T: Topology + ?Sized>(tree: &T, failed: &[bool]) -> Vec<bool> {
    let mut colored = Vec::new();
    color_after_dissemination_into(tree, failed, &mut colored);
    colored
}

/// In-place variant of [`color_after_dissemination`]: `colored` is
/// resized and overwritten, and the tree traversal runs on a reused
/// thread-local scratch stack — repeated Monte-Carlo draws at large `P`
/// allocate nothing after the first call.
pub fn color_after_dissemination_into<T: Topology + ?Sized>(
    tree: &T,
    failed: &[bool],
    colored: &mut Vec<bool>,
) {
    let p = tree.num_processes() as usize;
    assert_eq!(failed.len(), p);
    assert!(!failed[0], "the root is assumed alive (§2.1)");
    colored.clear();
    colored.resize(p, false);
    colored[0] = true;
    super::with_scratch_stack(|stack| {
        stack.push(0);
        while let Some(r) = stack.pop() {
            for &c in tree.children(r) {
                // A message is always sent, but a dead recipient drops it
                // (stays uncolored) and never forwards.
                if !failed[c as usize] {
                    colored[c as usize] = true;
                    stack.push(c);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, TreeKind};
    use ct_logp::LogP;

    #[test]
    fn no_gaps_when_fully_colored() {
        assert!(gaps(&[true, true, true]).is_empty());
        assert_eq!(max_gap(&[true; 8]), 0);
    }

    #[test]
    fn single_interior_gap() {
        let colored = [true, false, false, true, true];
        let g = gaps(&colored);
        assert_eq!(g, vec![Gap { start: 1, len: 2 }]);
        assert_eq!(max_gap(&colored), 2);
        assert_eq!(uncolored_count(&colored), 2);
    }

    #[test]
    fn trailing_gap_ends_at_root() {
        let colored = [true, true, false, false];
        assert_eq!(gaps(&colored), vec![Gap { start: 2, len: 2 }]);
    }

    #[test]
    fn multiple_gaps_in_ring_order() {
        let colored = [true, false, true, false, false, true, false];
        let g = gaps(&colored);
        assert_eq!(
            g,
            vec![
                Gap { start: 1, len: 1 },
                Gap { start: 3, len: 2 },
                Gap { start: 6, len: 1 },
            ]
        );
        assert_eq!(max_gap(&colored), 2);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn rejects_uncolored_root() {
        let _ = gaps(&[false, true]);
    }

    #[test]
    fn figure3_failure_in_order_vs_interleaved() {
        // Figure 3: binary tree, P = 7. In-order: process 4 fails →
        // children 5, 6 uncolored plus 4 itself: one gap of size 3
        // (ranks 4,5,6). Interleaved: process 2 fails → its children 4
        // and 6 uncolored: gaps of size 1 at {2}, {4}, {6}.
        let logp = LogP::PAPER;
        let in_order = TreeKind::Kary {
            k: 2,
            order: Ordering::InOrder,
        }
        .build(7, &logp)
        .unwrap();
        let mut failed = vec![false; 7];
        failed[4] = true;
        let colored = color_after_dissemination(&in_order, &failed);
        assert_eq!(gaps(&colored), vec![Gap { start: 4, len: 3 }]);

        let interleaved = TreeKind::Kary {
            k: 2,
            order: Ordering::Interleaved,
        }
        .build(7, &logp)
        .unwrap();
        let mut failed = vec![false; 7];
        failed[2] = true;
        let colored = color_after_dissemination(&interleaved, &failed);
        let g = gaps(&colored);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|gap| gap.len == 1), "{g:?}");
        assert_eq!(max_gap(&colored), 1);
    }

    #[test]
    fn kary_tolerates_k_minus_1_failures_with_stride_coloring() {
        // §3.2.1: with k-1 failures at least every k-th process is
        // colored after dissemination.
        let k = 4u32;
        let p = 256u32;
        let tree = TreeKind::Kary {
            k,
            order: Ordering::Interleaved,
        }
        .build(p, &LogP::PAPER)
        .unwrap();
        // Fail k-1 = 3 arbitrary non-root processes.
        for failset in [[1u32, 2, 3], [5, 17, 90], [1, 6, 200]] {
            let mut failed = vec![false; p as usize];
            for f in failset {
                failed[f as usize] = true;
            }
            let colored = color_after_dissemination(&tree, &failed);
            assert!(
                max_gap(&colored) < k,
                "g_max must stay below k: {failset:?} → {}",
                max_gap(&colored)
            );
        }
    }

    #[test]
    fn failed_leaf_is_a_size_one_gap() {
        let tree = TreeKind::BINOMIAL.build(16, &LogP::PAPER).unwrap();
        let leaf = (0..16u32).find(|&r| tree.children(r).is_empty()).unwrap();
        let mut failed = vec![false; 16];
        failed[leaf as usize] = true;
        let colored = color_after_dissemination(&tree, &failed);
        assert_eq!(
            gaps(&colored),
            vec![Gap {
                start: leaf,
                len: 1
            }]
        );
    }

    #[test]
    fn fault_free_dissemination_colors_everyone() {
        let tree = TreeKind::LAME2.build(100, &LogP::PAPER).unwrap();
        let colored = color_after_dissemination(&tree, &[false; 100]);
        assert!(colored.iter().all(|&c| c));
    }
}
