//! k-ary trees (§3.2.1).
//!
//! A full k-ary tree has `k^ℓ` processes at level `ℓ`. The interleaved
//! numbering gives process `r` at level `ℓ` the children
//!
//! ```text
//! { r' | r' = r + i·k^ℓ,  0 < i ≤ k,  r' < P }
//! ```
//!
//! so that a failing process at level `ℓ` leaves every `k^ℓ`-th process
//! uncolored — many gaps of size 1 instead of one subtree-sized gap.
//! With fewer than `k` failures at least every `k`-th process is colored
//! after dissemination, which is why opportunistic correction with
//! `d ≥ k` tolerates at least `k - 1` failures (§4.2).

use ct_logp::Rank;

use super::shape::Shape;

/// First rank of level `ℓ` in the interleaved numbering:
/// `S(ℓ) = (k^ℓ - 1)/(k - 1)` for `k > 1`, `S(ℓ) = ℓ` for `k = 1`.
/// Saturates at `u64::MAX` to stay safe for deep levels.
fn level_start(k: u32, level: u32) -> u64 {
    if k == 1 {
        return level as u64;
    }
    let mut total: u64 = 0;
    let mut width: u64 = 1;
    for _ in 0..level {
        total = total.saturating_add(width);
        width = width.saturating_mul(k as u64);
        if total == u64::MAX {
            break;
        }
    }
    total
}

/// Level of rank `r` in the interleaved numbering.
pub fn level_of(r: Rank, k: u32) -> u32 {
    assert!(k >= 1);
    let mut level = 0;
    while level_start(k, level + 1) <= r as u64 {
        level += 1;
    }
    level
}

/// Children of `r` in a k-ary interleaved tree with `p` processes, in
/// send order (`i = 1, …, k`).
pub fn children_interleaved(r: Rank, k: u32, p: u32) -> Vec<Rank> {
    assert!(k >= 1 && r < p);
    let level = level_of(r, k);
    let stride = (k as u64).saturating_pow(level);
    (1..=k as u64)
        .map(|i| r as u64 + i.saturating_mul(stride))
        .take_while(|&c| c < p as u64)
        .map(|c| c as Rank)
        .collect()
}

/// Parent of `r > 0` in the interleaved numbering.
pub fn parent_interleaved(r: Rank, k: u32) -> Rank {
    assert!(r > 0 && k >= 1);
    let level = level_of(r, k);
    debug_assert!(level >= 1);
    let start = level_start(k, level);
    let prev_start = level_start(k, level - 1);
    let x = r as u64 - start;
    let stride = (k as u64).saturating_pow(level - 1);
    (prev_start + x % stride) as Rank
}

/// Build the interleaved k-ary shape for `p` processes.
pub(crate) fn kary_interleaved(p: u32, k: u32) -> Shape {
    assert!(p >= 1 && k >= 1);
    let mut shape = Shape::with_capacity(p);
    // Ranks are attached in increasing order; `attach` requires the
    // parent to exist, which holds because parents have smaller ranks.
    // We must attach rank r to parent_interleaved(r) in increasing r, but
    // `Shape::attach` appends children in call order — for a parent at
    // level ℓ its children r + i·k^ℓ increase with i, and increasing
    // child rank visits parents cyclically; attaching ranks in ascending
    // order therefore appends each parent's children in ascending i. ✓
    for r in 1..p {
        let parent = parent_interleaved(r, k);
        let attached = shape.attach(parent);
        debug_assert_eq!(attached, r);
    }
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, Topology, TreeKind};
    use ct_logp::LogP;

    #[test]
    fn level_boundaries_binary() {
        // k=2: levels start at 0, 1, 3, 7, 15, …
        assert_eq!(level_start(2, 0), 0);
        assert_eq!(level_start(2, 1), 1);
        assert_eq!(level_start(2, 2), 3);
        assert_eq!(level_start(2, 3), 7);
        assert_eq!(level_of(0, 2), 0);
        assert_eq!(level_of(1, 2), 1);
        assert_eq!(level_of(2, 2), 1);
        assert_eq!(level_of(3, 2), 2);
        assert_eq!(level_of(6, 2), 2);
        assert_eq!(level_of(7, 2), 3);
    }

    #[test]
    fn figure3_right_binary_tree() {
        // Figure 3 (right), k = 2, P = 7: 0→{1,2}, 1→{3,5}, 2→{4,6}.
        assert_eq!(children_interleaved(0, 2, 7), vec![1, 2]);
        assert_eq!(children_interleaved(1, 2, 7), vec![3, 5]);
        assert_eq!(children_interleaved(2, 2, 7), vec![4, 6]);
        for leaf in 3..7 {
            assert!(children_interleaved(leaf, 2, 7).is_empty());
        }
        assert_eq!(parent_interleaved(4, 2), 2);
        assert_eq!(parent_interleaved(3, 2), 1);
        assert_eq!(parent_interleaved(5, 2), 1);
        assert_eq!(parent_interleaved(6, 2), 2);
    }

    #[test]
    fn parent_child_are_inverse() {
        for k in [1u32, 2, 3, 4, 7] {
            let p = 200;
            for r in 0..p {
                for c in children_interleaved(r, k, p) {
                    assert_eq!(parent_interleaved(c, k), r, "k={k} r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn unary_tree_is_a_chain() {
        let shape = kary_interleaved(5, 1);
        let t = shape.into_tree(TreeKind::Kary {
            k: 1,
            order: Ordering::Interleaved,
        });
        for r in 0..4 {
            assert_eq!(t.children(r), &[r + 1]);
        }
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn failure_at_level_l_leaves_stride_gaps() {
        // §3.2.1: a failing process on level ℓ leads to every k^ℓ-th
        // process being uncolored. Check for k=3, a level-1 failure.
        let k = 3;
        let p = 40;
        let t = TreeKind::Kary {
            k,
            order: Ordering::Interleaved,
        }
        .build(p, &LogP::PAPER)
        .unwrap();
        let failed: Rank = 2; // level 1
        let mut uncolored: Vec<Rank> = t.subtree(failed);
        uncolored.sort_unstable();
        // All descendants are ≡ failed (mod k^1) spaced by powers of 3.
        for w in uncolored.windows(2) {
            assert!((w[1] - w[0]) % k == 0, "stride must be multiple of k^1");
        }
    }

    #[test]
    fn send_order_is_ascending_child_rank() {
        let t = TreeKind::FOUR_ARY.build(100, &LogP::PAPER).unwrap();
        for r in 0..100 {
            let kids = t.children(r);
            for w in kids.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
