//! The generic growth process behind binomial, Lamé and optimal trees.
//!
//! §3.2.2 builds interleaved trees iteratively: "starting from iteration
//! `t = 0` with one process that is ready to send, each process ready to
//! send gets assigned a child. Processes created at an iteration `t`
//! become ready to send at iteration `t + k`", and new children "get
//! ranks assigned in succession", lower-ranked parents first.
//!
//! Abstracting the two delays gives every recurrence tree in the paper
//! from one builder:
//!
//! | tree | send interval `a` | ready delay `b` | ready-count recurrence |
//! |---|---|---|---|
//! | binomial | 1 | 1 | `R(t) = 2·R(t-1)` |
//! | Lamé order k | 1 | k | `R(t) = R(t-1) + R(t-k)` |
//! | optimal (§3.2.3) | `o` | `2o + L` | `R(t) = R(t-o) + R(t-2o-L)` |
//!
//! A ready process emits a child every `a` steps; a child created by a
//! send starting at `t` is itself ready at `t + b`. Children are
//! assigned ranks in `(time, parent rank)` order, which is exactly what
//! makes the numbering interleaved (Lemma 1). For the optimal tree this
//! greedy construction also makes all processes stop sending at roughly
//! the same time, the latency-optimal communication graph of Karp et al.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ct_logp::{LogP, Rank};

use super::shape::Shape;

/// Parameters of the growth process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Growth {
    /// Steps between two consecutive sends of one process (`a ≥ 1`).
    pub send_interval: u64,
    /// Steps from the start of the send that creates a process until
    /// that process is ready to send itself (`b ≥ 1`).
    pub ready_delay: u64,
}

impl Growth {
    /// Binomial tree: `T_t = T_{t-1} • T_{t-1}`.
    pub fn binomial() -> Growth {
        Growth {
            send_interval: 1,
            ready_delay: 1,
        }
    }

    /// Lamé tree of order `k ≥ 1`: `T_t = T_{t-1} • T_{t-k}`.
    pub fn lame(k: u32) -> Growth {
        assert!(k >= 1, "Lamé order must be ≥ 1");
        Growth {
            send_interval: 1,
            ready_delay: k as u64,
        }
    }

    /// Latency-optimal tree for the given LogP parameters:
    /// `T_t = T_{t-o} • T_{t-2o-L}`.
    pub fn optimal(logp: &LogP) -> Growth {
        Growth {
            send_interval: logp.o(),
            ready_delay: logp.transit_steps(),
        }
    }
}

/// Run the growth process until `p` processes exist and return the
/// resulting interleaved shape.
pub(crate) fn grow(p: u32, rule: Growth) -> Shape {
    assert!(p >= 1);
    assert!(rule.send_interval >= 1 && rule.ready_delay >= 1);
    let mut shape = Shape::with_capacity(p);
    if p == 1 {
        return shape;
    }
    // Min-heap of (next send start time, rank). Popping in (time, rank)
    // order realizes "children of the processes with lower ranks are
    // considered to be created first" (§3.2.2).
    let mut ready: BinaryHeap<Reverse<(u64, Rank)>> = BinaryHeap::new();
    ready.push(Reverse((0, 0)));
    while shape.len() < p {
        let Reverse((t, sender)) = ready.pop().expect("at least the root is ready");
        let child = shape.attach(sender);
        ready.push(Reverse((t + rule.send_interval, sender)));
        ready.push(Reverse((t + rule.ready_delay, child)));
    }
    shape
}

/// Per-rank creation times of the growth process — the dissemination
/// timeline of Figure 5 when the LogP parameters match the rule. Entry 0
/// (the root) is 0; entry `r` is the start time of the send that created
/// rank `r`, plus `ready_delay` (i.e. the time `r` finished receiving).
pub fn creation_times(p: u32, rule: Growth) -> Vec<u64> {
    assert!(p >= 1);
    let mut times = Vec::with_capacity(p as usize);
    times.push(0u64);
    let mut ready: BinaryHeap<Reverse<(u64, Rank)>> = BinaryHeap::new();
    ready.push(Reverse((0, 0)));
    let mut created: Rank = 1;
    while created < p {
        let Reverse((t, sender)) = ready.pop().expect("nonempty");
        times.push(t + rule.ready_delay);
        ready.push(Reverse((t + rule.send_interval, sender)));
        ready.push(Reverse((t + rule.ready_delay, created)));
        created += 1;
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, Topology, TreeKind};

    fn children_of(shape_p: u32, rule: Growth, r: Rank) -> Vec<Rank> {
        let tree = grow(shape_p, rule).into_tree(TreeKind::Binomial {
            order: Ordering::Interleaved,
        });
        tree.children(r).to_vec()
    }

    #[test]
    fn binomial_children_are_rank_plus_powers_of_two() {
        // Classic interleaved binomial: children of r are r + 2^i for
        // 2^i > r (§3.2.2 simplification).
        let p = 64;
        let tree = grow(p, Growth::binomial()).into_tree(TreeKind::BINOMIAL);
        for r in 0..p {
            let expected: Vec<Rank> = (0..32)
                .map(|i| 1u64 << i)
                .filter(|&pow| pow > r as u64 && (r as u64 + pow) < p as u64)
                .map(|pow| r + pow as Rank)
                .collect();
            assert_eq!(tree.children(r), expected.as_slice(), "children of {r}");
        }
    }

    #[test]
    fn lame1_equals_binomial() {
        for p in [2u32, 3, 9, 33, 100] {
            let a = grow(p, Growth::lame(1)).into_tree(TreeKind::BINOMIAL);
            let b = grow(p, Growth::binomial()).into_tree(TreeKind::BINOMIAL);
            assert_eq!(a, b, "P={p}");
        }
    }

    #[test]
    fn figure5_lame3_tree() {
        // Figure 5(b): Lamé tree with k = 3, P = 9.
        // Derived from Equation (2): 0 → {1,2,3,4,6}, 1 → {5,7}, 2 → {8}.
        let rule = Growth::lame(3);
        assert_eq!(children_of(9, rule, 0), vec![1, 2, 3, 4, 6]);
        assert_eq!(children_of(9, rule, 1), vec![5, 7]);
        assert_eq!(children_of(9, rule, 2), vec![8]);
        for r in [3u32, 4, 5, 6, 7, 8] {
            assert_eq!(children_of(9, rule, r), Vec::<Rank>::new());
        }
    }

    #[test]
    fn figure5_timeline() {
        // With L = o = 1 the Lamé k=3 construction is the real timeline:
        // process 1 is ready (finished receiving) at step 3, process 2 at
        // step 4, ... (Figure 5a).
        let times = creation_times(9, Growth::lame(3));
        assert_eq!(times, vec![0, 3, 4, 5, 6, 6, 7, 7, 7]);
    }

    #[test]
    fn optimal_tree_has_wider_root_and_lower_height_than_binomial() {
        let logp = LogP::PAPER; // L=2, o=1 → ready delay 4
        let p = 1 << 12;
        let opt = grow(p, Growth::optimal(&logp)).into_tree(TreeKind::OPTIMAL);
        let bin = grow(p, Growth::binomial()).into_tree(TreeKind::BINOMIAL);
        // The optimal tree keeps every colored process sending until the
        // end: the root has far more children and subtree hops are fewer.
        assert!(opt.children(0).len() > bin.children(0).len());
        assert!(opt.height() < bin.height());
    }

    #[test]
    fn growth_respects_ready_delay() {
        // With a huge ready delay only the root ever sends → a star.
        let star = grow(
            17,
            Growth {
                send_interval: 1,
                ready_delay: 1_000_000,
            },
        )
        .into_tree(TreeKind::BINOMIAL);
        assert_eq!(star.children(0).len(), 16);
        assert_eq!(star.height(), 1);
    }

    #[test]
    fn creation_times_are_monotone() {
        for rule in [Growth::binomial(), Growth::lame(2), Growth::lame(5)] {
            let times = creation_times(200, rule);
            for w in times.windows(2) {
                assert!(w[0] <= w[1], "rank creation times must be non-decreasing");
            }
        }
    }
}
