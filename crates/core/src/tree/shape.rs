//! Intermediate tree representation shared by the builders.
//!
//! Builders produce a [`Shape`] with *interleaved* ranks (their natural
//! construction order). [`Shape::renumber_dfs`] converts to the in-order
//! numbering by relabelling positions in depth-first (preorder) traversal
//! — the paper's "numbering the processes in the order of depth-first
//! traversal" (§3.2) — while keeping the communication shape identical.
//!
//! The shape is stored flat: just the parent array. [`Shape::attach`]
//! assigns ranks sequentially in call order, so a rank's children *in
//! send order* are exactly its children in ascending rank order — no
//! per-rank child vectors are needed, and finalization into a [`Tree`]
//! is a single counting sort into CSR form.

use ct_logp::Rank;

use super::{csr_children, Tree, TreeKind};

/// A tree under construction: flat parent links in attach order.
pub(crate) struct Shape {
    /// `parent[r]`, with `parent[0] == 0`. Children of any rank, in send
    /// order, are its children in ascending rank order (ranks are handed
    /// out sequentially by [`Shape::attach`]).
    parent: Vec<Rank>,
}

impl Shape {
    /// An isolated root; builders attach the remaining `p - 1` processes.
    pub fn with_capacity(p: u32) -> Shape {
        let mut parent = Vec::with_capacity(p as usize);
        parent.push(0);
        Shape { parent }
    }

    /// Number of processes attached so far.
    pub fn len(&self) -> u32 {
        self.parent.len() as u32
    }

    /// Attach the next process (rank `len()`) as the last child of
    /// `parent`, returning the new rank.
    pub fn attach(&mut self, parent: Rank) -> Rank {
        let child = self.len();
        self.parent.push(parent);
        child
    }

    /// Finalize into an immutable [`Tree`].
    pub fn into_tree(self, kind: TreeKind) -> Tree {
        Tree::from_parent_links(self.parent, Some(kind))
    }

    /// Relabel ranks by preorder depth-first traversal (children visited
    /// in send order). The root keeps rank 0 and every subtree becomes a
    /// contiguous rank range — the in-order numbering of Figures 3/4.
    ///
    /// Preorder labels increase along every child list, so the relabelled
    /// shape preserves the "send order = ascending rank" invariant.
    pub fn renumber_dfs(self) -> Shape {
        let p = self.parent.len();
        let (offsets, targets) = csr_children(&self.parent);
        // new_rank[old] — assigned in preorder.
        let mut new_rank = vec![0 as Rank; p];
        let mut next: Rank = 0;
        // Explicit stack; children pushed reversed so send order pops first.
        let mut stack: Vec<Rank> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(old) = stack.pop() {
            new_rank[old as usize] = next;
            next += 1;
            let (lo, hi) = (offsets[old as usize], offsets[old as usize + 1]);
            stack.extend(targets[lo as usize..hi as usize].iter().rev().copied());
        }
        debug_assert_eq!(next as usize, p);

        let mut parent = vec![0 as Rank; p];
        for old in 1..p {
            parent[new_rank[old] as usize] = new_rank[self.parent[old] as usize];
        }
        Shape { parent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, Topology};

    fn chain(p: u32) -> Shape {
        let mut s = Shape::with_capacity(p);
        for r in 0..p - 1 {
            s.attach(r);
        }
        s
    }

    #[test]
    fn attach_assigns_sequential_ranks() {
        let mut s = Shape::with_capacity(4);
        assert_eq!(s.attach(0), 1);
        assert_eq!(s.attach(0), 2);
        assert_eq!(s.attach(1), 3);
        assert_eq!(s.parent, vec![0, 0, 0, 1]);
        let t = s.into_tree(TreeKind::BINOMIAL);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3]);
    }

    #[test]
    fn dfs_renumber_keeps_chain_identical() {
        let s = chain(5).renumber_dfs();
        assert_eq!(s.parent, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn dfs_renumber_matches_figure3_binary_tree() {
        // Interleaved binary tree of Figure 3 (right): 0→{1,2}, 1→{3,5},
        // 2→{4,6}. DFS renumbering must produce the left-hand in-order
        // tree: 0→{1,4}, 1→{2,3}, 4→{5,6}.
        let mut s = Shape::with_capacity(7);
        s.attach(0); // 1
        s.attach(0); // 2
        s.attach(1); // 3
        s.attach(2); // 4
        s.attach(1); // 5
        s.attach(2); // 6
        let t = s.renumber_dfs().into_tree(TreeKind::Kary {
            k: 2,
            order: Ordering::InOrder,
        });
        assert_eq!(t.children(0), &[1, 4]);
        assert_eq!(t.children(1), &[2, 3]);
        assert_eq!(t.children(4), &[5, 6]);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(5), Some(4));
    }

    #[test]
    fn dfs_renumber_makes_subtrees_contiguous() {
        // Binomial-like shape on 8 ranks.
        let mut s = Shape::with_capacity(8);
        s.attach(0); // 1
        s.attach(0); // 2
        s.attach(1); // 3
        s.attach(0); // 4
        s.attach(1); // 5
        s.attach(2); // 6
        s.attach(3); // 7
        let t = s.renumber_dfs().into_tree(TreeKind::Binomial {
            order: Ordering::InOrder,
        });
        for r in 0..8 {
            let mut sub = t.subtree(r);
            sub.sort_unstable();
            let lo = sub[0];
            assert_eq!(
                sub,
                (lo..lo + sub.len() as Rank).collect::<Vec<_>>(),
                "subtree of {r} must be a contiguous rank range"
            );
        }
    }
}
