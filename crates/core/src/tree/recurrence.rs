//! Ready-to-send recurrences `R(t)` (Equation 1 and §3.2.3).
//!
//! `R(t)` counts the processes ready to send at iteration `t` of the
//! growth process. For a Lamé tree of order `k`:
//!
//! ```text
//! R(t) = 0                     t < 0
//! R(t) = 1                     0 ≤ t < k
//! R(t) = R(t-1) + R(t-k)       t ≥ k
//! ```
//!
//! and for the latency-optimal tree `R(t) = R(t-o) + R(t-2o-L)` with
//! boundary `1` on `0 ≤ t < 2o + L`. These sequences drive Equation (2)
//! (child ranks `r' = r + R(i + k - 1)`), the analysis of dissemination
//! latency, and consistency tests for the growth builder.

use ct_logp::LogP;

/// A lazily extended ready-to-send sequence `R(t) = R(t-a) + R(t-b)`
/// with `R(t) = 1` for `0 ≤ t < b` and `R(t) = 0` for `t < 0`.
///
/// `a = 1, b = k` gives Lamé order `k` (Equation 1; binomial for
/// `k = 1`), `a = o, b = 2o + L` gives the optimal tree (§3.2.3).
#[derive(Clone, Debug)]
pub struct ReadyCount {
    a: u64,
    b: u64,
    // values[t] = R(t), extended on demand; saturating at u64::MAX.
    values: Vec<u64>,
}

impl ReadyCount {
    /// Generic recurrence with send interval `a ≥ 1` and ready delay
    /// `b ≥ 1`.
    pub fn new(a: u64, b: u64) -> ReadyCount {
        assert!(a >= 1 && b >= 1, "recurrence delays must be ≥ 1");
        ReadyCount {
            a,
            b,
            values: Vec::new(),
        }
    }

    /// The Lamé order-`k` sequence of Equation (1); `k = 1` is binomial
    /// (`R(t) = 2^t`).
    pub fn lame(k: u32) -> ReadyCount {
        ReadyCount::new(1, k as u64)
    }

    /// The optimal-tree sequence for LogP parameters.
    pub fn optimal(logp: &LogP) -> ReadyCount {
        ReadyCount::new(logp.o(), logp.transit_steps())
    }

    /// `R(t)`; `t < 0` is represented by calling [`ReadyCount::at`] with
    /// a negative `i64`.
    pub fn at(&mut self, t: i64) -> u64 {
        if t < 0 {
            return 0;
        }
        let t = t as u64;
        while self.values.len() as u64 <= t {
            let n = self.values.len() as u64;
            let v = if n < self.b {
                1
            } else {
                let ra = self.values[(n - self.a) as usize];
                let rb = self.values[(n - self.b) as usize];
                ra.saturating_add(rb)
            };
            self.values.push(v);
        }
        self.values[t as usize]
    }

    /// Smallest `t` with `R(t) ≥ n` — the number of iterations the
    /// growth process needs to make `n` processes ready.
    pub fn inverse(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let mut t = 0;
        while self.at(t as i64) < n {
            t += 1;
        }
        t
    }

    /// Smallest iteration `s'` at which rank `r` can send:
    /// `min { s | R(s) > r }` (Equation 2).
    pub fn first_send_iteration(&mut self, r: u64) -> u64 {
        self.inverse(r.saturating_add(1))
    }
}

/// Children of rank `r` per Equation (2):
/// `{ r' | r' = r + R(i + b - a·1), i ≥ s', R(s') > r, r' < P }` with the
/// index advancing by the send interval `a`.
///
/// Only valid when the recurrence is *phase-consistent* (`a = 1`, i.e.
/// Lamé/binomial, or `o = 1` optimal); the growth builder in
/// [`super::grow`] is the general construction and the two are verified
/// to agree in tests.
pub fn children_by_equation2(r: u64, p: u64, seq: &mut ReadyCount) -> Vec<u64> {
    let (a, b) = (seq.a, seq.b);
    let s_prime = seq.first_send_iteration(r);
    let mut out = Vec::new();
    let mut i = s_prime;
    loop {
        let child = r + seq.at((i + b - a) as i64);
        if child >= p {
            break;
        }
        out.push(child);
        i += a;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::grow::{grow, Growth};
    use crate::tree::{Topology, TreeKind};

    #[test]
    fn binomial_sequence_is_powers_of_two() {
        let mut r = ReadyCount::lame(1);
        for t in 0..20 {
            assert_eq!(r.at(t), 1u64 << t as u64);
        }
        assert_eq!(r.at(-1), 0);
    }

    #[test]
    fn lame3_sequence_matches_figure5() {
        // §3.2.2 example: R(3) = 2, R(4) = 3 ("Then process 2 can send at
        // iteration 4, since R(4) = 3 and so on").
        let mut r = ReadyCount::lame(3);
        let expected = [1u64, 1, 1, 2, 3, 4, 6, 9, 13, 19];
        for (t, &e) in expected.iter().enumerate() {
            assert_eq!(r.at(t as i64), e, "R({t})");
        }
    }

    #[test]
    fn lame2_is_fibonacci_like() {
        let mut r = ReadyCount::lame(2);
        // R: 1 1 2 3 5 8 13 … (Fibonacci shifted)
        let expected = [1u64, 1, 2, 3, 5, 8, 13, 21, 34];
        for (t, &e) in expected.iter().enumerate() {
            assert_eq!(r.at(t as i64), e);
        }
    }

    #[test]
    fn optimal_paper_params_sequence() {
        // L=2, o=1 → R(t) = R(t-1) + R(t-4), boundary 1 for t ∈ [0, 4).
        let mut r = ReadyCount::optimal(&ct_logp::LogP::PAPER);
        let expected = [1u64, 1, 1, 1, 2, 3, 4, 5, 7, 10, 14, 19, 26];
        for (t, &e) in expected.iter().enumerate() {
            assert_eq!(r.at(t as i64), e, "R({t})");
        }
    }

    #[test]
    fn inverse_is_left_inverse() {
        let mut r = ReadyCount::lame(2);
        for n in 1..2000u64 {
            let t = r.inverse(n);
            assert!(r.at(t as i64) >= n);
            if t > 0 {
                assert!(r.at(t as i64 - 1) < n);
            }
        }
    }

    #[test]
    fn equation2_agrees_with_growth_builder_for_lame_trees() {
        for k in [1u32, 2, 3, 5] {
            let p = 500u32;
            let tree = grow(p, Growth::lame(k)).into_tree(TreeKind::LAME2);
            let mut seq = ReadyCount::lame(k);
            for r in 0..p {
                let expected: Vec<u64> = children_by_equation2(r as u64, p as u64, &mut seq);
                let actual: Vec<u64> = tree.children(r).iter().map(|&c| c as u64).collect();
                assert_eq!(actual, expected, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn equation2_agrees_with_growth_builder_for_optimal_o1() {
        // For o = 1 the optimal-tree formula is phase-consistent.
        for l in [1u64, 2, 3, 5] {
            let logp = ct_logp::LogP::new(l, 1, 1).unwrap();
            let p = 300u32;
            let tree = grow(p, Growth::optimal(&logp)).into_tree(TreeKind::OPTIMAL);
            let mut seq = ReadyCount::optimal(&logp);
            for r in 0..p {
                let expected = children_by_equation2(r as u64, p as u64, &mut seq);
                let actual: Vec<u64> = tree.children(r).iter().map(|&c| c as u64).collect();
                assert_eq!(actual, expected, "L={l} r={r}");
            }
        }
    }

    #[test]
    fn ready_count_saturates_instead_of_overflowing() {
        let mut r = ReadyCount::lame(1);
        assert_eq!(r.at(200), u64::MAX); // 2^200 saturates
    }
}
