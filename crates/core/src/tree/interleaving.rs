//! Definition 1: the interleaving property.
//!
//! > A tree `T_f` is interleaved iff for any of its subtrees `T_s` and a
//! > ring `R_s` comprising the nodes of `T_s`, any adjacent pair of
//! > distinct nodes in `R_s` either descend from each other or their
//! > only common ancestor is `root(T_s)`.
//!
//! The ring `R_s` orders the subtree's nodes by rank (preserving their
//! relative order on the full ring `R_f`) and additionally connects the
//! first and last node.
//!
//! This module is the executable form of the definition: `O(n·h²)` and
//! meant for validation and property testing (Lemma 1), not for the hot
//! path — the builders guarantee interleaving by construction.

use ct_logp::Rank;

use super::Topology;

/// A witness that a tree is *not* interleaved: an adjacent pair on the
/// ring of `subtree_root`'s subtree that neither descends from one
/// another nor meets only at the subtree root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Root of the violating subtree `T_s`.
    pub subtree_root: Rank,
    /// The offending adjacent pair on `R_s`.
    pub pair: (Rank, Rank),
    /// The pair's lowest common ancestor (≠ `subtree_root`).
    pub lca: Rank,
}

/// Lowest common ancestor by depth-walking.
pub fn lca<T: Topology + ?Sized>(tree: &T, mut a: Rank, mut b: Rank) -> Rank {
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).expect("non-root has a parent");
    }
    while tree.depth(b) > tree.depth(a) {
        b = tree.parent(b).expect("non-root has a parent");
    }
    while a != b {
        a = tree.parent(a).expect("walk terminates at the root");
        b = tree.parent(b).expect("walk terminates at the root");
    }
    a
}

/// `true` iff `anc` is an ancestor of `x` (or equal to it).
pub fn is_ancestor<T: Topology + ?Sized>(tree: &T, anc: Rank, mut x: Rank) -> bool {
    loop {
        if x == anc {
            return true;
        }
        match tree.parent(x) {
            Some(p) => x = p,
            None => return false,
        }
    }
}

/// Collect the ranks of the subtree rooted at `s`, ascending (= their
/// relative order on the ring).
fn subtree_sorted<T: Topology + ?Sized>(tree: &T, s: Rank) -> Vec<Rank> {
    let mut nodes = Vec::new();
    let mut stack = vec![s];
    while let Some(x) = stack.pop() {
        nodes.push(x);
        stack.extend_from_slice(tree.children(x));
    }
    nodes.sort_unstable();
    nodes
}

/// Check Definition 1 exhaustively over all subtrees; returns the first
/// violation found, or `None` if the tree is interleaved.
pub fn find_violation<T: Topology + ?Sized>(tree: &T) -> Option<Violation> {
    let p = tree.num_processes();
    for s in 0..p {
        let nodes = subtree_sorted(tree, s);
        let n = nodes.len();
        if n < 2 {
            continue;
        }
        for idx in 0..n {
            let u = nodes[idx];
            let v = nodes[(idx + 1) % n];
            if u == v {
                continue;
            }
            if is_ancestor(tree, u, v) || is_ancestor(tree, v, u) {
                continue;
            }
            let l = lca(tree, u, v);
            if l != s {
                return Some(Violation {
                    subtree_root: s,
                    pair: (u, v),
                    lca: l,
                });
            }
        }
    }
    None
}

/// Convenience wrapper: `true` iff the tree satisfies Definition 1.
pub fn is_interleaved<T: Topology + ?Sized>(tree: &T) -> bool {
    find_violation(tree).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, TreeKind};
    use ct_logp::LogP;

    #[test]
    fn paper_example_subtree_of_binomial() {
        // §3.2 example: in the interleaved binomial tree of Figure 4
        // (right), the subtree rooted at node 1 has ring pairs
        // (1,3),(3,5),(5,7),(7,1) — all fine — and the full tree is
        // interleaved.
        let t = TreeKind::BINOMIAL.build(8, &LogP::PAPER).unwrap();
        assert!(is_interleaved(&t));
    }

    #[test]
    fn interleaved_builders_satisfy_definition1() {
        let logp = LogP::PAPER;
        let kinds = [
            TreeKind::Kary {
                k: 2,
                order: Ordering::Interleaved,
            },
            TreeKind::Kary {
                k: 3,
                order: Ordering::Interleaved,
            },
            TreeKind::FOUR_ARY,
            TreeKind::BINOMIAL,
            TreeKind::LAME2,
            TreeKind::Lame {
                k: 3,
                order: Ordering::Interleaved,
            },
            TreeKind::OPTIMAL,
        ];
        for kind in kinds {
            for p in [1u32, 2, 5, 16, 17, 63, 64, 65, 100] {
                let t = kind.build(p, &logp).unwrap();
                assert!(
                    is_interleaved(&t),
                    "{kind} with P={p}: {:?}",
                    find_violation(&t)
                );
            }
        }
    }

    #[test]
    fn in_order_trees_violate_definition1() {
        let logp = LogP::PAPER;
        // Figure 3 (left): nodes 2 and 3 are ring-adjacent, both children
        // of node 1 ≠ root.
        let t = TreeKind::Kary {
            k: 2,
            order: Ordering::InOrder,
        }
        .build(7, &logp)
        .unwrap();
        let v = find_violation(&t).expect("in-order binary tree is not interleaved");
        assert_ne!(v.lca, v.subtree_root);

        let t = TreeKind::Binomial {
            order: Ordering::InOrder,
        }
        .build(16, &logp)
        .unwrap();
        assert!(!is_interleaved(&t));
    }

    #[test]
    fn chain_is_trivially_interleaved() {
        // k = 1: every adjacent pair descends from each other.
        let t = TreeKind::Kary {
            k: 1,
            order: Ordering::InOrder,
        }
        .build(9, &LogP::PAPER)
        .unwrap();
        assert!(is_interleaved(&t));
    }

    #[test]
    fn optimal_tree_interleaving_boundary() {
        // The greedy optimal tree assigns ranks in creation order. When
        // o | L every event time is a multiple of o, all ready
        // processes send "together" (the construction is a rescaled
        // Lamé tree of order (2o+L)/o) and Lemma 1 applies. When o ∤ L
        // sender phases stagger, consecutive ranks can land in the same
        // non-root subtree, and Definition 1 genuinely fails — the
        // paper's evaluation (o = 1) never hits this regime. Minimal
        // counterexample found by property testing: L=1, o=2, P=15,
        // ring-adjacent pair (13, 14) with LCA 1.
        let bad = LogP::new(1, 2, 1).unwrap();
        let t = TreeKind::OPTIMAL.build(15, &bad).unwrap();
        let v = find_violation(&t).expect("o ∤ L staggers creation phases");
        assert_ne!(v.lca, v.subtree_root);

        // Same o with a divisible latency is fine.
        let good = LogP::new(2, 2, 1).unwrap();
        let t = TreeKind::OPTIMAL.build(15, &good).unwrap();
        assert!(is_interleaved(&t));
    }

    #[test]
    fn lca_and_ancestor_basics() {
        let t = TreeKind::BINOMIAL.build(8, &LogP::PAPER).unwrap();
        // Interleaved binomial on 8: 0→{1,2,4}, 1→{3,5}, 2→{6}, 3→{7}.
        assert_eq!(lca(&t, 3, 5), 1);
        assert_eq!(lca(&t, 7, 5), 1);
        assert_eq!(lca(&t, 6, 4), 0);
        assert_eq!(lca(&t, 3, 3), 3);
        assert!(is_ancestor(&t, 0, 7));
        assert!(is_ancestor(&t, 1, 7));
        assert!(is_ancestor(&t, 3, 7));
        assert!(!is_ancestor(&t, 2, 7));
        assert!(is_ancestor(&t, 4, 4));
    }
}
