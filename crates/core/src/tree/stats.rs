//! Structural tree statistics.
//!
//! §4.3 explains resilience differences through structure: "slower trees
//! have larger height and lower average fan-out at the same process
//! count", so a failure hits more descendants on average. These helpers
//! quantify that.

use super::Topology;

/// Summary of a topology's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Process count.
    pub processes: u32,
    /// Maximum depth.
    pub height: u32,
    /// Number of leaves.
    pub leaves: u32,
    /// Maximum number of children of any process.
    pub max_fanout: u32,
    /// Mean children per *inner* (non-leaf) process.
    pub avg_inner_fanout: f64,
    /// Mean number of descendants of a non-root process (the expected
    /// collateral damage of one uniformly random failure).
    pub avg_descendants_nonroot: f64,
    /// Per-level process counts, index = depth.
    pub level_sizes: Vec<u32>,
}

/// Compute [`TreeStats`] for any topology.
pub fn tree_stats<T: Topology + ?Sized>(tree: &T) -> TreeStats {
    let p = tree.num_processes();
    let mut leaves = 0u32;
    let mut max_fanout = 0u32;
    let mut inner = 0u64;
    let mut inner_children = 0u64;
    let mut level_sizes: Vec<u32> = Vec::new();
    // Subtree sizes bottom-up: iterate ranks in decreasing depth order.
    let mut order: Vec<u32> = (0..p).collect();
    order.sort_unstable_by_key(|&r| tree.depth(r));
    let mut subtree = vec![1u64; p as usize];
    for &r in order.iter().rev() {
        let d = tree.depth(r) as usize;
        if level_sizes.len() <= d {
            level_sizes.resize(d + 1, 0);
        }
        level_sizes[d] += 1;
        let kids = tree.children(r);
        if kids.is_empty() {
            leaves += 1;
        } else {
            inner += 1;
            inner_children += kids.len() as u64;
        }
        max_fanout = max_fanout.max(kids.len() as u32);
        for &c in kids {
            subtree[r as usize] += subtree[c as usize];
        }
    }
    let descendants_sum: u64 = (1..p as usize).map(|r| subtree[r] - 1).sum();
    TreeStats {
        processes: p,
        height: tree.depth(order[order.len() - 1]),
        leaves,
        max_fanout,
        avg_inner_fanout: if inner == 0 {
            0.0
        } else {
            inner_children as f64 / inner as f64
        },
        avg_descendants_nonroot: if p <= 1 {
            0.0
        } else {
            descendants_sum as f64 / (p - 1) as f64
        },
        level_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Ordering, TreeKind};
    use ct_logp::LogP;

    #[test]
    fn stats_of_full_binary_tree() {
        let t = TreeKind::Kary {
            k: 2,
            order: Ordering::Interleaved,
        }
        .build(7, &LogP::PAPER)
        .unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.processes, 7);
        assert_eq!(s.height, 2);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.avg_inner_fanout, 2.0);
        assert_eq!(s.level_sizes, vec![1, 2, 4]);
    }

    #[test]
    fn stats_of_chain() {
        let t = TreeKind::Kary {
            k: 1,
            order: Ordering::Interleaved,
        }
        .build(5, &LogP::PAPER)
        .unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.height, 4);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_fanout, 1);
        // Descendants of ranks 1..4: 3+2+1+0 = 6, /4 = 1.5.
        assert!((s.avg_descendants_nonroot - 1.5).abs() < 1e-12);
    }

    #[test]
    fn binomial_root_has_log_p_children() {
        let t = TreeKind::BINOMIAL.build(1 << 10, &LogP::PAPER).unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.max_fanout, 10);
        assert_eq!(s.height, 10);
        assert_eq!(s.level_sizes.iter().sum::<u32>(), 1 << 10);
    }

    #[test]
    fn slower_trees_have_more_average_descendants() {
        // §4.3: binomial (slower) processes are ancestors to more
        // processes than the optimal tree's at the same P.
        let logp = LogP::PAPER;
        let p = 1 << 12;
        let bin = tree_stats(&TreeKind::BINOMIAL.build(p, &logp).unwrap());
        let opt = tree_stats(&TreeKind::OPTIMAL.build(p, &logp).unwrap());
        assert!(
            bin.avg_descendants_nonroot > opt.avg_descendants_nonroot,
            "binomial {} vs optimal {}",
            bin.avg_descendants_nonroot,
            opt.avg_descendants_nonroot
        );
    }

    #[test]
    fn singleton_stats() {
        let t = TreeKind::BINOMIAL.build(1, &LogP::PAPER).unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.processes, 1);
        assert_eq!(s.height, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.avg_descendants_nonroot, 0.0);
        assert_eq!(s.avg_inner_fanout, 0.0);
    }
}
