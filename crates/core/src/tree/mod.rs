//! Dissemination-tree topologies and their ring structure.
//!
//! A topology assigns every process `0 ≤ r < P` a parent and an ordered
//! list of children; the broadcast payload flows root → leaves along
//! those edges (§2). The *numbering* of tree positions determines how
//! failures translate into gaps on the correction ring (§3.2):
//!
//! * [`Ordering::InOrder`] numbers processes by depth-first traversal, so
//!   a failed subtree is a *contiguous* run of unreached ranks — one big
//!   gap (Figure 1a, top).
//! * [`Ordering::Interleaved`] spreads every subtree across the ring
//!   (Definition 1), so the same failure leaves many size-1 gaps
//!   (Figure 1a, bottom).
//!
//! Four shapes are provided, all constructed by [`TreeKind::build`]:
//! k-ary (§3.2.1), binomial and Lamé (§3.2.2) and the latency-optimal
//! tree (§3.2.3). Binomial, Lamé and optimal all come from one generic
//! *growth* process ([`grow`]) parameterized by how often a process can
//! send and how long a new process needs before it can start sending.

pub mod cache;
pub mod grow;
pub mod interleaving;
pub mod kary;
pub mod recurrence;
pub mod ring;
pub mod schedule;
pub(crate) mod shape;
pub mod stats;

use core::fmt;

use ct_logp::{LogP, Rank, Time};
/// How tree positions are numbered (§3.2, Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ordering {
    /// Depth-first numbering: subtrees occupy contiguous rank ranges.
    InOrder,
    /// Interleaved numbering per Definition 1: subtrees spread over the
    /// ring, minimizing the maximum gap under failures.
    Interleaved,
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ordering::InOrder => write!(f, "in-order"),
            Ordering::Interleaved => write!(f, "interleaved"),
        }
    }
}

/// The tree shapes evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TreeKind {
    /// Full k-ary tree (§3.2.1): every inner process has `k` children.
    Kary {
        /// Fan-out; must be ≥ 1.
        k: u32,
        /// Numbering scheme.
        order: Ordering,
    },
    /// Binomial tree (§3.2.2): `T_t = T_{t-1} • T_{t-1}`, the classic
    /// small-message broadcast tree (equals [`TreeKind::Lame`] with
    /// `k = 1`).
    Binomial {
        /// Numbering scheme.
        order: Ordering,
    },
    /// Lamé tree of order `k` (§3.2.2): `T_t = T_{t-1} • T_{t-k}`.
    /// Latency-optimal when `2o + L = k`.
    Lame {
        /// Recurrence order; must be ≥ 1. The paper's evaluation uses
        /// `k = 2` (between binomial and optimal for `L=2, o=1`).
        k: u32,
        /// Numbering scheme.
        order: Ordering,
    },
    /// Latency-optimal tree (§3.2.3): `T_t = T_{t-o} • T_{t-2o-L}`,
    /// built so that all processes stop sending at about the same time.
    /// The shape depends on the LogP parameters passed to
    /// [`TreeKind::build`].
    Optimal {
        /// Numbering scheme.
        order: Ordering,
    },
}

impl TreeKind {
    /// Interleaved binomial tree, the paper's default workhorse.
    pub const BINOMIAL: TreeKind = TreeKind::Binomial {
        order: Ordering::Interleaved,
    };
    /// Interleaved 4-ary tree as used in Figures 6, 8, 9.
    pub const FOUR_ARY: TreeKind = TreeKind::Kary {
        k: 4,
        order: Ordering::Interleaved,
    };
    /// Interleaved order-2 Lamé tree as used in the evaluation (§4).
    pub const LAME2: TreeKind = TreeKind::Lame {
        k: 2,
        order: Ordering::Interleaved,
    };
    /// Interleaved optimal tree.
    pub const OPTIMAL: TreeKind = TreeKind::Optimal {
        order: Ordering::Interleaved,
    };

    /// Build the topology for `p` processes under LogP parameters
    /// `logp` (only [`TreeKind::Optimal`] consults them).
    ///
    /// ```
    /// use ct_core::tree::{interleaving, Topology, TreeKind};
    /// use ct_logp::LogP;
    ///
    /// let tree = TreeKind::BINOMIAL.build(8, &LogP::PAPER)?;
    /// assert_eq!(tree.children(0), &[1, 2, 4]); // r + 2^i for 2^i > r
    /// assert!(interleaving::is_interleaved(&tree)); // Definition 1
    /// # Ok::<(), ct_core::tree::TreeError>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`TreeError`] for `p == 0` or a degenerate shape
    /// parameter (`k == 0`).
    pub fn build(self, p: u32, logp: &LogP) -> Result<Tree, TreeError> {
        if p == 0 {
            return Err(TreeError::NoProcesses);
        }
        let (shape, order) = match self {
            TreeKind::Kary { k, order } => {
                if k == 0 {
                    return Err(TreeError::ZeroArity);
                }
                (kary::kary_interleaved(p, k), order)
            }
            TreeKind::Binomial { order } => (grow::grow(p, grow::Growth::binomial()), order),
            TreeKind::Lame { k, order } => {
                if k == 0 {
                    return Err(TreeError::ZeroArity);
                }
                (grow::grow(p, grow::Growth::lame(k)), order)
            }
            TreeKind::Optimal { order } => (grow::grow(p, grow::Growth::optimal(logp)), order),
        };
        let tree = match order {
            Ordering::Interleaved => shape.into_tree(self),
            Ordering::InOrder => shape.renumber_dfs().into_tree(self),
        };
        Ok(tree)
    }

    /// Human-readable identifier used in experiment CSV headers.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for TreeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeKind::Kary { k, order } => write!(f, "{k}-ary/{order}"),
            TreeKind::Binomial { order } => write!(f, "binomial/{order}"),
            TreeKind::Lame { k, order } => write!(f, "lame{k}/{order}"),
            TreeKind::Optimal { order } => write!(f, "optimal/{order}"),
        }
    }
}

/// Errors from topology construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// `p == 0`: a broadcast needs at least the root.
    NoProcesses,
    /// A fan-out / recurrence order of zero was requested.
    ZeroArity,
    /// A custom parent array names a rank outside `0..P`.
    ParentOutOfRange {
        /// The child whose parent is invalid.
        child: Rank,
    },
    /// A custom parent array does not root rank 0 at itself.
    BadRoot,
    /// A custom parent array contains a cycle / disconnected component.
    NotATree {
        /// A rank not reachable from the root.
        unreachable: Rank,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NoProcesses => write!(f, "a tree needs at least one process"),
            TreeError::ZeroArity => write!(f, "tree arity / recurrence order must be ≥ 1"),
            TreeError::ParentOutOfRange { child } => {
                write!(f, "rank {child} has an out-of-range parent")
            }
            TreeError::BadRoot => write!(f, "rank 0 must be its own parent (the root)"),
            TreeError::NotATree { unreachable } => {
                write!(f, "rank {unreachable} is not reachable from the root")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Read-only view of a dissemination topology.
///
/// Implemented by [`Tree`]; protocols are generic over this so custom
/// topologies (e.g. topology-aware renumberings, §6) plug in unchanged.
pub trait Topology {
    /// Number of processes.
    fn num_processes(&self) -> u32;

    /// Children of `r` in **send order** (the parent transmits to
    /// `children(r)[0]` first; order matters for latency).
    fn children(&self, r: Rank) -> &[Rank];

    /// Parent of `r`, or `None` for the root (rank 0).
    fn parent(&self, r: Rank) -> Option<Rank>;

    /// Depth of `r` (root = 0).
    fn depth(&self, r: Rank) -> u32;
}

/// Build the CSR child adjacency (offsets + packed child array) of a
/// parent array via one stable counting sort.
///
/// Children are emitted in ascending child-rank order, which is send
/// order for every builder ([`shape::Shape::attach`] hands out ranks
/// sequentially) and the documented convention for custom parent arrays
/// ([`Tree::from_parents`]). No per-rank `Vec` is ever allocated: two
/// flat arrays, two passes.
pub(crate) fn csr_children(parent: &[Rank]) -> (Vec<u32>, Vec<Rank>) {
    let p = parent.len();
    let mut offsets = vec![0u32; p + 1];
    // Count children per rank into offsets[q + 1]…
    for &q in &parent[1..] {
        offsets[q as usize + 1] += 1;
    }
    // …prefix-sum so offsets[q + 1] = end of q's slice = start of q + 1.
    for i in 0..p {
        offsets[i + 1] += offsets[i];
    }
    // Fill, using offsets[q] (= start of q) as a running cursor. After
    // the pass offsets[q] holds the *end* of q's slice, i.e. the array
    // is the final CSR shifted left by one.
    let mut targets = vec![0 as Rank; p.saturating_sub(1)];
    for (child, &q) in parent.iter().enumerate().skip(1) {
        let pos = offsets[q as usize];
        targets[pos as usize] = child as Rank;
        offsets[q as usize] = pos + 1;
    }
    for i in (1..=p).rev() {
        offsets[i] = offsets[i - 1];
    }
    offsets[0] = 0;
    (offsets, targets)
}

std::thread_local! {
    /// Reusable DFS stack for [`Tree::subtree`], [`Tree::from_parents`]
    /// and friends — traversals at `P = 2²⁰` must not pay a fresh
    /// allocation per call.
    static SCRATCH_STACK: std::cell::RefCell<Vec<Rank>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with the thread-local scratch stack (cleared on entry).
/// Falls back to a fresh vector under reentrant use — e.g. a custom
/// [`Topology`] whose `children` itself traverses a tree.
pub(crate) fn with_scratch_stack<R>(f: impl FnOnce(&mut Vec<Rank>) -> R) -> R {
    SCRATCH_STACK.with(|cell| match cell.try_borrow_mut() {
        Ok(mut stack) => {
            stack.clear();
            f(&mut stack)
        }
        Err(_) => f(&mut Vec::new()),
    })
}

/// A concrete, fully materialized topology in CSR (compressed sparse
/// row) layout: cache-friendly and compact even at `P = 2²⁰` (three
/// `u32` words per rank — parent, offset, packed child slot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    p: u32,
    /// `parent[r]`; `parent[0] == 0` by convention.
    parent: Vec<Rank>,
    /// CSR offsets into `child_targets`, length `p + 1`.
    child_offsets: Vec<u32>,
    /// Concatenated child lists in send order.
    child_targets: Vec<Rank>,
    depth: Vec<u32>,
    kind: Option<TreeKind>,
}

impl Tree {
    /// Construct from a flat parent array whose per-parent send order is
    /// ascending child rank (the builder invariant). Used by the
    /// builders; connectivity is the caller's responsibility and is
    /// asserted in debug builds.
    pub(crate) fn from_parent_links(parent: Vec<Rank>, kind: Option<TreeKind>) -> Tree {
        let tree = Tree::from_parent_links_checked(parent, kind);
        debug_assert!(tree.is_ok(), "builders produce connected trees");
        tree.unwrap_or_else(|e| panic!("builder produced an invalid tree: {e}"))
    }

    /// CSR construction + connectivity/depth pass shared by the builder
    /// path and [`Tree::from_parents`]. Range and root errors must be
    /// screened by the caller beforehand (builders satisfy them by
    /// construction).
    fn from_parent_links_checked(
        parent: Vec<Rank>,
        kind: Option<TreeKind>,
    ) -> Result<Tree, TreeError> {
        let p = parent.len() as u32;
        let (child_offsets, child_targets) = csr_children(&parent);

        // One DFS from the root computes depths and proves the parent
        // array is a tree: each rank occurs exactly once in the CSR (one
        // parent each), so a rank left at the u32::MAX sentinel was
        // never reached — a cycle or disconnected component.
        let mut depth = vec![u32::MAX; parent.len()];
        depth[0] = 0;
        with_scratch_stack(|stack| {
            stack.push(0);
            while let Some(r) = stack.pop() {
                let (lo, hi) = (child_offsets[r as usize], child_offsets[r as usize + 1]);
                for &c in &child_targets[lo as usize..hi as usize] {
                    depth[c as usize] = depth[r as usize] + 1;
                    stack.push(c);
                }
            }
        });
        if let Some(unreachable) = depth.iter().position(|&d| d == u32::MAX) {
            return Err(TreeError::NotATree {
                unreachable: unreachable as Rank,
            });
        }

        Ok(Tree {
            p,
            parent,
            child_offsets,
            child_targets,
            depth,
            kind,
        })
    }

    /// Build a custom topology from a parent array (`parent[0]` must be
    /// `0`; children are ordered by ascending rank = send order). This
    /// is the extension point §6 gestures at — topology-aware trees
    /// "tuned to the topology of the underlying network" plug into
    /// every protocol, driver and experiment unchanged.
    ///
    /// # Errors
    /// Rejects empty, mis-rooted, cyclic or disconnected inputs.
    pub fn from_parents(parent: Vec<Rank>) -> Result<Tree, TreeError> {
        if parent.is_empty() {
            return Err(TreeError::NoProcesses);
        }
        let p = parent.len() as u32;
        if parent[0] != 0 {
            return Err(TreeError::BadRoot);
        }
        for (child, &par) in parent.iter().enumerate().skip(1) {
            if par >= p {
                return Err(TreeError::ParentOutOfRange {
                    child: child as Rank,
                });
            }
        }
        Tree::from_parent_links_checked(parent, None)
    }

    /// The [`TreeKind`] this topology was built as, or `None` for a
    /// custom topology ([`Tree::from_parents`]).
    pub fn kind(&self) -> Option<TreeKind> {
        self.kind
    }

    /// Total number of parent→child edges (`P - 1`).
    pub fn num_edges(&self) -> u32 {
        self.child_targets.len() as u32
    }

    /// Height of the tree (maximum depth).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over `(parent, child)` edges in rank order of the parent.
    pub fn edges(&self) -> impl Iterator<Item = (Rank, Rank)> + '_ {
        (0..self.p).flat_map(move |r| self.children(r).iter().map(move |&c| (r, c)))
    }

    /// All ranks in the subtree rooted at `r` (including `r`), in
    /// preorder.
    pub fn subtree(&self, r: Rank) -> Vec<Rank> {
        let mut out = Vec::new();
        self.subtree_into(r, &mut out);
        out
    }

    /// Append the subtree of `r` (preorder) to `out` without clearing
    /// it. The traversal stack is a reused thread-local scratch buffer,
    /// so repeated calls allocate nothing beyond `out`'s own growth.
    pub fn subtree_into(&self, r: Rank, out: &mut Vec<Rank>) {
        with_scratch_stack(|stack| {
            stack.push(r);
            while let Some(x) = stack.pop() {
                out.push(x);
                // Reverse keeps preorder = send order.
                stack.extend(self.children(x).iter().rev().copied());
            }
        });
    }

    /// The fault-free dissemination schedule: for each rank, the time it
    /// becomes colored under LogP timing (see [`schedule`]).
    pub fn dissemination_schedule(&self, logp: &LogP) -> Vec<Time> {
        schedule::dissemination_schedule(self, logp)
    }

    /// The time by which every process is colored in the fault-free case
    /// — the natural start for synchronized correction.
    pub fn dissemination_deadline(&self, logp: &LogP) -> Time {
        self.dissemination_schedule(logp)
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl Topology for Tree {
    #[inline]
    fn num_processes(&self) -> u32 {
        self.p
    }

    #[inline]
    fn children(&self, r: Rank) -> &[Rank] {
        let lo = self.child_offsets[r as usize] as usize;
        let hi = self.child_offsets[r as usize + 1] as usize;
        &self.child_targets[lo..hi]
    }

    #[inline]
    fn parent(&self, r: Rank) -> Option<Rank> {
        if r == 0 {
            None
        } else {
            Some(self.parent[r as usize])
        }
    }

    #[inline]
    fn depth(&self, r: Rank) -> u32 {
        self.depth[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(tree: &Tree) {
        let p = tree.num_processes();
        assert_eq!(tree.num_edges(), p - 1);
        let mut seen_as_child = vec![false; p as usize];
        for (parent, child) in tree.edges() {
            assert!(child < p);
            assert!(
                !seen_as_child[child as usize],
                "rank {child} has two parents"
            );
            seen_as_child[child as usize] = true;
            assert_eq!(tree.parent(child), Some(parent));
            assert_eq!(tree.depth(child), tree.depth(parent) + 1);
        }
        assert!(!seen_as_child[0], "root must not be a child");
        assert!(
            seen_as_child[1..].iter().all(|&b| b),
            "all non-roots reached"
        );
        assert_eq!(tree.parent(0), None);
        assert_eq!(tree.depth(0), 0);
    }

    #[test]
    fn all_kinds_build_valid_trees() {
        let logp = LogP::PAPER;
        let kinds = [
            TreeKind::Kary {
                k: 1,
                order: Ordering::Interleaved,
            },
            TreeKind::Kary {
                k: 2,
                order: Ordering::Interleaved,
            },
            TreeKind::Kary {
                k: 2,
                order: Ordering::InOrder,
            },
            TreeKind::Kary {
                k: 4,
                order: Ordering::Interleaved,
            },
            TreeKind::Binomial {
                order: Ordering::Interleaved,
            },
            TreeKind::Binomial {
                order: Ordering::InOrder,
            },
            TreeKind::Lame {
                k: 2,
                order: Ordering::Interleaved,
            },
            TreeKind::Lame {
                k: 3,
                order: Ordering::Interleaved,
            },
            TreeKind::Lame {
                k: 2,
                order: Ordering::InOrder,
            },
            TreeKind::Optimal {
                order: Ordering::Interleaved,
            },
            TreeKind::Optimal {
                order: Ordering::InOrder,
            },
        ];
        for kind in kinds {
            for p in [1u32, 2, 3, 7, 8, 9, 31, 64, 100, 255] {
                let tree = kind.build(p, &logp).unwrap();
                assert_eq!(tree.num_processes(), p, "{kind} P={p}");
                check_valid(&tree);
            }
        }
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let logp = LogP::PAPER;
        assert_eq!(
            TreeKind::BINOMIAL.build(0, &logp),
            Err(TreeError::NoProcesses)
        );
        assert_eq!(
            TreeKind::Kary {
                k: 0,
                order: Ordering::Interleaved
            }
            .build(4, &logp),
            Err(TreeError::ZeroArity)
        );
        assert_eq!(
            TreeKind::Lame {
                k: 0,
                order: Ordering::Interleaved
            }
            .build(4, &logp),
            Err(TreeError::ZeroArity)
        );
    }

    #[test]
    fn single_process_tree_is_trivial() {
        let tree = TreeKind::BINOMIAL.build(1, &LogP::PAPER).unwrap();
        assert_eq!(tree.num_processes(), 1);
        assert_eq!(tree.children(0), &[] as &[Rank]);
        assert_eq!(tree.parent(0), None);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn subtree_is_preorder_and_complete() {
        let tree = TreeKind::BINOMIAL.build(16, &LogP::PAPER).unwrap();
        let whole = tree.subtree(0);
        assert_eq!(whole.len(), 16);
        assert_eq!(whole[0], 0);
        let mut sorted = whole.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // A leaf's subtree is itself.
        let leaf = (0..16).find(|&r| tree.children(r).is_empty()).unwrap();
        assert_eq!(tree.subtree(leaf), vec![leaf]);
    }

    #[test]
    fn from_parents_accepts_valid_custom_topologies() {
        // A "fat chain": 0 → 1 → {2,3} → …
        let tree = Tree::from_parents(vec![0, 0, 1, 1, 2, 3]).unwrap();
        check_valid(&tree);
        assert_eq!(tree.kind(), None);
        assert_eq!(tree.children(1), &[2, 3]);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn from_parents_rejects_invalid_inputs() {
        assert_eq!(Tree::from_parents(vec![]), Err(TreeError::NoProcesses));
        assert_eq!(Tree::from_parents(vec![1, 0]), Err(TreeError::BadRoot));
        assert_eq!(
            Tree::from_parents(vec![0, 7]),
            Err(TreeError::ParentOutOfRange { child: 1 })
        );
        // 1 and 2 form a cycle off the root.
        assert_eq!(
            Tree::from_parents(vec![0, 2, 1]),
            Err(TreeError::NotATree { unreachable: 1 })
        );
        // Self-loop off the root.
        assert_eq!(
            Tree::from_parents(vec![0, 1]),
            Err(TreeError::NotATree { unreachable: 1 })
        );
    }

    #[test]
    fn builders_roundtrip_through_from_parents() {
        let built = TreeKind::LAME2.build(40, &LogP::PAPER).unwrap();
        let parents: Vec<Rank> = (0..40).map(|r| built.parent(r).unwrap_or(0)).collect();
        let rebuilt = Tree::from_parents(parents).unwrap();
        for r in 0..40 {
            assert_eq!(built.children(r), rebuilt.children(r), "rank {r}");
            assert_eq!(built.depth(r), rebuilt.depth(r));
        }
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(TreeKind::BINOMIAL.to_string(), "binomial/interleaved");
        assert_eq!(TreeKind::FOUR_ARY.to_string(), "4-ary/interleaved");
        assert_eq!(TreeKind::LAME2.to_string(), "lame2/interleaved");
        assert_eq!(
            TreeKind::Optimal {
                order: Ordering::InOrder
            }
            .to_string(),
            "optimal/in-order"
        );
    }
}
