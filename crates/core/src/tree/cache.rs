//! Process-wide memoization of built topologies.
//!
//! A campaign cell runs many repetitions of the same `(TreeKind, P,
//! LogP)` configuration, and a figure sweep runs many cells sharing a
//! tree; rebuilding the topology per repetition is pure waste because
//! [`TreeKind::build`] is a deterministic function of exactly that key.
//! This module caches the built [`Tree`] behind an [`Arc`] so every
//! consumer shares one allocation, and caches the corresponding
//! dissemination deadline (the synchronized-correction start time)
//! alongside it.
//!
//! Correctness: the cache is *only* keyed by inputs that fully
//! determine the build — `TreeKind` (including its [`super::Ordering`]),
//! `p`, and the LogP parameters (which only [`TreeKind::Optimal`]
//! consults, but keying on them unconditionally is always sound). The
//! returned tree is immutable, so sharing across threads and
//! repetitions cannot change results.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use ct_logp::{LogP, Time};

use super::{Tree, TreeError, TreeKind};

/// Cache key: everything [`TreeKind::build`] reads.
type Key = (TreeKind, u32, LogP);

/// One cached topology plus its dissemination deadline.
#[derive(Clone)]
struct Entry {
    tree: Arc<Tree>,
    deadline: Time,
}

/// Keep at most this many distinct topologies resident. A figure sweep
/// touches ~4 shapes × a handful of `P` values; 64 covers every current
/// workload while bounding memory if someone sweeps hundreds of sizes.
const CAPACITY: usize = 64;

fn store() -> &'static Mutex<HashMap<Key, Entry>> {
    static STORE: OnceLock<Mutex<HashMap<Key, Entry>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn entry(kind: TreeKind, p: u32, logp: &LogP) -> Result<Entry, TreeError> {
    let key = (kind, p, *logp);
    if let Some(hit) = store().lock().expect("tree cache poisoned").get(&key) {
        return Ok(hit.clone());
    }
    // Build outside the lock: builds can be slow and must not serialize
    // unrelated lookups. Two racing builders produce identical trees;
    // the second insert wins harmlessly.
    let tree = Arc::new(kind.build(p, logp)?);
    let deadline = tree.dissemination_deadline(logp);
    let fresh = Entry {
        tree: Arc::clone(&tree),
        deadline,
    };
    let mut map = store().lock().expect("tree cache poisoned");
    if map.len() >= CAPACITY {
        map.clear();
    }
    map.insert(key, fresh.clone());
    Ok(fresh)
}

/// Build-or-fetch the topology for `(kind, p, logp)`. Repeated calls
/// with the same key return the same shared `Arc<Tree>`.
pub fn cached(kind: TreeKind, p: u32, logp: &LogP) -> Result<Arc<Tree>, TreeError> {
    Ok(entry(kind, p, logp)?.tree)
}

/// The dissemination deadline of the cached topology — the default
/// synchronized-correction start time — without cloning the tree.
pub fn cached_deadline(kind: TreeKind, p: u32, logp: &LogP) -> Result<Time, TreeError> {
    Ok(entry(kind, p, logp)?.deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Topology;

    #[test]
    fn repeated_lookups_share_one_tree() {
        let a = cached(TreeKind::BINOMIAL, 512, &LogP::PAPER).unwrap();
        let b = cached(TreeKind::BINOMIAL, 512, &LogP::PAPER).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_tree_matches_fresh_build() {
        for kind in [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
        ] {
            let cachedt = cached(kind, 96, &LogP::PAPER).unwrap();
            let fresh = kind.build(96, &LogP::PAPER).unwrap();
            for r in 0..96 {
                assert_eq!(cachedt.children(r), fresh.children(r), "{kind:?} rank {r}");
                assert_eq!(cachedt.parent(r), fresh.parent(r), "{kind:?} rank {r}");
            }
            assert_eq!(
                cached_deadline(kind, 96, &LogP::PAPER).unwrap(),
                fresh.dissemination_deadline(&LogP::PAPER),
            );
        }
    }

    #[test]
    fn distinct_keys_get_distinct_trees() {
        let a = cached(TreeKind::BINOMIAL, 64, &LogP::PAPER).unwrap();
        let b = cached(TreeKind::BINOMIAL, 128, &LogP::PAPER).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let logp2 = LogP::new(4, 2, 1).unwrap();
        let c = cached(TreeKind::OPTIMAL, 64, &LogP::PAPER).unwrap();
        let d = cached(TreeKind::OPTIMAL, 64, &logp2).unwrap();
        assert!(!Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn build_errors_pass_through() {
        assert!(cached(TreeKind::BINOMIAL, 0, &LogP::PAPER).is_err());
    }
}
