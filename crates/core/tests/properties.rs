//! Property-based tests on the core data structures and invariants:
//! Lemma 1 (all recurrence trees are interleaved), structural validity
//! of every builder, gap accounting, and correction-machine safety.

use ct_core::correction::{CorrPoll, Correction, CorrectionKind};
use ct_core::tree::{interleaving, ring, Ordering, Topology, TreeKind};
use ct_logp::{LogP, Rank, Time};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        (1u32..6).prop_map(|k| TreeKind::Kary {
            k,
            order: Ordering::Interleaved
        }),
        (1u32..6).prop_map(|k| TreeKind::Kary {
            k,
            order: Ordering::InOrder
        }),
        Just(TreeKind::Binomial {
            order: Ordering::Interleaved
        }),
        Just(TreeKind::Binomial {
            order: Ordering::InOrder
        }),
        (1u32..6).prop_map(|k| TreeKind::Lame {
            k,
            order: Ordering::Interleaved
        }),
        (1u32..6).prop_map(|k| TreeKind::Lame {
            k,
            order: Ordering::InOrder
        }),
        Just(TreeKind::Optimal {
            order: Ordering::Interleaved
        }),
        Just(TreeKind::Optimal {
            order: Ordering::InOrder
        }),
    ]
}

fn arb_logp() -> impl Strategy<Value = LogP> {
    (1u64..6, 1u64..4).prop_map(|(l, o)| LogP::new(l, o, 1).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every builder yields a structurally valid spanning tree: ranks
    /// 0..P, unique parents, root at rank 0, depths consistent,
    /// children in strictly ascending send order for recurrence trees.
    #[test]
    fn builders_produce_valid_spanning_trees(
        kind in arb_kind(),
        p in 1u32..400,
        logp in arb_logp(),
    ) {
        let tree = kind.build(p, &logp).expect("valid parameters");
        prop_assert_eq!(tree.num_processes(), p);
        prop_assert_eq!(tree.num_edges(), p - 1);
        let mut seen = vec![false; p as usize];
        for (parent, child) in tree.edges() {
            prop_assert!(child < p && parent < p);
            prop_assert!(!seen[child as usize]);
            seen[child as usize] = true;
            prop_assert_eq!(tree.parent(child), Some(parent));
            prop_assert_eq!(tree.depth(child), tree.depth(parent) + 1);
        }
        prop_assert!(!seen[0]);
        prop_assert!(seen[1..].iter().all(|&b| b));
    }

    /// Lemma 1: interleaved builders satisfy Definition 1 for every P.
    /// The optimal tree's creation-order numbering is interleaved
    /// whenever `o | L` — which covers the paper's whole evaluation
    /// (`o = 1`); see `optimal_tree_interleaving_boundary` for the
    /// `o ∤ L` phase-staggering counterexample.
    #[test]
    fn lemma1_interleaving_holds(
        p in 1u32..260,
        logp in arb_logp(),
        which in 0usize..5,
        k in 1u32..6,
    ) {
        let kind = [
            TreeKind::Kary { k, order: Ordering::Interleaved },
            TreeKind::Binomial { order: Ordering::Interleaved },
            TreeKind::Lame { k, order: Ordering::Interleaved },
            TreeKind::Optimal { order: Ordering::Interleaved },
            TreeKind::Kary { k: 1, order: Ordering::InOrder }, // chain: trivially interleaved
        ][which];
        let logp = if matches!(kind, TreeKind::Optimal { .. }) && logp.l() % logp.o() != 0 {
            // Snap to the nearest o-divisible latency for optimal trees.
            LogP::new(logp.l().div_ceil(logp.o()) * logp.o(), logp.o(), 1).expect("valid")
        } else {
            logp
        };
        let tree = kind.build(p, &logp).expect("valid");
        prop_assert!(
            interleaving::is_interleaved(&tree),
            "{kind} P={p} {logp}: {:?}",
            interleaving::find_violation(&tree)
        );
    }

    /// `o | L` ⇒ the optimal tree is a (time-rescaled) Lamé tree of
    /// order `(2o + L)/o` and therefore interleaved.
    #[test]
    fn optimal_tree_interleaved_whenever_o_divides_l(
        p in 1u32..260,
        o in 1u64..4,
        mult in 1u64..4,
    ) {
        let logp = LogP::new(o * mult, o, 1).expect("valid");
        let tree = TreeKind::OPTIMAL.build(p, &logp).expect("valid");
        prop_assert!(
            interleaving::is_interleaved(&tree),
            "P={p} {logp}: {:?}",
            interleaving::find_violation(&tree)
        );
    }

    /// The CSR adjacency agrees with the reference array-of-vectors
    /// representation (the layout the tree used before the flat
    /// offsets + packed-child-array encoding) on every accessor:
    /// `children` slices, `parent` links, `subtree` DFS order, depths,
    /// the ring coloring walk, and a `from_parents` round trip.
    #[test]
    fn csr_matches_reference_adjacency(
        kind in arb_kind(),
        p in 1u32..400,
        logp in arb_logp(),
        fail_bits in proptest::collection::vec(any::<bool>(), 400),
    ) {
        let tree = kind.build(p, &logp).expect("valid parameters");
        // Reference adjacency: one Vec per rank, children pushed in
        // ascending rank order (the send order recurrence builders
        // assign and the CSR counting sort preserves).
        let mut reference = vec![Vec::<Rank>::new(); p as usize];
        let mut parent = vec![0 as Rank; p as usize];
        for child in 1..p {
            let q = tree.parent(child).expect("non-root has a parent");
            reference[q as usize].push(child);
            parent[child as usize] = q;
        }
        for r in 0..p {
            prop_assert_eq!(tree.children(r), reference[r as usize].as_slice());
        }
        // Subtree DFS through the packed child array equals the same
        // preorder walk over the reference vectors.
        for r in (0..p).step_by(1 + p as usize / 16) {
            let mut expect = Vec::new();
            let mut stack = vec![r];
            while let Some(v) = stack.pop() {
                expect.push(v);
                stack.extend(reference[v as usize].iter().rev().copied());
            }
            prop_assert_eq!(tree.subtree(r), expect);
        }
        // The ring coloring walk (CSR DFS from the root, scratch-stack
        // backed) equals live-ancestor-chain reachability computed over
        // the reference adjacency.
        let mut failed = fail_bits;
        failed.truncate(p as usize);
        failed.resize(p as usize, false);
        failed[0] = false; // root broadcasts
        let mut expect = vec![false; p as usize];
        let mut stack = vec![0 as Rank];
        while let Some(v) = stack.pop() {
            expect[v as usize] = true;
            stack.extend(
                reference[v as usize]
                    .iter()
                    .filter(|&&c| !failed[c as usize]),
            );
        }
        prop_assert_eq!(ring::color_after_dissemination(&tree, &failed), expect);
        // Rebuilding from the raw parent array reproduces the CSR
        // exactly: children, depths and edge order all survive.
        let rebuilt = ct_core::tree::Tree::from_parents(parent).expect("valid links");
        for r in 0..p {
            prop_assert_eq!(rebuilt.children(r), tree.children(r));
            prop_assert_eq!(rebuilt.depth(r), tree.depth(r));
        }
        prop_assert!(rebuilt.edges().eq(tree.edges()));
    }

    /// In-order numbering makes every subtree a contiguous rank range.
    #[test]
    fn in_order_subtrees_are_contiguous(
        p in 1u32..200,
        which in 0usize..3,
        k in 2u32..5,
    ) {
        let kind = [
            TreeKind::Binomial { order: Ordering::InOrder },
            TreeKind::Kary { k, order: Ordering::InOrder },
            TreeKind::Lame { k, order: Ordering::InOrder },
        ][which];
        let tree = kind.build(p, &LogP::PAPER).expect("valid");
        for r in 0..p {
            let mut sub = tree.subtree(r);
            sub.sort_unstable();
            let lo = sub[0];
            prop_assert_eq!(sub, (lo..lo + tree.subtree(r).len() as Rank).collect::<Vec<_>>());
        }
    }

    /// Gap accounting: total gap length equals the number of uncolored
    /// processes; gaps are disjoint, non-empty and uncolored throughout.
    #[test]
    fn gap_accounting_is_exact(mask in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut colored = mask;
        colored[0] = true; // the root is always colored
        let gaps = ring::gaps(&colored);
        let total: u32 = gaps.iter().map(|g| g.len).sum();
        prop_assert_eq!(total, ring::uncolored_count(&colored));
        for g in &gaps {
            prop_assert!(g.len >= 1);
            for i in 0..g.len {
                let idx = (g.start + i) as usize % colored.len();
                prop_assert!(!colored[idx]);
            }
            // Boundaries are colored (maximality).
            let before = (g.start as usize + colored.len() - 1) % colored.len();
            let after = (g.start + g.len) as usize % colored.len();
            prop_assert!(colored[before]);
            prop_assert!(colored[after]);
        }
        prop_assert_eq!(ring::max_gap(&colored), gaps.iter().map(|g| g.len).max().unwrap_or(0));
    }

    /// Dissemination coloring: colored ⇔ every ancestor on the root
    /// path is alive (and the process itself is alive).
    #[test]
    fn dissemination_coloring_matches_ancestor_liveness(
        kind in arb_kind(),
        p in 2u32..200,
        fail_bits in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let tree = kind.build(p, &LogP::PAPER).expect("valid");
        let mut failed: Vec<bool> = fail_bits[..p as usize].to_vec();
        failed[0] = false;
        let colored = ring::color_after_dissemination(&tree, &failed);
        for r in 0..p {
            let mut alive_path = !failed[r as usize];
            let mut x = r;
            while let Some(parent) = tree.parent(x) {
                if failed[parent as usize] {
                    alive_path = false;
                    break;
                }
                x = parent;
            }
            prop_assert_eq!(colored[r as usize], alive_path, "rank {}", r);
        }
    }

    /// Opportunistic machines terminate, never target themselves, and
    /// send at most 2·min(d, P-1) messages.
    #[test]
    fn opportunistic_machine_is_safe(
        p in 1u32..100,
        rank_seed in any::<u32>(),
        d in 1u32..12,
        optimized in any::<bool>(),
        arrivals in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let rank = rank_seed % p;
        let mut m = ct_core::correction::OpportunisticCorrection::new(
            rank, p, d, Time::ZERO, optimized,
        );
        for a in &arrivals {
            m.on_correction(a % p, Time::ZERO);
        }
        let mut sent = 0u32;
        loop {
            match m.poll(Time::ZERO) {
                CorrPoll::Send(t) => {
                    prop_assert!(t < p);
                    prop_assert!(p == 1 || t != rank);
                    sent += 1;
                    prop_assert!(sent <= 2 * d.min(p.saturating_sub(1)));
                }
                CorrPoll::Done => break,
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Checked machines terminate within 2(P-1) sends, never target
    /// themselves, and stop both directions after hearing both
    /// immediate neighbors.
    #[test]
    fn checked_machine_is_safe(
        p in 2u32..100,
        rank_seed in any::<u32>(),
        arrivals in proptest::collection::vec((any::<u32>(), 0usize..20), 0..8),
    ) {
        let rank = rank_seed % p;
        let mut m = ct_core::correction::CheckedCorrection::new(rank, p, Time::ZERO);
        let mut pending: Vec<(Rank, usize)> = arrivals
            .iter()
            .map(|&(f, after)| (f % p, after))
            .collect();
        let mut sent = 0usize;
        loop {
            for (f, after) in &pending {
                if *after == sent {
                    m.on_correction(*f, Time::ZERO);
                }
            }
            pending.retain(|&(_, after)| after != sent);
            match m.poll(Time::ZERO) {
                CorrPoll::Send(t) => {
                    prop_assert!(t < p && t != rank);
                    sent += 1;
                    prop_assert!(sent <= 2 * (p as usize - 1), "runaway machine");
                }
                CorrPoll::Done => break,
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Reduction dual of §4.2's guarantee: in a k-ary interleaved tree
    /// with replication distance d ≥ k, up to k-1 failures never lose a
    /// live contribution.
    #[test]
    fn kary_reduction_tolerates_k_minus_one_failures(
        k in 2u32..6,
        n_exp in 4u32..9,
        fail_seed in any::<u64>(),
    ) {
        use rand::seq::index::sample;
        use rand::SeedableRng;
        let p = 1u32 << n_exp;
        let tree = TreeKind::Kary { k, order: Ordering::Interleaved }
            .build(p, &LogP::PAPER)
            .expect("valid");
        let mut failed = vec![false; p as usize];
        let mut rng = rand::rngs::StdRng::seed_from_u64(fail_seed);
        for idx in sample(&mut rng, (p - 1) as usize, (k - 1) as usize) {
            failed[idx + 1] = true;
        }
        let out = ct_core::reduce::simulate(&tree, k, &failed, &LogP::PAPER);
        prop_assert!(
            out.all_live_delivered(&failed),
            "k={k} P={p}: lost {:?}",
            out.lost(&failed)
        );
    }

    /// Reduction with checked-level replication (d ≥ g_max of any fault
    /// pattern): fault-free always delivers; and delivered ⊇ processes
    /// with fully-live ancestry regardless of d.
    #[test]
    fn reduction_delivery_is_monotone_in_d(
        p in 2u32..200,
        n_faults in 0u32..10,
        seed in any::<u64>(),
        d in 0u32..8,
    ) {
        use rand::seq::index::sample;
        use rand::SeedableRng;
        let n_faults = n_faults.min(p - 1);
        let tree = TreeKind::BINOMIAL.build(p, &LogP::PAPER).expect("valid");
        let mut failed = vec![false; p as usize];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for idx in sample(&mut rng, (p - 1) as usize, n_faults as usize) {
            failed[idx + 1] = true;
        }
        let lo = ct_core::reduce::simulate(&tree, d, &failed, &LogP::PAPER);
        let hi = ct_core::reduce::simulate(&tree, d + 1, &failed, &LogP::PAPER);
        for r in 0..p as usize {
            // More replication never loses a contribution.
            prop_assert!(!lo.delivered[r] || hi.delivered[r]);
        }
        // Dead processes never contribute; live ones with live ancestry
        // always do.
        let colored = ring::color_after_dissemination(&tree, &failed);
        for r in 0..p as usize {
            if failed[r] {
                prop_assert!(!lo.delivered[r]);
            } else if colored[r] {
                // Fully-live root path ⇒ own gather path works.
                prop_assert!(lo.delivered[r]);
            }
        }
    }

    /// CorrectionKind::machine dispatch always yields a machine that
    /// makes progress (terminates or idles, never panics) when starved.
    #[test]
    fn all_machines_survive_starvation(
        p in 1u32..60,
        rank_seed in any::<u32>(),
        which in 0usize..5,
    ) {
        let rank = rank_seed % p;
        let kind = [
            CorrectionKind::Opportunistic { distance: 3 },
            CorrectionKind::OpportunisticOptimized { distance: 3 },
            CorrectionKind::Checked,
            CorrectionKind::FailureProof,
            CorrectionKind::Delayed { delay: 5 },
        ][which];
        let mut m = kind.machine(rank, p, Time::ZERO).expect("non-None kind");
        let mut now = Time::ZERO;
        for _ in 0..(4 * p as usize + 20) {
            match m.poll(now) {
                CorrPoll::Send(t) => prop_assert!(t < p),
                CorrPoll::WaitUntil(t) => {
                    prop_assert!(t > now);
                    now = t;
                }
                CorrPoll::Idle | CorrPoll::Done => break,
            }
            now += 1u64;
        }
    }
}
