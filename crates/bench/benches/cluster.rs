//! Cluster-runtime throughput benchmark: broadcasts/sec under the M:N
//! rank scheduler at scales the thread-per-rank design could not reach.
//! The tracked numbers live in `results/BENCH_cluster_throughput.json`
//! (regenerate with `ct perf bench --runtime`); this bench gives the
//! same sweep Criterion-style statistics for interactive tuning.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_runtime::{Cluster, ClusterConfig};
use ct_sim::FaultPlan;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let plain = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let corrected = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 4 },
    );
    for p in [256u32, 1024, 4096] {
        let mut cluster = Cluster::new(p, LogP::PAPER);
        let live = vec![false; p as usize];
        group.bench_function(format!("p{p}_faultfree"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = cluster.run_broadcast(&plain, &live, seed).unwrap();
                assert!(report.completed);
                report.messages
            })
        });
        let faults = (p / 100).max(1);
        let plan = FaultPlan::random_count_protecting(p, faults, 1, 0).unwrap();
        group.bench_function(format!("p{p}_faulty"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let report = cluster
                    .run_broadcast(&corrected, plan.mask(), seed)
                    .unwrap();
                assert!(report.completed);
                report.messages
            })
        });
    }
    // Backpressure worst case: capacity-1 mailboxes force every fan-in
    // collision through the heap spill path.
    let cfg = ClusterConfig::new().mailbox_capacity(1);
    let mut tiny = Cluster::with_config(256, LogP::PAPER, cfg);
    let live = vec![false; 256];
    group.bench_function("p256_faultfree_mailbox_cap1", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let report = tiny.run_broadcast(&plain, &live, seed).unwrap();
            assert!(report.completed);
            report.messages
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
