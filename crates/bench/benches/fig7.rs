//! Figure 7 pipeline benchmark: fault-free quiescence latency runs for
//! acknowledged vs corrected trees across process counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_sim::Simulation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_quiescence_scaling");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for exp in [10u32, 12, 14] {
        let p = 1u32 << exp;
        let sim = Simulation::builder(p, LogP::PAPER).build();
        let acked = BroadcastSpec::ack_tree(TreeKind::BINOMIAL);
        let corrected =
            BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        group.bench_with_input(BenchmarkId::new("ack", p), &(), |b, _| {
            b.iter(|| sim.run(&acked).unwrap().quiescence)
        });
        group.bench_with_input(BenchmarkId::new("corrected", p), &(), |b, _| {
            b.iter(|| sim.run(&corrected).unwrap().quiescence)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
