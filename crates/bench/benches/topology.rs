//! Topology-construction microbenchmarks: the renumbering machinery
//! that Corrected Trees reduce the problem to (not a paper figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_construction");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let logp = LogP::PAPER;
    for exp in [12u32, 16] {
        let p = 1u32 << exp;
        for kind in [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
            TreeKind::Binomial {
                order: Ordering::InOrder,
            },
        ] {
            group.bench_with_input(BenchmarkId::new(kind.label(), p), &kind, |b, kind| {
                b.iter(|| kind.build(p, &logp).unwrap().num_edges())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
