//! Topology-construction microbenchmarks: the renumbering machinery
//! that Corrected Trees reduce the problem to (not a paper figure),
//! plus the CSR construction/traversal paths at simulator scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_core::tree::{Ordering, Topology, Tree, TreeKind};
use ct_logp::{LogP, Rank};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_construction");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let logp = LogP::PAPER;
    for exp in [12u32, 16] {
        let p = 1u32 << exp;
        for kind in [
            TreeKind::BINOMIAL,
            TreeKind::FOUR_ARY,
            TreeKind::LAME2,
            TreeKind::OPTIMAL,
            TreeKind::Binomial {
                order: Ordering::InOrder,
            },
        ] {
            group.bench_with_input(BenchmarkId::new(kind.label(), p), &kind, |b, kind| {
                b.iter(|| kind.build(p, &logp).unwrap().num_edges())
            });
        }
    }
    group.finish();
}

/// CSR construction and traversal at the scaling-study sizes
/// (`P ∈ {2¹², 2¹⁶, 2²⁰}`): full binomial build (shape + preorder
/// renumber + CSR), `Tree::from_parents` validation/rebuild from a raw
/// parent array, and a full-tree `subtree_into` DFS through the packed
/// child array (allocation-free via the thread-local scratch stack).
fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_construction_scale");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let logp = LogP::PAPER;
    for exp in [12u32, 16, 20] {
        let p = 1u32 << exp;
        let tree = TreeKind::BINOMIAL.build(p, &logp).unwrap();
        let parent: Vec<Rank> = (0..p).map(|r| tree.parent(r).unwrap_or(0)).collect();
        group.bench_with_input(BenchmarkId::new("binomial_build", p), &p, |b, &p| {
            b.iter(|| TreeKind::BINOMIAL.build(p, &logp).unwrap().num_edges())
        });
        group.bench_with_input(BenchmarkId::new("from_parents", p), &parent, |b, parent| {
            b.iter(|| Tree::from_parents(parent.clone()).unwrap().num_edges())
        });
        let mut out = Vec::with_capacity(p as usize);
        group.bench_with_input(BenchmarkId::new("subtree_root", p), &tree, |b, tree| {
            b.iter(|| {
                tree.subtree_into(0, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench, bench_scale);
criterion_main!(benches);
