//! Figure 10 pipeline benchmark: extracting the (g_max, L_SCC) pair
//! from one faulty corrected broadcast.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::{BroadcastSpec, ColoredVia};
use ct_core::tree::{ring, TreeKind};
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_gap_vs_correction");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    let logp = LogP::PAPER;
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
    let start = TreeKind::BINOMIAL
        .build(p, &logp)
        .unwrap()
        .dissemination_deadline(&logp);
    group.bench_function("gmax_lscc_point", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let plan = FaultPlan::random_rate(p, 0.02, seed).unwrap();
            let out = Simulation::builder(p, logp)
                .faults(plan)
                .seed(seed)
                .build()
                .run(&spec)
                .unwrap();
            let mask: Vec<bool> = out
                .colored_via
                .iter()
                .map(|v| matches!(v, Some(ColoredVia::Root) | Some(ColoredVia::Dissemination)))
                .collect();
            (ring::max_gap(&mask), out.quiescence.since(start).steps())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
