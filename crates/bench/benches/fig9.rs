//! Figure 9 pipeline benchmark: message accounting under faults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_messages_under_faults");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
    for rate_pct in [0u32, 1, 4] {
        group.bench_with_input(
            BenchmarkId::new("binomial", rate_pct),
            &rate_pct,
            |b, &r| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let plan = FaultPlan::random_rate(p, r as f64 / 100.0, seed).unwrap();
                    Simulation::builder(p, LogP::PAPER)
                        .faults(plan)
                        .seed(seed)
                        .build()
                        .run(&spec)
                        .unwrap()
                        .messages
                        .total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
