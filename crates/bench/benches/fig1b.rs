//! Figure 1b pipeline benchmark: one synchronized-checked corrected
//! broadcast with k random failures, in-order vs interleaved binomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b_correction_time");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    for (name, order) in [
        ("in-order", Ordering::InOrder),
        ("interleaved", Ordering::Interleaved),
    ] {
        for faults in [1u32, 5] {
            let spec = BroadcastSpec::corrected_tree_sync(
                TreeKind::Binomial { order },
                CorrectionKind::Checked,
            );
            group.bench_with_input(BenchmarkId::new(name, faults), &faults, |b, &faults| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let plan = FaultPlan::random_count(p, faults, seed).unwrap();
                    Simulation::builder(p, LogP::PAPER)
                        .faults(plan)
                        .seed(seed)
                        .build()
                        .run(&spec)
                        .unwrap()
                        .quiescence
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
