//! Campaign throughput benchmark: the tracked reference workload
//! behind `ct perf bench` (checked-sync binomial broadcast, P = 4096,
//! 1% random failures, seeded repetitions). Guards the simulator
//! hot path — topology cache, run-arena reuse and the calendar event
//! queue — rather than any paper figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_exp::{Campaign, FaultSpec, Variant};
use ct_logp::LogP;
use ct_sim::{RunArena, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    // The reference campaign `ct perf bench` times: throughput is
    // repetitions per second.
    let reps = 10u32;
    let campaign = Campaign::new(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        4096,
        LogP::PAPER,
    )
    .with_faults(FaultSpec::Rate(0.01))
    .with_reps(reps)
    .with_seed(1);
    group.throughput(Throughput::Elements(u64::from(reps)));
    group.bench_function("campaign_reps", |b| {
        b.iter(|| campaign.run().unwrap().len())
    });

    // Arena reuse in isolation: the same single run with fresh
    // allocations each time versus a warm arena.
    let p = 4096u32;
    let sim = Simulation::builder(p, LogP::PAPER).seed(1).build();
    let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
    let events = sim.run(&spec).unwrap().events;
    group.throughput(Throughput::Elements(events));
    group.bench_with_input(BenchmarkId::new("run_fresh", p), &(), |b, _| {
        b.iter(|| sim.run(&spec).unwrap().events)
    });
    let mut arena = RunArena::new();
    group.bench_with_input(BenchmarkId::new("run_reused_arena", p), &(), |b, _| {
        b.iter(|| sim.run_reusable(&spec, &mut arena).unwrap().events)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
