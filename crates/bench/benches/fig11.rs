//! Figure 11 pipeline benchmark: one cluster broadcast per variant on
//! the thread runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_gossip::GossipSpec;
use ct_logp::LogP;
use ct_runtime::Cluster;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_runtime_latency");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let p = 32;
    let dead = vec![false; p as usize];
    let mut cluster = Cluster::new(p, LogP::PAPER);
    let native = BroadcastSpec::plain_tree(TreeKind::BINOMIAL);
    let ours = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 1 },
    );
    let gossip = GossipSpec::round_limited(10, CorrectionKind::Opportunistic { distance: 4 });
    group.bench_function("binomial_native", |b| {
        b.iter(|| cluster.run_broadcast(&native, &dead, 0).unwrap().latency)
    });
    group.bench_function("binomial_ours", |b| {
        b.iter(|| cluster.run_broadcast(&ours, &dead, 0).unwrap().latency)
    });
    group.bench_function("gossip", |b| {
        b.iter(|| cluster.run_broadcast(&gossip, &dead, 0).unwrap().latency)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
