//! Figure 6 pipeline benchmark: failure-free message accounting per
//! broadcast variant.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_gossip::GossipSpec;
use ct_logp::LogP;
use ct_sim::Simulation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_messages_per_process");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    let sim = Simulation::builder(p, LogP::PAPER).seed(3).build();
    for kind in [
        TreeKind::BINOMIAL,
        TreeKind::FOUR_ARY,
        TreeKind::LAME2,
        TreeKind::OPTIMAL,
    ] {
        let opp = BroadcastSpec::corrected_tree(
            kind,
            CorrectionKind::OpportunisticOptimized { distance: 4 },
        );
        group.bench_function(format!("opp4/{kind}"), |b| {
            b.iter(|| sim.run(&opp).unwrap().messages.total())
        });
        let checked = BroadcastSpec::corrected_tree_sync(kind, CorrectionKind::Checked);
        group.bench_function(format!("checked/{kind}"), |b| {
            b.iter(|| sim.run(&checked).unwrap().messages.total())
        });
    }
    let gossip = GossipSpec::time_limited(40, CorrectionKind::Checked);
    group.bench_function("checked/gossip", |b| {
        b.iter(|| sim.run(&gossip).unwrap().messages.total())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
