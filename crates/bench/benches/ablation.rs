//! Ablation pipeline benchmark: one synchronized broadcast per
//! correction algorithm at fixed P and fault count.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_correction_kinds");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    for kind in [
        CorrectionKind::Opportunistic { distance: 4 },
        CorrectionKind::OpportunisticOptimized { distance: 4 },
        CorrectionKind::Checked,
        CorrectionKind::FailureProof,
        CorrectionKind::Delayed { delay: 16 },
    ] {
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, kind);
        group.bench_function(kind.to_string(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let plan = FaultPlan::random_count(p, 8, seed).unwrap();
                Simulation::builder(p, LogP::PAPER)
                    .faults(plan)
                    .seed(seed)
                    .build()
                    .run(&spec)
                    .unwrap()
                    .quiescence
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
