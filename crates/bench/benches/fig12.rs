//! Figure 12 pipeline benchmark: Corrected-Tree variants on the thread
//! runtime, with and without emulated failures.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::{Ordering, TreeKind};
use ct_logp::LogP;
use ct_runtime::Cluster;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_runtime_variants");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let p = 32u32;
    let live = vec![false; p as usize];
    let mut dead = live.clone();
    dead[7] = true;
    let mut cluster = Cluster::new(p, LogP::PAPER);
    for d in [0u32, 1, 2] {
        let spec = if d == 0 {
            BroadcastSpec::plain_tree(TreeKind::BINOMIAL)
        } else {
            BroadcastSpec::corrected_tree(
                TreeKind::BINOMIAL,
                CorrectionKind::OpportunisticOptimized { distance: d },
            )
        };
        group.bench_function(format!("binomial_d{d}"), |b| {
            b.iter(|| cluster.run_broadcast(&spec, &live, 0).unwrap().latency)
        });
    }
    let lame4 = BroadcastSpec::plain_tree(TreeKind::Lame {
        k: 4,
        order: Ordering::Interleaved,
    });
    group.bench_function("lame4_d0", |b| {
        b.iter(|| cluster.run_broadcast(&lame4, &live, 0).unwrap().latency)
    });
    let d2 = BroadcastSpec::corrected_tree(
        TreeKind::BINOMIAL,
        CorrectionKind::OpportunisticOptimized { distance: 2 },
    );
    group.bench_function("binomial_d2_faulty", |b| {
        b.iter(|| cluster.run_broadcast(&d2, &dead, 0).unwrap().latency)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
