//! Engine microbenchmarks: event-loop throughput across protocol
//! classes and process counts (not a paper figure; guards the
//! simulator's own performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_gossip::GossipSpec;
use ct_logp::LogP;
use ct_sim::Simulation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for exp in [12u32, 14, 16] {
        let p = 1u32 << exp;
        let sim = Simulation::builder(p, LogP::PAPER).seed(1).build();
        let spec = BroadcastSpec::corrected_tree_sync(TreeKind::BINOMIAL, CorrectionKind::Checked);
        let events = sim.run(&spec).unwrap().events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("checked_binomial", p), &(), |b, _| {
            b.iter(|| sim.run(&spec).unwrap().events)
        });
    }
    let p = 1 << 12;
    let sim = Simulation::builder(p, LogP::PAPER).seed(1).build();
    let gossip = GossipSpec::time_limited(40, CorrectionKind::Checked);
    group.bench_function("gossip_4k", |b| b.iter(|| sim.run(&gossip).unwrap().events));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
