//! Figure 8 pipeline benchmark: one resilience-grid repetition
//! (quiescence under a 1% fault rate) per tree variant.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_core::correction::CorrectionKind;
use ct_core::protocol::BroadcastSpec;
use ct_core::tree::TreeKind;
use ct_logp::LogP;
use ct_sim::{FaultPlan, Simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_latency_under_faults");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let p = 1 << 12;
    for kind in [
        TreeKind::BINOMIAL,
        TreeKind::FOUR_ARY,
        TreeKind::LAME2,
        TreeKind::OPTIMAL,
    ] {
        let spec = BroadcastSpec::corrected_tree_sync(kind, CorrectionKind::Checked);
        group.bench_function(kind.label(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let plan = FaultPlan::random_rate(p, 0.01, seed).unwrap();
                Simulation::builder(p, LogP::PAPER)
                    .faults(plan)
                    .seed(seed)
                    .build()
                    .run(&spec)
                    .unwrap()
                    .quiescence
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
