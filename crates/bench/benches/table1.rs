//! Table 1 pipeline benchmark: percentile aggregation of a resilience
//! sample (the analysis stage that turns grid records into the table).

use criterion::{criterion_group, criterion_main, Criterion};
use ct_analysis::{percentile, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_correction_cost");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(42);
    let sample: Vec<f64> = (0..100_000).map(|_| rng.gen_range(8.0..90.0)).collect();
    group.bench_function("percentiles_100k", |b| {
        b.iter(|| {
            (
                percentile(&sample, 0.99),
                percentile(&sample, 0.999),
                percentile(&sample, 1.0),
            )
        })
    });
    group.bench_function("summary_100k", |b| b.iter(|| Summary::of(&sample)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
