//! Regenerate the scaling study (ROADMAP item 3, not a paper figure):
//! latency and message counts vs `P` up to `2²⁰` per correction
//! variant, with the synchronized-checked cells asserted against the
//! Lemma 2/3 and Corollary 1 closed forms.
//!
//! Usage: `fig_scale [--quick] [--min-exp E] [--max-exp E] [--reps N]
//! [--rate F] [--seed N] [--threads T] [--out DIR]`

use std::time::Instant;

use ct_bench::{emit_with_manifest, Args, RunManifest};
use ct_exp::{run_scale, ScaleConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.flag("--quick") {
        ScaleConfig::quick()
    } else {
        ScaleConfig::full()
    };
    cfg.min_exp = args.get("--min-exp", cfg.min_exp);
    cfg.max_exp = args.get("--max-exp", cfg.max_exp);
    cfg.step_exp = args.get("--step-exp", cfg.step_exp);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.rate = args.get("--rate", cfg.rate);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "fig_scale: P=2^{}..2^{}, reps={}, rate={}",
        cfg.min_exp, cfg.max_exp, cfg.reps, cfg.rate
    );
    let t0 = Instant::now();
    let report = run_scale(&cfg).expect("scale sweep");
    let max_p = report.cells.iter().map(|c| c.p).max().unwrap_or(0);
    let manifest = RunManifest::new("fig_scale")
        .protocol("scc + opp4 (binomial)")
        .p(max_p)
        .logp(cfg.logp)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("chunked rate {}", cfg.rate))
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("threads", cfg.threads.to_string())
        .with_extra("violations", report.violations.len().to_string());
    emit_with_manifest("fig_scale", &report.to_csv(), &args, manifest);
    println!(
        "ns/event at P={max_p}: {:.2}",
        report.ns_per_event_at(max_p)
    );
    for v in &report.violations {
        eprintln!("VIOLATION: {v}");
    }
    assert!(
        report.violations.is_empty(),
        "{} repetition(s) escaped the Lemma 2/3 + Corollary 1 closed forms",
        report.violations.len()
    );
}
