//! Correction-algorithm ablation (beyond the paper's figures): latency,
//! message cost and liveness of every correction algorithm — including
//! the unevaluated delayed correction — under a fault-count sweep.
//!
//! Usage: `ablation [--p N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_exp::ablation::{run, to_csv, AblationConfig};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = AblationConfig::quick();
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "ablation: P={}, tree={}, faults={:?}, delays={:?}, reps={}",
        cfg.p, cfg.tree, cfg.fault_counts, cfg.delays, cfg.reps
    );
    let t0 = Instant::now();
    let rows = run(&cfg).expect("campaign");
    let manifest = RunManifest::new("ablation")
        .protocol(format!("{} tree, every correction algorithm", cfg.tree))
        .p(cfg.p)
        .logp(LogP::PAPER)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("count in {:?}", cfg.fault_counts))
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("delays", format!("{:?}", cfg.delays))
        .with_extra("distances", format!("{:?}", cfg.distances));
    let probe = analysis_campaign(
        Variant::tree_opportunistic(cfg.tree, 2),
        cfg.p,
        cfg.seed0,
        FaultSpec::Count(1),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("ablation", &to_csv(&rows), &args, manifest);
}
