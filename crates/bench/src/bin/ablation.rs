//! Correction-algorithm ablation (beyond the paper's figures): latency,
//! message cost and liveness of every correction algorithm — including
//! the unevaluated delayed correction — under a fault-count sweep.
//!
//! Usage: `ablation [--p N] [--reps N] [--seed N] [--out DIR]`

use ct_bench::{emit, Args};
use ct_exp::ablation::{run, to_csv, AblationConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = AblationConfig::quick();
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "ablation: P={}, tree={}, faults={:?}, delays={:?}, reps={}",
        cfg.p, cfg.tree, cfg.fault_counts, cfg.delays, cfg.reps
    );
    let rows = run(&cfg).expect("campaign");
    emit("ablation", &to_csv(&rows), &args);
}
