//! Regenerate Figure 10: the (maximum gap, correction time) scatter of
//! the resilience grid with the Lemma-3 lower/upper bounds.
//!
//! Usage: `fig10 [--paper] [--p N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::fig10;
use ct_exp::resilience::{run_grid, ResilienceConfig};
use ct_exp::{FaultSpec, Variant};

fn main() {
    let args = Args::from_env();
    let mut cfg = ResilienceConfig::quick();
    cfg.include_gossip = false; // tree points only, as in the figure
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.reps = 1000;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "fig10: P={}, reps={}, rates={:?}",
        cfg.p, cfg.reps, cfg.rates
    );
    let t0 = Instant::now();
    let cells = run_grid(&cfg).expect("grid");
    let points = fig10::from_cells(&cells, &cfg.logp);
    let conf = fig10::bounds_conformance(&points);
    let manifest = RunManifest::new("fig10")
        .protocol("4 trees (checked sync)")
        .p(cfg.p)
        .logp(cfg.logp)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("rate in {:?}", cfg.rates))
        .wall_secs(t0.elapsed().as_secs_f64());
    let probe = analysis_campaign(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        cfg.p,
        cfg.seed0,
        FaultSpec::Rate(cfg.rates.first().copied().unwrap_or(0.01)),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig10", &fig10::to_csv(&points), &args, manifest);
    println!("Lemma-3 bound conformance: {:.1}%", conf * 100.0);
    assert!(
        conf >= 1.0,
        "simulation points escaped the analytical bounds"
    );
}
