//! Regenerate Figure 1b: expected checked-correction time for in-order
//! vs interleaved binomial trees under 1, 2 and 5 random failures.
//!
//! Usage: `fig1b [--paper] [--p N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::fig1b::{run, to_csv, Fig1bConfig};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig1bConfig::quick();
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.reps = 1000;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "fig1b: P={}, faults={:?}, reps={}, threads={}",
        cfg.p, cfg.fault_counts, cfg.reps, cfg.threads
    );
    let t0 = Instant::now();
    let rows = run(&cfg).expect("campaign");
    let manifest = RunManifest::new("fig1b")
        .protocol("binomial in-order vs interleaved, checked sync correction")
        .p(cfg.p)
        .logp(LogP::PAPER)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("count in {:?}", cfg.fault_counts))
        .wall_secs(t0.elapsed().as_secs_f64());
    let probe = analysis_campaign(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        cfg.p,
        cfg.seed0,
        FaultSpec::Count(1),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig1b", &to_csv(&rows), &args, manifest);
}
