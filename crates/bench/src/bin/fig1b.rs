//! Regenerate Figure 1b: expected checked-correction time for in-order
//! vs interleaved binomial trees under 1, 2 and 5 random failures.
//!
//! Usage: `fig1b [--paper] [--p N] [--reps N] [--seed N] [--out DIR]`

use ct_bench::{emit, Args};
use ct_exp::fig1b::{run, to_csv, Fig1bConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig1bConfig::quick();
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.reps = 1000;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "fig1b: P={}, faults={:?}, reps={}, threads={}",
        cfg.p, cfg.fault_counts, cfg.reps, cfg.threads
    );
    let rows = run(&cfg).expect("campaign");
    emit("fig1b", &to_csv(&rows), &args);
}
