//! Regenerate Figure 12: cluster latency of Corrected-Tree variants —
//! binomial d ∈ {0,1,2}, Lamé (k=4, d=0) and binomial d=2 with
//! emulated rank failures.
//!
//! Usage: `fig12 [--paper] [--max-p N] [--iters N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::fig12::{run, to_csv, Fig12Config};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig12Config::quick();
    if args.flag("--paper") {
        cfg.process_counts = vec![8, 16, 32, 64, 128, 256, 512];
        cfg.iterations = 30;
    }
    let max_p: u32 = args.get("--max-p", 0);
    if max_p > 0 {
        cfg.process_counts = (3..).map(|n| 1 << n).take_while(|&p| p <= max_p).collect();
    }
    cfg.iterations = args.get("--iters", cfg.iterations);
    cfg.seed = args.get("--seed", cfg.seed);

    eprintln!(
        "fig12: P sweep {:?}, iters={}",
        cfg.process_counts, cfg.iterations
    );
    let t0 = Instant::now();
    let rows = run(&cfg).expect("cluster sweep");
    let manifest = RunManifest::new("fig12")
        .protocol("cluster: corrected-tree variants (binomial d=0/1/2, lame4, faulty)")
        .logp(LogP::PAPER)
        .seed(cfg.seed)
        .reps(cfg.iterations)
        .faults("emulated rank failures (faulty series only)")
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("process_counts", format!("{:?}", cfg.process_counts));
    let probe = analysis_campaign(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
        cfg.process_counts.first().copied().unwrap_or(8),
        cfg.seed,
        FaultSpec::Count(1),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig12", &to_csv(&rows), &args, manifest);
}
