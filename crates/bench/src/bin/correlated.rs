//! Correlated node failures vs random numbering (§2.1 extension):
//! whole multi-rank nodes crash; compare the correction ring's gap
//! structure and correction time under linear vs shuffled numbering.
//!
//! Usage: `correlated [--p N] [--node-size N] [--reps N] [--seed N] [--out DIR]`

use ct_bench::{emit, Args};
use ct_exp::correlated::{run, to_csv, CorrelatedConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = CorrelatedConfig::quick();
    cfg.p = args.get("--p", cfg.p);
    cfg.node_size = args.get("--node-size", cfg.node_size);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);

    eprintln!(
        "correlated: P={}, node_size={}, nodes={:?}, reps={}",
        cfg.p, cfg.node_size, cfg.node_counts, cfg.reps
    );
    let rows = run(&cfg).expect("campaign");
    emit("correlated", &to_csv(&rows), &args);
}
