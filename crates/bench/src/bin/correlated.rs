//! Correlated node failures vs random numbering (§2.1 extension):
//! whole multi-rank nodes crash; compare the correction ring's gap
//! structure and correction time under linear vs shuffled numbering.
//!
//! Usage: `correlated [--p N] [--node-size N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::correlated::{run, to_csv, CorrelatedConfig};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = CorrelatedConfig::quick();
    cfg.p = args.get("--p", cfg.p);
    cfg.node_size = args.get("--node-size", cfg.node_size);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);

    eprintln!(
        "correlated: P={}, node_size={}, nodes={:?}, reps={}",
        cfg.p, cfg.node_size, cfg.node_counts, cfg.reps
    );
    let t0 = Instant::now();
    let rows = run(&cfg).expect("campaign");
    let manifest = RunManifest::new("correlated")
        .protocol("corrected tree, linear vs shuffled rank numbering")
        .p(cfg.p)
        .logp(LogP::PAPER)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!(
            "whole nodes (size {}) in {:?}",
            cfg.node_size, cfg.node_counts
        ))
        .wall_secs(t0.elapsed().as_secs_f64());
    let probe = analysis_campaign(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
        cfg.p,
        cfg.seed0,
        FaultSpec::Count(cfg.node_size),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("correlated", &to_csv(&rows), &args, manifest);
}
