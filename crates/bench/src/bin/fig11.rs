//! Regenerate Figure 11: cluster broadcast median latency vs rank count
//! (native binomial vs the Corrected-Trees implementation vs gossip).
//!
//! Usage: `fig11 [--paper] [--max-p N] [--iters N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::fig11::{run, to_csv, Fig11Config};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig11Config::quick();
    if args.flag("--paper") {
        cfg.process_counts = vec![8, 16, 32, 64, 128, 256, 512];
        cfg.iterations = 30;
    }
    let max_p: u32 = args.get("--max-p", 0);
    if max_p > 0 {
        cfg.process_counts = (2..).map(|n| 1 << n).take_while(|&p| p <= max_p).collect();
    }
    cfg.iterations = args.get("--iters", cfg.iterations);
    cfg.seed = args.get("--seed", cfg.seed);

    eprintln!(
        "fig11: P sweep {:?}, iters={}",
        cfg.process_counts, cfg.iterations
    );
    let t0 = Instant::now();
    let rows = run(&cfg).expect("cluster sweep");
    let manifest = RunManifest::new("fig11")
        .protocol("cluster: native binomial vs corrected tree vs gossip")
        .logp(LogP::PAPER)
        .seed(cfg.seed)
        .reps(cfg.iterations)
        .faults("none")
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("process_counts", format!("{:?}", cfg.process_counts))
        .with_extra("gossip_rounds", cfg.gossip_rounds.to_string());
    let probe = analysis_campaign(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
        cfg.process_counts.first().copied().unwrap_or(8),
        cfg.seed,
        FaultSpec::None,
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig11", &to_csv(&rows), &args, manifest);
}
