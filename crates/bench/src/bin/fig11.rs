//! Regenerate Figure 11: cluster broadcast median latency vs rank count
//! (native binomial vs the Corrected-Trees implementation vs gossip).
//!
//! Usage: `fig11 [--paper] [--max-p N] [--iters N] [--seed N] [--out DIR]`

use ct_bench::{emit, Args};
use ct_exp::fig11::{run, to_csv, Fig11Config};

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig11Config::quick();
    if args.flag("--paper") {
        cfg.process_counts = vec![8, 16, 32, 64, 128, 256, 512];
        cfg.iterations = 30;
    }
    let max_p: u32 = args.get("--max-p", 0);
    if max_p > 0 {
        cfg.process_counts = (2..)
            .map(|n| 1 << n)
            .take_while(|&p| p <= max_p)
            .collect();
    }
    cfg.iterations = args.get("--iters", cfg.iterations);
    cfg.seed = args.get("--seed", cfg.seed);

    eprintln!("fig11: P sweep {:?}, iters={}", cfg.process_counts, cfg.iterations);
    let rows = run(&cfg).expect("cluster sweep");
    emit("fig11", &to_csv(&rows), &args);
}
