//! Regenerate Table 1: g_max and L_SCC percentiles (99% / 99.9% / max)
//! per fault rate, aggregated over all tree types.
//!
//! Usage: `table1 [--paper] [--p N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::resilience::{run_grid, ResilienceConfig};
use ct_exp::table1;
use ct_exp::{FaultSpec, Variant};

fn main() {
    let args = Args::from_env();
    let mut cfg = ResilienceConfig::quick();
    cfg.include_gossip = false;
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.reps = 1000;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);

    eprintln!(
        "table1: P={}, reps={}, rates={:?}",
        cfg.p, cfg.reps, cfg.rates
    );
    let t0 = Instant::now();
    let cells = run_grid(&cfg).expect("grid");
    let manifest = RunManifest::new("table1")
        .protocol("4 trees (checked sync), aggregated")
        .p(cfg.p)
        .logp(cfg.logp)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("rate in {:?}", cfg.rates))
        .wall_secs(t0.elapsed().as_secs_f64());
    let probe = analysis_campaign(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        cfg.p,
        cfg.seed0,
        FaultSpec::Rate(cfg.rates.first().copied().unwrap_or(0.01)),
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest(
        "table1",
        &table1::to_csv(&table1::from_cells(&cells)),
        &args,
        manifest,
    );
    println!("(fault-free reference: g_max = 0, L_SCC = 8)");
}
