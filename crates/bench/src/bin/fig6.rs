//! Regenerate Figure 6: average messages per process, failure-free, by
//! correction type across the four trees and Corrected Gossip.
//!
//! Usage: `fig6 [--paper] [--p N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{
    analysis_campaign, emit_with_manifest, with_analysis, write_bench_snapshot, Args, RunManifest,
};
use ct_core::tree::TreeKind;
use ct_exp::fig6::{run, to_csv, Fig6Config};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig6Config::quick();
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.gossip_reps = 20;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.gossip_reps = args.get("--reps", cfg.gossip_reps);

    eprintln!("fig6: P={}, distances={:?}", cfg.p, cfg.distances);
    let t0 = Instant::now();
    let rows = run(&cfg).expect("campaign");
    let manifest = RunManifest::new("fig6")
        .protocol("4 trees + corrected gossip, correction-type sweep")
        .p(cfg.p)
        .logp(LogP::PAPER)
        .seed(cfg.seed0)
        .reps(cfg.gossip_reps)
        .faults("none")
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("distances", format!("{:?}", cfg.distances));
    let probe = analysis_campaign(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
        cfg.p,
        cfg.seed0,
        FaultSpec::None,
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig6", &to_csv(&rows), &args, manifest);
    write_bench_snapshot("fig6", &probe, &args);
}
