//! Regenerate Figure 6: average messages per process, failure-free, by
//! correction type across the four trees and Corrected Gossip.
//!
//! Usage: `fig6 [--paper] [--p N] [--seed N] [--out DIR]`

use ct_bench::{emit, Args};
use ct_exp::fig6::{run, to_csv, Fig6Config};

fn main() {
    let args = Args::from_env();
    let mut cfg = Fig6Config::quick();
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.gossip_reps = 20;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.gossip_reps = args.get("--reps", cfg.gossip_reps);

    eprintln!("fig6: P={}, distances={:?}", cfg.p, cfg.distances);
    let rows = run(&cfg).expect("campaign");
    emit("fig6", &to_csv(&rows), &args);
}
