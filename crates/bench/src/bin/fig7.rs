//! Regenerate Figure 7: fault-free quiescence latency vs process count
//! for acknowledged trees, Corrected Trees and checked Corrected Gossip.
//!
//! Usage: `fig7 [--paper] [--max-exp N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::fig7::{run, to_csv, Fig7Config};
use ct_exp::{FaultSpec, Variant};
use ct_logp::LogP;

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.flag("--paper") {
        Fig7Config::paper()
    } else {
        Fig7Config::quick()
    };
    let max_exp: u32 = args.get("--max-exp", 0);
    if max_exp > 0 {
        cfg.process_counts = (10..=max_exp).map(|n| 1 << n).collect();
    }
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.gossip_reps = args.get("--reps", cfg.gossip_reps);

    eprintln!("fig7: P sweep {:?}", cfg.process_counts);
    let t0 = Instant::now();
    let rows = run(&cfg).expect("campaign");
    let manifest = RunManifest::new("fig7")
        .protocol("acked trees, corrected trees, checked corrected gossip")
        .logp(LogP::PAPER)
        .seed(cfg.seed0)
        .reps(cfg.gossip_reps)
        .faults("none")
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("process_counts", format!("{:?}", cfg.process_counts));
    let probe = analysis_campaign(
        Variant::tree_opportunistic(TreeKind::BINOMIAL, 2),
        cfg.process_counts.first().copied().unwrap_or(16),
        cfg.seed0,
        FaultSpec::None,
    );
    let manifest = with_analysis(manifest, &probe);
    emit_with_manifest("fig7", &to_csv(&rows), &args, manifest);
}
