//! Regenerate Figure 8: average quiescence latency vs fault rate for
//! the four trees (synchronized checked correction) and gossip.
//!
//! Usage: `fig8 [--paper] [--p N] [--reps N] [--seed N] [--out DIR]`

use std::time::Instant;

use ct_bench::{analysis_campaign, emit_with_manifest, with_analysis, Args, RunManifest};
use ct_core::tree::TreeKind;
use ct_exp::resilience::{run_grid, waste_probe, ResilienceConfig};
use ct_exp::{fig8, tuning};
use ct_exp::{FaultSpec, Variant};

fn main() {
    let args = Args::from_env();
    let mut cfg = ResilienceConfig::quick();
    if args.flag("--paper") {
        cfg.p = 1 << 16;
        cfg.reps = 1000;
    }
    cfg.p = args.get("--p", cfg.p);
    cfg.reps = args.get("--reps", cfg.reps);
    cfg.seed0 = args.get("--seed", cfg.seed0);
    cfg.threads = args.get("--threads", cfg.threads);
    // Tune the gossip time for this P before sweeping fault rates.
    let lo = cfg.logp.transit_steps();
    let log2p = (32 - cfg.p.leading_zeros()) as u64;
    cfg.gossip_time =
        tuning::min_latency_gossip_time(cfg.p, cfg.logp, lo, lo * (log2p + 8), 2, 3, cfg.seed0)
            .expect("tuning");

    eprintln!(
        "fig8: P={}, reps={}, gossip_time={}, rates={:?}",
        cfg.p, cfg.reps, cfg.gossip_time, cfg.rates
    );
    let t0 = Instant::now();
    let cells = run_grid(&cfg).expect("grid");
    let manifest = RunManifest::new("fig8")
        .protocol("4 trees (checked sync) + checked corrected gossip")
        .p(cfg.p)
        .logp(cfg.logp)
        .seed(cfg.seed0)
        .reps(cfg.reps)
        .faults(format!("rate in {:?}", cfg.rates))
        .wall_secs(t0.elapsed().as_secs_f64())
        .with_extra("gossip_time", cfg.gossip_time.to_string());
    let probe = analysis_campaign(
        Variant::tree_checked_sync(TreeKind::BINOMIAL),
        cfg.p,
        cfg.seed0,
        FaultSpec::Rate(cfg.rates.first().copied().unwrap_or(0.01)),
    );
    let mut manifest = with_analysis(manifest, &probe);
    let top_rate = cfg.rates.last().copied().unwrap_or(0.04);
    match waste_probe(&cfg, top_rate) {
        Ok(w) => manifest = manifest.with_extra_json("waste_probe", w.to_json()),
        Err(e) => eprintln!("fig8: waste probe failed: {e}"),
    }
    emit_with_manifest(
        "fig8",
        &fig8::to_csv(&fig8::from_cells(&cells)),
        &args,
        manifest,
    );
}
