//! # ct-bench — benchmark harness and figure regenerators
//!
//! Two complementary entry points:
//!
//! * **Binaries** (`src/bin/fig*.rs`, `table1.rs`) regenerate the
//!   paper's tables and figures: each prints the figure's series as an
//!   aligned table and writes `results/<name>.csv` plus a
//!   `results/<name>.meta.json` provenance manifest (seed, parameters,
//!   git revision, wall time — see [`ct_obs::RunManifest`]). Flags:
//!   `--paper` switches to the paper's scale, `--p N`, `--reps N`,
//!   `--seed N` override individual knobs, `--out DIR` redirects CSV
//!   output.
//! * **Criterion benches** (`benches/`) measure the cost of the
//!   protocols and of the simulator itself at fixed small scales, one
//!   bench group per experiment, so regressions in any reproduced
//!   pipeline show up in `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use ct_exp::csv::CsvTable;
use ct_exp::{analyze_campaign, Campaign, FaultSpec, Variant};
use ct_logp::LogP;
pub use ct_obs::RunManifest;

/// Tiny argv parser shared by all figure binaries: `--key value` pairs
/// plus boolean flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse from the process arguments.
    pub fn from_env() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Parse from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// Is the boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following `name`, parsed, or `default`.
    ///
    /// # Panics
    /// Panics with a usage message if the value is missing or unparsable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.raw.iter().position(|a| a == name) {
            None => default,
            Some(i) => {
                let v = self
                    .raw
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("missing value after {name}"));
                v.parse()
                    .unwrap_or_else(|_| panic!("cannot parse {name} value {v:?}"))
            }
        }
    }

    /// The output directory for CSVs (default `results/`).
    pub fn out_dir(&self) -> PathBuf {
        PathBuf::from(self.get("--out", "results".to_owned()))
    }
}

/// The small fixed-seed campaign a figure binary analyzes for its
/// manifest's analysis block: the figure's representative variant and
/// fault regime, capped at 64 processes and 5 repetitions so the
/// causal-DAG pass stays negligible next to the campaign itself.
pub fn analysis_campaign(variant: Variant, p: u32, seed0: u64, faults: FaultSpec) -> Campaign {
    Campaign::new(variant, p.clamp(2, 64), LogP::PAPER)
        .with_faults(faults)
        .with_reps(5)
        .with_seed(seed0)
}

/// Attach the causal-analysis block for `campaign` to `manifest` under
/// the `analysis` key (critical-path attribution, phase split,
/// completion percentiles — see `ct-analyze`), plus the campaign's
/// runtime-telemetry snapshot under `telemetry` (per-rep event/send
/// distributions, `ct-telemetry-v1`). Analysis failures are reported
/// but never fail the figure run.
pub fn with_analysis(manifest: RunManifest, campaign: &Campaign) -> RunManifest {
    match analyze_campaign(campaign) {
        Ok(ca) => manifest
            .with_extra_json("analysis", ca.analysis_json())
            .with_extra_json("telemetry", ca.telemetry.to_json()),
        Err(e) => {
            eprintln!("[analysis block skipped: {e:?}]");
            manifest
        }
    }
}

/// Run `campaign` under analysis and write its perf snapshot to
/// `<out>/BENCH_<name>.json` — the baseline/candidate input of
/// `ct perf diff`.
pub fn write_bench_snapshot(name: &str, campaign: &Campaign, args: &Args) -> Option<PathBuf> {
    let ca = match analyze_campaign(campaign) {
        Ok(ca) => ca,
        Err(e) => {
            eprintln!("[bench snapshot skipped: {e:?}]");
            return None;
        }
    };
    let path = args.out_dir().join(format!("BENCH_{name}.json"));
    match ca.bench_snapshot(name, campaign).write(&path) {
        Ok(()) => {
            println!("[bench snapshot {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("[could not write {}: {e}]", path.display());
            None
        }
    }
}

/// Print a CSV table to stdout as an aligned text table and also write
/// it to `<out>/<name>.csv`.
pub fn emit(name: &str, table: &CsvTable, args: &Args) {
    let _ = emit_csv(name, table, args);
}

/// Like [`emit`], additionally writing a provenance manifest next to
/// the CSV as `<out>/<name>.meta.json`. The manifest is stamped with
/// the current git revision and wall-clock timestamp before writing,
/// so callers only fill in the experiment parameters.
pub fn emit_with_manifest(name: &str, table: &CsvTable, args: &Args, manifest: RunManifest) {
    let Some(csv_path) = emit_csv(name, table, args) else {
        return;
    };
    match manifest.stamped().write_next_to(&csv_path) {
        Ok(path) => println!("[manifest {}]", path.display()),
        Err(e) => eprintln!("[could not write manifest for {}: {e}]", csv_path.display()),
    }
}

/// Shared body of [`emit`]/[`emit_with_manifest`]: print the aligned
/// table, write the CSV, return its path when the write succeeded.
fn emit_csv(name: &str, table: &CsvTable, args: &Args) -> Option<PathBuf> {
    let csv = table.to_csv();
    let rows: Vec<Vec<String>> = csv.lines().map(split_csv_line).collect();
    let widths: Vec<usize> = (0..rows[0].len())
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(f, w)| format!("{f:<w$}"))
            .collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!(
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
            );
        }
    }
    let path = args.out_dir().join(format!("{name}.csv"));
    match table.write_to(&path) {
        Ok(()) => {
            println!("\n[written {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("\n[could not write {}: {e}]", path.display());
            None
        }
    }
}

/// Split one CSV line produced by [`CsvTable::to_csv`] (handles quoting).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) => in_quotes = true,
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::from_vec(vec![
            "--p".into(),
            "4096".into(),
            "--paper".into(),
            "--reps".into(),
            "100".into(),
        ]);
        assert_eq!(a.get("--p", 16u32), 4096);
        assert_eq!(a.get("--reps", 1u32), 100);
        assert_eq!(a.get("--seed", 7u64), 7);
        assert!(a.flag("--paper"));
        assert!(!a.flag("--quick"));
        assert_eq!(a.out_dir(), PathBuf::from("results"));
    }

    #[test]
    fn csv_line_splitting_handles_quotes() {
        assert_eq!(split_csv_line("a,b"), vec!["a", "b"]);
        assert_eq!(split_csv_line("\"x,y\",z"), vec!["x,y", "z"]);
        assert_eq!(
            split_csv_line("\"he said \"\"hi\"\"\",2"),
            vec!["he said \"hi\"", "2"]
        );
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_value_panics() {
        let a = Args::from_vec(vec!["--p".into()]);
        let _: u32 = a.get("--p", 1);
    }

    #[test]
    fn emit_with_manifest_writes_meta_json_next_to_csv() {
        let dir = std::env::temp_dir().join("ct-bench-emit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let args = Args::from_vec(vec!["--out".into(), dir.display().to_string()]);
        let mut table = CsvTable::new(["p", "latency"]);
        table.row(["64", "22"]);
        let manifest = RunManifest::new("demo").p(64).seed(7).reps(1);
        emit_with_manifest("demo", &table, &args, manifest);
        let body = std::fs::read_to_string(dir.join("demo.meta.json")).unwrap();
        assert!(body.starts_with(r#"{"name":"demo""#), "{body}");
        assert!(body.contains(r#""seed":7"#), "{body}");
        assert!(body.contains(r#""created_unix":"#), "{body}");
        assert!(std::fs::metadata(dir.join("demo.csv")).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
