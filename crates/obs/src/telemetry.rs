//! Live runtime telemetry: a lock-free, sharded hub of scheduler and
//! protocol counters the cluster runtime and the simulator feed while
//! they run.
//!
//! Event traces ([`crate::EventSink`]) answer *what the protocol did*;
//! the [`TelemetryHub`] answers *what the machinery underneath did* —
//! how many scheduling quanta ran, how large the claimed batches were,
//! how deep mailboxes got, how often the timer wheel cascaded, how many
//! lost-wakeup rechecks actually fired. It is the backing store of
//! `ct top`, `ct stats` and the `telemetry` manifest block.
//!
//! Design:
//!
//! * **Sharded and lock-free.** The hub holds one [`Counter`]/[`Dist`]
//!   shard per worker thread; every update is a single relaxed atomic
//!   RMW on the caller's own shard, so instrumentation never introduces
//!   cross-worker contention or a lock that could perturb the scheduler
//!   it is measuring. Per-rank state is a plain `fetch_max` high-water
//!   slot. Relaxed ordering is sufficient everywhere: the values are
//!   statistics, and [`TelemetryHub::snapshot`] merges whatever has
//!   landed by the time it runs.
//! * **Zero-cost when disabled.** Producers carry an
//!   `Option<Arc<TelemetryHub>>` and hoist the `is-some` check exactly
//!   like the [`crate::EventSink::enabled`] pattern: with no hub
//!   attached, the instrumented paths compile down to a branch on a
//!   register and the event stream and message totals are bit-for-bit
//!   those of an uninstrumented run.
//! * **One schema for sim and cluster.** [`TelemetrySnapshot`] always
//!   carries the full counter catalogue (cluster counters are zero on a
//!   sim snapshot and vice versa), rendered byte-stably (schema tag
//!   [`SCHEMA`], sorted maps, deterministic float format) so snapshots
//!   can be diffed, golden-tested and parsed by `ct-analyze`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::JsonObject;
use crate::metrics::Histogram;

/// Schema tag stamped into every rendered snapshot; bump on any
/// incompatible change to the JSON layout.
pub const SCHEMA: &str = "ct-telemetry-v1";

/// Monotonic counters the hub tracks, one slot per counter per worker
/// shard. `sched.*`, `mailbox.*`, `msgs.*`, `timer.*` and `coord.*`
/// are fed by the cluster runtime; `sim.*` by the LogP simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Scheduling quanta executed (one runnable rank driven once).
    SchedQuanta,
    /// Quanta that found no installed iteration (stale wake-ups).
    SchedStaleQuanta,
    /// Run-queue batches claimed by workers.
    SchedBatches,
    /// End-of-quantum rechecks that re-armed the rank (lost-wakeup
    /// window closed by taking the wake-up back).
    SchedRechecks,
    /// Ranks made runnable by sends, timer fires and rechecks.
    SchedWakes,
    /// Wall-clock microseconds workers spent inside quanta (busy time;
    /// the basis of `ct top` utilization bars).
    SchedBusyUs,
    /// Protocol messages sent rank-to-rank.
    MsgsSent,
    /// Current-iteration messages delivered to live ranks.
    MsgsDelivered,
    /// Stale messages discarded by broadcast id.
    MsgsStaleDropped,
    /// Mailbox pushes (ring or spill).
    MailboxPushes,
    /// Pushes that overflowed the ring into the heap spill queue.
    MailboxSpills,
    /// Timer-wheel insertions (protocol `WaitUntil` arms).
    TimerArms,
    /// Timers that fired (rank appended to the due list).
    TimerFires,
    /// Overflow-heap entries migrated down into wheel slots.
    TimerCascades,
    /// Batched coordinator notifications sent.
    CoordBatches,
    /// Colored-rank notifications carried by those batches.
    CoordColored,
    /// Simulator repetitions completed.
    SimReps,
    /// Simulator events processed (all repetitions).
    SimEvents,
    /// Simulator messages sent (all repetitions).
    SimSends,
    /// Repetitions that ended with a live rank uncolored.
    SimIncomplete,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 20] = [
        Counter::SchedQuanta,
        Counter::SchedStaleQuanta,
        Counter::SchedBatches,
        Counter::SchedRechecks,
        Counter::SchedWakes,
        Counter::SchedBusyUs,
        Counter::MsgsSent,
        Counter::MsgsDelivered,
        Counter::MsgsStaleDropped,
        Counter::MailboxPushes,
        Counter::MailboxSpills,
        Counter::TimerArms,
        Counter::TimerFires,
        Counter::TimerCascades,
        Counter::CoordBatches,
        Counter::CoordColored,
        Counter::SimReps,
        Counter::SimEvents,
        Counter::SimSends,
        Counter::SimIncomplete,
    ];

    /// Stable dotted snapshot name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SchedQuanta => "sched.quanta",
            Counter::SchedStaleQuanta => "sched.stale_quanta",
            Counter::SchedBatches => "sched.batches",
            Counter::SchedRechecks => "sched.lost_wakeup_rechecks",
            Counter::SchedWakes => "sched.wakes",
            Counter::SchedBusyUs => "sched.busy_us",
            Counter::MsgsSent => "msgs.sent",
            Counter::MsgsDelivered => "msgs.delivered",
            Counter::MsgsStaleDropped => "msgs.stale_dropped",
            Counter::MailboxPushes => "mailbox.pushes",
            Counter::MailboxSpills => "mailbox.spills",
            Counter::TimerArms => "timer.arms",
            Counter::TimerFires => "timer.fires",
            Counter::TimerCascades => "timer.cascades",
            Counter::CoordBatches => "coord.batches",
            Counter::CoordColored => "coord.colored",
            Counter::SimReps => "sim.reps",
            Counter::SimEvents => "sim.events",
            Counter::SimSends => "sim.sends",
            Counter::SimIncomplete => "sim.incomplete",
        }
    }

    /// One-line description for the Prometheus `# HELP` line.
    pub fn help(self) -> &'static str {
        match self {
            Counter::SchedQuanta => "Scheduling quanta executed (one runnable rank driven once).",
            Counter::SchedStaleQuanta => {
                "Quanta that found no installed iteration (stale wake-ups)."
            }
            Counter::SchedBatches => "Run-queue batches claimed by workers.",
            Counter::SchedRechecks => "End-of-quantum rechecks that re-armed the rank.",
            Counter::SchedWakes => "Ranks made runnable by sends, timer fires and rechecks.",
            Counter::SchedBusyUs => "Wall-clock microseconds workers spent inside quanta.",
            Counter::MsgsSent => "Protocol messages sent rank-to-rank.",
            Counter::MsgsDelivered => "Current-iteration messages delivered to live ranks.",
            Counter::MsgsStaleDropped => "Stale messages discarded by broadcast id.",
            Counter::MailboxPushes => "Mailbox pushes (ring or spill).",
            Counter::MailboxSpills => "Pushes that overflowed the ring into the heap spill queue.",
            Counter::TimerArms => "Timer-wheel insertions (protocol WaitUntil arms).",
            Counter::TimerFires => "Timers that fired (rank appended to the due list).",
            Counter::TimerCascades => "Overflow-heap entries migrated down into wheel slots.",
            Counter::CoordBatches => "Batched coordinator notifications sent.",
            Counter::CoordColored => "Colored-rank notifications carried by coordinator batches.",
            Counter::SimReps => "Simulator repetitions completed.",
            Counter::SimEvents => "Simulator events processed (all repetitions).",
            Counter::SimSends => "Simulator messages sent (all repetitions).",
            Counter::SimIncomplete => "Repetitions that ended with a live rank uncolored.",
        }
    }
}

/// Mergeable distributions the hub tracks, one atomic histogram per
/// distribution per worker shard. All use the power-of-two
/// [`Histogram::latency_default`] buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Dist {
    /// Wall-clock duration of one scheduling quantum, µs.
    QuantumUs,
    /// Runnable ranks claimed per run-queue batch.
    BatchSize,
    /// Run-queue depth sampled at each batch claim.
    RunqDepth,
    /// Messages drained from a mailbox per quantum.
    MailboxDrained,
    /// Colored ranks per batched coordinator notification.
    CoordBatchSize,
    /// Simulator events per repetition.
    SimRepEvents,
    /// Simulator sends per repetition.
    SimRepSends,
    /// Simulator quiescence time per repetition, LogP steps.
    SimRepQuiescence,
}

impl Dist {
    /// Every distribution, in rendering order.
    pub const ALL: [Dist; 8] = [
        Dist::QuantumUs,
        Dist::BatchSize,
        Dist::RunqDepth,
        Dist::MailboxDrained,
        Dist::CoordBatchSize,
        Dist::SimRepEvents,
        Dist::SimRepSends,
        Dist::SimRepQuiescence,
    ];

    /// Stable dotted snapshot name.
    pub fn name(self) -> &'static str {
        match self {
            Dist::QuantumUs => "sched.quantum_us",
            Dist::BatchSize => "sched.batch_size",
            Dist::RunqDepth => "sched.runq_depth",
            Dist::MailboxDrained => "mailbox.drained",
            Dist::CoordBatchSize => "coord.batch_size",
            Dist::SimRepEvents => "sim.rep_events",
            Dist::SimRepSends => "sim.rep_sends",
            Dist::SimRepQuiescence => "sim.rep_quiescence",
        }
    }

    /// One-line description for the Prometheus `# HELP` line.
    pub fn help(self) -> &'static str {
        match self {
            Dist::QuantumUs => "Wall-clock duration of one scheduling quantum, microseconds.",
            Dist::BatchSize => "Runnable ranks claimed per run-queue batch.",
            Dist::RunqDepth => "Run-queue depth sampled at each batch claim.",
            Dist::MailboxDrained => "Messages drained from a mailbox per quantum.",
            Dist::CoordBatchSize => "Colored ranks per batched coordinator notification.",
            Dist::SimRepEvents => "Simulator events per repetition.",
            Dist::SimRepSends => "Simulator sends per repetition.",
            Dist::SimRepQuiescence => "Simulator quiescence time per repetition, LogP steps.",
        }
    }
}

/// A fixed-bucket histogram updated with relaxed atomic RMWs; the
/// atomic twin of [`Histogram`] (same bounds, snapshots via
/// [`Histogram::from_parts`]).
struct AtomicHistogram {
    /// Per-bucket counts; last entry is the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new(buckets: usize) -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, bounds: &[u64], v: u64) {
        let idx = bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self, bounds: &[u64]) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        Histogram::from_parts(
            bounds.to_vec(),
            counts,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// One worker's private slice of the hub.
struct Shard {
    counters: [AtomicU64; Counter::ALL.len()],
    dists: Vec<AtomicHistogram>,
}

impl Shard {
    fn new(buckets: usize) -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            dists: (0..Dist::ALL.len())
                .map(|_| AtomicHistogram::new(buckets))
                .collect(),
        }
    }
}

/// Lock-free, sharded store of live runtime counters (see module docs).
///
/// Construct one per run (or campaign), hand `Arc` clones to the
/// producers (`ClusterConfig::telemetry`, `SimulationBuilder::telemetry`)
/// and call [`TelemetryHub::snapshot`] at any time — including while the
/// run is still executing, which is exactly what `ct top` does.
pub struct TelemetryHub {
    shards: Vec<Shard>,
    /// Shared histogram bounds ([`Histogram::latency_default`]).
    bounds: Vec<u64>,
    /// Per-rank mailbox occupancy high-water marks.
    rank_hwm: Vec<AtomicU64>,
    /// Last sampled run-queue depth.
    runq_depth: AtomicU64,
    /// Last sampled pending-timer count.
    timers_pending: AtomicU64,
    /// Broadcast iterations currently installed: 0 between iterations,
    /// 1 during a single-broadcast run, the in-flight topic count under
    /// pub/sub multiplexing.
    iter_active: AtomicU64,
    /// Live (non-dead) ranks summed over installed iterations.
    iter_live: AtomicU64,
    /// Live ranks colored so far, summed over installed iterations.
    iter_colored: AtomicU64,
}

impl TelemetryHub {
    /// A hub with one shard per expected worker (at least one) and
    /// `ranks` mailbox high-water slots. Callers with more workers than
    /// shards still work — shard selection wraps — at the cost of some
    /// shard sharing.
    pub fn new(workers: usize, ranks: usize) -> TelemetryHub {
        let bounds = Histogram::latency_default().bounds().to_vec();
        let buckets = bounds.len() + 1;
        TelemetryHub {
            shards: (0..workers.max(1)).map(|_| Shard::new(buckets)).collect(),
            bounds,
            rank_hwm: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            runq_depth: AtomicU64::new(0),
            timers_pending: AtomicU64::new(0),
            iter_active: AtomicU64::new(0),
            iter_live: AtomicU64::new(0),
            iter_colored: AtomicU64::new(0),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Number of per-rank high-water slots.
    pub fn ranks(&self) -> usize {
        self.rank_hwm.len()
    }

    fn shard(&self, worker: usize) -> &Shard {
        &self.shards[worker % self.shards.len()]
    }

    /// Add `delta` to `counter` on `worker`'s shard.
    pub fn add(&self, worker: usize, counter: Counter, delta: u64) {
        self.shard(worker).counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment `counter` by one on `worker`'s shard.
    pub fn inc(&self, worker: usize, counter: Counter) {
        self.add(worker, counter, 1);
    }

    /// Record `v` into `dist` on `worker`'s shard.
    pub fn observe(&self, worker: usize, dist: Dist, v: u64) {
        self.shard(worker).dists[dist as usize].record(&self.bounds, v);
    }

    /// Raise `rank`'s mailbox-occupancy high-water mark to `depth`.
    pub fn mailbox_depth(&self, rank: usize, depth: u64) {
        if let Some(slot) = self.rank_hwm.get(rank) {
            slot.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// `rank`'s mailbox-occupancy high-water mark so far.
    pub fn rank_hwm(&self, rank: usize) -> u64 {
        self.rank_hwm
            .get(rank)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Publish the most recently sampled run-queue depth.
    pub fn set_runq_depth(&self, depth: u64) {
        self.runq_depth.store(depth, Ordering::Relaxed);
    }

    /// Publish the most recently sampled pending-timer count.
    pub fn set_timers_pending(&self, pending: u64) {
        self.timers_pending.store(pending, Ordering::Relaxed);
    }

    /// Publish how many broadcast iterations are currently installed
    /// (0 or 1 for single-broadcast runs; the in-flight topic count
    /// under pub/sub). Together with
    /// [`TelemetryHub::set_iter_progress`] this lets a background
    /// sampler see coloring progress (the `iter.*` gauges) without
    /// touching any scheduler structure.
    pub fn set_iter_active(&self, installed: u64) {
        self.iter_active.store(installed, Ordering::Relaxed);
    }

    /// Publish the live-rank total across installed iterations and how
    /// many of those ranks are colored so far.
    pub fn set_iter_progress(&self, live: u64, colored: u64) {
        self.iter_live.store(live, Ordering::Relaxed);
        self.iter_colored.store(colored, Ordering::Relaxed);
    }

    /// Current value of `counter` summed across all shards.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[counter as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Record one finished simulator repetition: rep/event/send totals
    /// plus the per-rep distributions, in one call so the simulator's
    /// hot loop stays untouched (the update runs once per repetition,
    /// after the outcome is already assembled).
    pub fn record_sim_rep(&self, events: u64, sends: u64, quiescence: u64, complete: bool) {
        self.inc(0, Counter::SimReps);
        self.add(0, Counter::SimEvents, events);
        self.add(0, Counter::SimSends, sends);
        if !complete {
            self.inc(0, Counter::SimIncomplete);
        }
        self.observe(0, Dist::SimRepEvents, events);
        self.observe(0, Dist::SimRepSends, sends);
        self.observe(0, Dist::SimRepQuiescence, quiescence);
    }

    /// Merge every shard into a point-in-time [`TelemetrySnapshot`]
    /// with source `"unknown"` (callers tag it via
    /// [`TelemetrySnapshot::with_source`]).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            counters.insert(c.name().to_owned(), self.counter_total(c));
        }
        let mut histograms = BTreeMap::new();
        for d in Dist::ALL {
            let mut merged = Histogram::with_bounds(&self.bounds);
            for s in &self.shards {
                merged.merge(&s.dists[d as usize].snapshot(&self.bounds));
            }
            histograms.insert(d.name().to_owned(), merged);
        }
        let mut gauges = BTreeMap::new();
        gauges.insert(
            "iter.active".to_owned(),
            self.iter_active.load(Ordering::Relaxed),
        );
        gauges.insert(
            "iter.colored".to_owned(),
            self.iter_colored.load(Ordering::Relaxed),
        );
        gauges.insert(
            "iter.live".to_owned(),
            self.iter_live.load(Ordering::Relaxed),
        );
        gauges.insert(
            "runq.depth".to_owned(),
            self.runq_depth.load(Ordering::Relaxed),
        );
        gauges.insert(
            "timers.pending".to_owned(),
            self.timers_pending.load(Ordering::Relaxed),
        );
        gauges.insert(
            "mailbox.hwm".to_owned(),
            self.rank_hwm
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        );
        let per_worker = self
            .shards
            .iter()
            .map(|s| {
                Counter::ALL
                    .iter()
                    .filter_map(|&c| {
                        let v = s.counters[c as usize].load(Ordering::Relaxed);
                        (v != 0).then(|| (c.name().to_owned(), v))
                    })
                    .collect()
            })
            .collect();
        TelemetrySnapshot {
            source: "unknown".to_owned(),
            workers: self.shards.len() as u64,
            ranks: self.rank_hwm.len() as u64,
            counters,
            gauges,
            histograms,
            per_worker,
        }
    }
}

impl fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryHub")
            .field("workers", &self.shards.len())
            .field("ranks", &self.rank_hwm.len())
            .finish_non_exhaustive()
    }
}

/// A point-in-time merge of a [`TelemetryHub`]: the full counter
/// catalogue (zeros included), gauges, merged histograms and per-worker
/// counter breakdowns. Rendered byte-stably by
/// [`TelemetrySnapshot::to_json`] and as Prometheus text exposition by
/// [`TelemetrySnapshot::render_prometheus`].
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// What produced the snapshot: `"sim"`, `"cluster"` or `"unknown"`.
    pub source: String,
    /// Worker shards merged into the snapshot.
    pub workers: u64,
    /// Ranks the hub tracked.
    pub ranks: u64,
    /// Every [`Counter`], by dotted name, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges: `iter.active`, `iter.colored`,
    /// `iter.live`, `runq.depth`, `timers.pending`, `mailbox.hwm`
    /// (max over ranks).
    pub gauges: BTreeMap<String, u64>,
    /// Every [`Dist`], by dotted name, merged across shards.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-worker counter values (zero entries omitted), shard order.
    pub per_worker: Vec<BTreeMap<String, u64>>,
}

impl TelemetrySnapshot {
    /// Tag the snapshot with its producer (`"sim"` or `"cluster"`).
    pub fn with_source(mut self, source: &str) -> TelemetrySnapshot {
        source.clone_into(&mut self.source);
        self
    }

    /// Value of a counter by dotted name (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as one deterministic JSON object (schema [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.field_u64(name, *v);
        }
        let mut gauges = JsonObject::new();
        for (name, v) in &self.gauges {
            gauges.field_u64(name, *v);
        }
        let mut histograms = JsonObject::new();
        for (name, h) in &self.histograms {
            histograms.field_raw(name, &h.to_json());
        }
        let mut per_worker = String::from("[");
        for (i, w) in self.per_worker.iter().enumerate() {
            if i > 0 {
                per_worker.push(',');
            }
            let mut obj = JsonObject::new();
            for (name, v) in w {
                obj.field_u64(name, *v);
            }
            per_worker.push_str(&obj.finish());
        }
        per_worker.push(']');
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_str("source", &self.source);
        obj.field_u64("workers", self.workers);
        obj.field_u64("ranks", self.ranks);
        obj.field_raw("counters", &counters.finish());
        obj.field_raw("gauges", &gauges.finish());
        obj.field_raw("histograms", &histograms.finish());
        obj.field_raw("per_worker", &per_worker);
        obj.finish()
    }

    /// Render as Prometheus text exposition: every counter as
    /// `ct_<name>` (dots become underscores) with per-worker series
    /// labelled `{worker="i"}`, gauges as gauges, histograms as
    /// cumulative `_bucket{le=...}`/`_sum`/`_count` families. Each
    /// family leads with its `# HELP`/`# TYPE` lines and label values
    /// are escaped per the text exposition format.
    pub fn render_prometheus(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let source = prom_label_value(&self.source);
        for (name, v) in &self.counters {
            let metric = prom_name(name);
            if let Some(help) = counter_help(name) {
                let _ = writeln!(out, "# HELP {metric} {help}");
            }
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric}{{source=\"{source}\"}} {v}");
            for (i, w) in self.per_worker.iter().enumerate() {
                if let Some(wv) = w.get(name) {
                    let _ = writeln!(out, "{metric}{{source=\"{source}\",worker=\"{i}\"}} {wv}");
                }
            }
        }
        for (name, v) in &self.gauges {
            let metric = prom_name(name);
            if let Some(help) = gauge_help(name) {
                let _ = writeln!(out, "# HELP {metric} {help}");
            }
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric}{{source=\"{source}\"}} {v}");
        }
        for (name, h) in &self.histograms {
            let metric = prom_name(name);
            if let Some(help) = dist_help(name) {
                let _ = writeln!(out, "# HELP {metric} {help}");
            }
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cum = 0u64;
            for (bound, count) in h.bounds().iter().zip(h.counts()) {
                cum += count;
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{source=\"{source}\",le=\"{bound}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "{metric}_bucket{{source=\"{source}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(out, "{metric}_sum{{source=\"{source}\"}} {}", h.sum());
            let _ = writeln!(out, "{metric}_count{{source=\"{source}\"}} {}", h.count());
        }
        out
    }
}

/// `sched.quantum_us` → `ct_sched_quantum_us`.
fn prom_name(dotted: &str) -> String {
    let mut s = String::with_capacity(dotted.len() + 3);
    s.push_str("ct_");
    for c in dotted.chars() {
        s.push(if c == '.' { '_' } else { c });
    }
    s
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote and newline must be backslash-escaped.
fn prom_label_value(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

/// `# HELP` text for a dotted counter name.
fn counter_help(name: &str) -> Option<&'static str> {
    Counter::ALL
        .iter()
        .find(|c| c.name() == name)
        .map(|c| c.help())
}

/// `# HELP` text for a dotted distribution name.
fn dist_help(name: &str) -> Option<&'static str> {
    Dist::ALL
        .iter()
        .find(|d| d.name() == name)
        .map(|d| d.help())
}

/// `# HELP` text for a gauge name.
fn gauge_help(name: &str) -> Option<&'static str> {
    match name {
        "iter.active" => Some("Broadcast iterations currently installed (0 between, 1 single, topic count under pub/sub)."),
        "iter.colored" => Some("Live ranks colored so far, summed over installed iterations."),
        "iter.live" => Some("Live (non-dead) ranks summed over installed iterations."),
        "runq.depth" => Some("Run-queue depth at snapshot time."),
        "timers.pending" => Some("Pending timer-wheel entries at snapshot time."),
        "mailbox.hwm" => Some("Highest mailbox occupancy seen on any rank."),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let hub = TelemetryHub::new(3, 4);
        hub.inc(0, Counter::SchedQuanta);
        hub.add(1, Counter::SchedQuanta, 2);
        hub.add(2, Counter::SchedQuanta, 3);
        // Shard selection wraps for workers beyond the shard count.
        hub.inc(4, Counter::SchedQuanta);
        assert_eq!(hub.counter_total(Counter::SchedQuanta), 7);
        let snap = hub.snapshot();
        assert_eq!(snap.counter("sched.quanta"), 7);
        assert_eq!(snap.per_worker.len(), 3);
        assert_eq!(snap.per_worker[1]["sched.quanta"], 3);
    }

    #[test]
    fn histograms_merge_across_shards() {
        let hub = TelemetryHub::new(2, 1);
        hub.observe(0, Dist::BatchSize, 4);
        hub.observe(1, Dist::BatchSize, 32);
        let snap = hub.snapshot();
        let h = &snap.histograms["sched.batch_size"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(4));
        assert_eq!(h.max(), Some(32));
        assert_eq!(h.sum(), 36);
    }

    #[test]
    fn rank_hwm_is_monotone_and_bounded() {
        let hub = TelemetryHub::new(1, 2);
        hub.mailbox_depth(0, 3);
        hub.mailbox_depth(0, 1);
        hub.mailbox_depth(1, 9);
        hub.mailbox_depth(99, 1000); // out of range: ignored
        assert_eq!(hub.rank_hwm(0), 3);
        assert_eq!(hub.rank_hwm(1), 9);
        assert_eq!(hub.snapshot().gauges["mailbox.hwm"], 9);
    }

    #[test]
    fn snapshot_json_is_byte_stable_and_schema_tagged() {
        let hub = TelemetryHub::new(2, 4);
        hub.inc(0, Counter::MsgsSent);
        hub.observe(1, Dist::QuantumUs, 12);
        hub.set_runq_depth(5);
        let a = hub.snapshot().with_source("cluster").to_json();
        let b = hub.snapshot().with_source("cluster").to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"ct-telemetry-v1\",\"source\":\"cluster\""));
        assert!(a.contains("\"msgs.sent\":1"), "{a}");
        assert!(a.contains("\"runq.depth\":5"), "{a}");
        assert!(a.contains("\"per_worker\":[{"), "{a}");
        // The full catalogue is present even at zero.
        for c in Counter::ALL {
            assert!(a.contains(&format!("\"{}\":", c.name())), "{}", c.name());
        }
        for d in Dist::ALL {
            assert!(a.contains(&format!("\"{}\":", d.name())), "{}", d.name());
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let hub = TelemetryHub::new(1, 1);
        hub.observe(0, Dist::BatchSize, 1);
        hub.observe(0, Dist::BatchSize, 2);
        hub.observe(0, Dist::BatchSize, 3);
        hub.inc(0, Counter::SchedQuanta);
        let text = hub.snapshot().with_source("cluster").render_prometheus();
        assert!(text.contains("# TYPE ct_sched_quanta counter"), "{text}");
        assert!(
            text.contains("# HELP ct_sched_quanta Scheduling quanta executed"),
            "{text}"
        );
        assert!(
            text.contains("# HELP ct_sched_batch_size Runnable ranks claimed per run-queue batch."),
            "{text}"
        );
        assert!(
            text.contains("# HELP ct_runq_depth Run-queue depth at snapshot time."),
            "{text}"
        );
        assert!(text.contains("ct_sched_quanta{source=\"cluster\"} 1"));
        assert!(
            text.contains("ct_sched_quanta{source=\"cluster\",worker=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("ct_sched_batch_size_bucket{source=\"cluster\",le=\"1\"} 1"));
        assert!(text.contains("ct_sched_batch_size_bucket{source=\"cluster\",le=\"2\"} 2"));
        assert!(text.contains("ct_sched_batch_size_bucket{source=\"cluster\",le=\"4\"} 3"));
        assert!(text.contains("ct_sched_batch_size_bucket{source=\"cluster\",le=\"+Inf\"} 3"));
        assert!(text.contains("ct_sched_batch_size_sum{source=\"cluster\"} 6"));
        assert!(text.contains("ct_sched_batch_size_count{source=\"cluster\"} 3"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let hub = TelemetryHub::new(1, 1);
        hub.inc(0, Counter::SchedQuanta);
        let text = hub
            .snapshot()
            .with_source("clu\"st\\er\nx")
            .render_prometheus();
        assert!(
            text.contains("ct_sched_quanta{source=\"clu\\\"st\\\\er\\nx\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn record_sim_rep_updates_counters_and_dists() {
        let hub = TelemetryHub::new(1, 8);
        hub.record_sim_rep(100, 31, 2000, true);
        hub.record_sim_rep(80, 20, 1500, false);
        let snap = hub.snapshot().with_source("sim");
        assert_eq!(snap.counter("sim.reps"), 2);
        assert_eq!(snap.counter("sim.events"), 180);
        assert_eq!(snap.counter("sim.sends"), 51);
        assert_eq!(snap.counter("sim.incomplete"), 1);
        assert_eq!(snap.histograms["sim.rep_events"].count(), 2);
    }
}
