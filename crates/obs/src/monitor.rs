//! Streaming protocol monitor.
//!
//! [`MonitorSink`] is an [`EventSink`] that validates the event stream
//! *online* — no trace file needed — and works identically under the
//! discrete-event simulator and the threaded cluster runtime. It checks
//! the protocol invariants the paper asserts (§2.1 reliability and
//! no-duplicates, §4.3 fail-stop faults) plus the schema guarantees the
//! producers promise (per-channel FIFO wire order, LogP wire timing,
//! well-nested phase spans, nondecreasing timestamps). Violations are
//! structured [`Violation`] records carrying the invariant id, the
//! offending event and — where one exists — the witness event that
//! establishes the expectation.
//!
//! ## Checked invariants
//!
//! | id | invariant |
//! |----|-----------|
//! | `time-monotone` | timestamps are nondecreasing in emission order within a repetition |
//! | `phase-nesting` | `PhaseBegin`/`PhaseEnd` form a well-nested span stack, all closed at end of stream |
//! | `fifo-order` | the k-th wire arrival on a `(from, to)` channel carries the payload of the k-th send |
//! | `wire-latency` | simulator streams: `arrive = send + (o + L)` and `deliver ≥ arrive + o` |
//! | `wire-complete` | simulator streams: every send is matched by an `Arrive`/`DropDead` by end of run |
//! | `deliver-unmatched` | every `Deliver` is preceded by a matching `Arrive` on its channel |
//! | `deliver-once` | at most one `Tree` payload is delivered per rank (§2.1 no-duplicates) |
//! | `colored-once` | each rank is `Colored` at most once (§2.1 no-duplicates) |
//! | `dead-silent` | no `SendStart`/`Deliver`/`Colored`/`Arrive` involves a dead rank as actor (§4.3 fail-stop) |
//! | `drop-dead-target` | `DropDead` only targets dead ranks |
//! | `reliability` | every live rank is `Colored` by end of run (§2.1) |
//!
//! ## Ordering under the cluster runtime
//!
//! Cluster workers buffer events independently; the coordinator merges
//! the buffers by logical time only, so causally ordered events stamped
//! in the same microsecond can surface in either order (a `Deliver`
//! before the `Arrive` it consumes, an `Arrive` before its `SendStart`).
//! Before checking cross-rank invariants the monitor therefore sorts
//! each repetition by `(time, `[`EventKind::order_class`]`, original
//! index)` — a stable tiebreak that restores cause-before-effect order
//! without disturbing genuinely ordered events — so wall-clock
//! interleaving cannot cause false positives. Raw-order checks
//! (`time-monotone`, `phase-nesting`) still run on emission order.
//!
//! Wall-clock streams (any event with `wall_us` set) additionally relax
//! the two simulator-only checks: `wire-latency` (microsecond stamps do
//! not follow LogP arithmetic) and `wire-complete` (the coordinator's
//! `Stop` legitimately truncates in-flight correction messages).
//!
//! ## Multiplexed streams
//!
//! Streams that interleave several concurrent broadcasts label each
//! event with a broadcast id (the `b` field; see [`Event::bcast`]).
//! Every cross-rank invariant — FIFO matching, delivery matching,
//! at-most-once delivery and coloring, end-of-run reliability — is
//! keyed by that id, so rank 5 being colored once in topic 1 and once
//! in topic 2 is legal while two colorings within one topic are not,
//! and a wire arrival can only consume a send of the same broadcast.
//! Unlabeled events all fall into one implicit broadcast, which keeps
//! single-broadcast streams checked exactly as before. Raw-order checks
//! (`time-monotone`, `phase-nesting`) remain stream-level.

use std::collections::{BTreeMap, VecDeque};

use ct_core::protocol::Payload;
use ct_logp::{LogP, Rank};

use crate::event::{Event, EventKind};
use crate::json::JsonObject;
use crate::sink::EventSink;

/// Identifier of a checked invariant. Display/JSON ids are stable
/// strings (`fifo-order`, `reliability`, …) that tests and CI match on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Timestamps nondecreasing in emission order (per repetition).
    TimeMonotone,
    /// Phase spans well-nested and all closed at end of stream.
    PhaseNesting,
    /// Per-channel FIFO: k-th arrival matches k-th send.
    FifoOrder,
    /// Simulator wire timing: `arrive = send + (o + L)`, `deliver ≥ arrive + o`.
    WireLatency,
    /// Simulator completeness: no send left unmatched at end of run.
    WireComplete,
    /// `Deliver` without a matching prior `Arrive`.
    DeliverUnmatched,
    /// More than one `Tree` delivery at one rank (§2.1 no-duplicates).
    DeliverOnce,
    /// A rank `Colored` more than once (§2.1 no-duplicates).
    ColoredOnce,
    /// A dead rank acted (sent, delivered, colored) or received an
    /// `Arrive` instead of a `DropDead` (§4.3 fail-stop).
    DeadSilent,
    /// `DropDead` targeting a live rank.
    DropDeadTarget,
    /// A live rank left uncolored at end of run (§2.1 reliability).
    Reliability,
}

impl Invariant {
    /// The stable string id used in reports and JSON.
    pub fn id(&self) -> &'static str {
        match self {
            Invariant::TimeMonotone => "time-monotone",
            Invariant::PhaseNesting => "phase-nesting",
            Invariant::FifoOrder => "fifo-order",
            Invariant::WireLatency => "wire-latency",
            Invariant::WireComplete => "wire-complete",
            Invariant::DeliverUnmatched => "deliver-unmatched",
            Invariant::DeliverOnce => "deliver-once",
            Invariant::ColoredOnce => "colored-once",
            Invariant::DeadSilent => "dead-silent",
            Invariant::DropDeadTarget => "drop-dead-target",
            Invariant::Reliability => "reliability",
        }
    }
}

impl core::fmt::Display for Invariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.id())
    }
}

/// One invariant violation: which invariant, where, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Repetition index (0 for a single-run trace).
    pub rep: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending event, where one exists (`reliability` and
    /// `wire-complete` violations describe an *absence*).
    pub event: Option<Event>,
    /// The prior event that establishes the violated expectation (the
    /// mismatched send, the first delivery, the unclosed span begin, …).
    pub witness: Option<Event>,
}

impl Violation {
    /// Render as one JSON object with fixed field order
    /// (`invariant`, `rep`, `message`, `event`, `witness`).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("invariant", self.invariant.id());
        obj.field_u64("rep", u64::from(self.rep));
        obj.field_str("message", &self.message);
        match &self.event {
            Some(e) => obj.field_raw("event", &e.to_json()),
            None => obj.field_null("event"),
        };
        match &self.witness {
            Some(e) => obj.field_raw("witness", &e.to_json()),
            None => obj.field_null("witness"),
        };
        obj.finish()
    }
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{}] rep {}: {}",
            self.invariant.id(),
            self.rep,
            self.message
        )
    }
}

/// Monitor configuration. The defaults check everything that can be
/// checked from the stream alone; supplying `p`, the fault mask and the
/// LogP parameters tightens the checks (exact reliability, wire timing).
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Process count. `None` infers it per repetition from the highest
    /// rank mentioned, which cannot see ranks that stay silent — supply
    /// it whenever known so `reliability` is exact.
    pub p: Option<u32>,
    /// Fault mask (`mask[r]` true ⇒ rank `r` is dead), applied to every
    /// repetition. `None` infers the dead set per repetition from
    /// `DropDead` targets — sufficient for `drop-dead-target` but blind
    /// to dead ranks that no message ever reached.
    pub failed: Option<Vec<bool>>,
    /// LogP parameters for the simulator wire-timing checks. `None`
    /// disables `wire-latency` (timing is always skipped on wall-clock
    /// streams regardless).
    pub logp: Option<LogP>,
    /// Stop at the first violation instead of collecting all of them.
    pub fail_fast: bool,
    /// Check end-of-run reliability (on by default). Disable when
    /// monitoring protocols that do not promise §2.1 reliability, e.g. a
    /// plain tree under faults with no correction phase.
    pub check_reliability: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::new()
    }
}

impl MonitorConfig {
    /// Everything on, reliability checked, nothing known a priori.
    pub fn new() -> MonitorConfig {
        MonitorConfig {
            p: None,
            failed: None,
            logp: None,
            fail_fast: false,
            check_reliability: true,
        }
    }

    /// Set the process count.
    pub fn with_p(mut self, p: u32) -> Self {
        self.p = Some(p);
        self
    }

    /// Set the fault mask.
    pub fn with_failed(mut self, mask: Vec<bool>) -> Self {
        self.failed = Some(mask);
        self
    }

    /// Enable simulator wire-timing checks against these parameters.
    pub fn with_logp(mut self, logp: LogP) -> Self {
        self.logp = Some(logp);
        self
    }

    /// Stop at the first violation.
    pub fn with_fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Skip the end-of-run reliability check.
    pub fn without_reliability(mut self) -> Self {
        self.check_reliability = false;
        self
    }
}

/// The monitor's verdict over a whole stream.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// All violations found (at most one in fail-fast mode).
    pub violations: Vec<Violation>,
    /// Number of events inspected.
    pub events: u64,
    /// Number of repetitions validated (repetitions containing at least
    /// one protocol event).
    pub reps: u32,
}

impl MonitorReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report in, re-stamping its violations with the
    /// given repetition index (used when driving one monitor per
    /// campaign repetition).
    pub fn absorb(&mut self, mut other: MonitorReport, rep: u32) {
        for v in &mut other.violations {
            v.rep = rep;
        }
        self.violations.append(&mut other.violations);
        self.events += other.events;
        self.reps += other.reps;
    }

    /// Render as one stable JSON object:
    /// `{"violations": N, "events": N, "reps": N, "records": [...]}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("violations", self.violations.len() as u64);
        obj.field_u64("events", self.events);
        obj.field_u64("reps", u64::from(self.reps));
        let records: Vec<String> = self.violations.iter().map(Violation::to_json).collect();
        obj.field_raw("records", &format!("[{}]", records.join(",")));
        obj.finish()
    }

    /// Render a human-readable summary, one violation per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.is_ok() {
            out.push_str(&format!(
                "ok: 0 violations across {} events, {} rep(s)\n",
                self.events, self.reps
            ));
            return out;
        }
        out.push_str(&format!(
            "FAIL: {} violation(s) across {} events, {} rep(s)\n",
            self.violations.len(),
            self.events,
            self.reps
        ));
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
            if let Some(e) = &v.event {
                out.push_str(&format!("    event:   {e}\n"));
            }
            if let Some(w) = &v.witness {
                out.push_str(&format!("    witness: {w}\n"));
            }
        }
        out
    }
}

/// Streaming invariant monitor. See the module docs for the invariant
/// catalogue and the ordering model.
///
/// Validation is streaming at repetition granularity: protocol events
/// are buffered per repetition (delimited by `rep*` phase spans; a raw
/// single-run stream is one repetition) and checked when the repetition
/// closes, so memory is bounded by the largest repetition, not the
/// whole campaign. Phase nesting is checked fully online.
#[derive(Debug)]
pub struct MonitorSink {
    cfg: MonitorConfig,
    violations: Vec<Violation>,
    events_seen: u64,
    reps_validated: u32,
    /// Buffered events of the current repetition.
    buf: Vec<Event>,
    /// Open phase spans (name + begin event), whole-stream.
    phase_stack: Vec<(String, Event)>,
    tripped: bool,
}

fn is_rep_span(name: &str) -> bool {
    name == "rep" || name.starts_with("rep ")
}

fn is_protocol_event(kind: &EventKind) -> bool {
    !matches!(
        kind,
        EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. }
    )
}

/// The phase a payload belongs to: dissemination (`tree`/`gossip`) or
/// correction (`correction`/`ack`).
pub fn is_correction_payload(p: Payload) -> bool {
    matches!(p, Payload::Correction | Payload::Ack)
}

impl MonitorSink {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> MonitorSink {
        MonitorSink {
            cfg,
            violations: Vec::new(),
            events_seen: 0,
            reps_validated: 0,
            buf: Vec::new(),
            phase_stack: Vec::new(),
            tripped: false,
        }
    }

    /// Check a recorded stream offline. Convenience wrapper used by
    /// `ct check --input`, the campaign integration and the tests.
    pub fn check(events: &[Event], cfg: &MonitorConfig) -> MonitorReport {
        let mut sink = MonitorSink::new(cfg.clone());
        for e in events {
            sink.emit(e);
        }
        sink.finish()
    }

    /// Consume the monitor, validating any open repetition and
    /// unclosed phase spans, and return the report.
    pub fn finish(mut self) -> MonitorReport {
        self.finalize_rep();
        if !self.tripped {
            // Drain in stack order so the report is deterministic.
            while let Some((name, begin)) = self.phase_stack.pop() {
                self.push_violation(Violation {
                    invariant: Invariant::PhaseNesting,
                    rep: self.reps_validated,
                    message: format!("span {name:?} never closed"),
                    event: None,
                    witness: Some(begin),
                });
                if self.tripped {
                    break;
                }
            }
        }
        MonitorReport {
            violations: self.violations,
            events: self.events_seen,
            reps: self.reps_validated,
        }
    }

    /// Violations found so far (checked repetitions only).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn push_violation(&mut self, v: Violation) {
        self.violations.push(v);
        if self.cfg.fail_fast {
            self.tripped = true;
        }
    }

    /// Validate and clear the current repetition buffer. No-op for
    /// buffers holding no protocol events (the campaign envelope).
    fn finalize_rep(&mut self) {
        if self.tripped || !self.buf.iter().any(|e| is_protocol_event(&e.kind)) {
            self.buf.clear();
            return;
        }
        let buf = core::mem::take(&mut self.buf);
        let rep = self.reps_validated;
        self.reps_validated += 1;
        let mut checker = RepChecker::new(&self.cfg, rep);
        checker.run(&buf);
        for v in checker.violations {
            self.push_violation(v);
            if self.tripped {
                break;
            }
        }
    }

    fn on_phase_begin(&mut self, e: &Event, name: &str) {
        self.phase_stack.push((name.to_owned(), e.clone()));
        if is_rep_span(name) {
            self.finalize_rep();
        } else {
            self.buf.push(e.clone());
        }
    }

    fn on_phase_end(&mut self, e: &Event, name: &str) {
        match self.phase_stack.last() {
            Some((top, _)) if top == name => {
                self.phase_stack.pop();
            }
            Some((top, begin)) => {
                let message = format!("span end {name:?} while {top:?} is open");
                let witness = begin.clone();
                self.push_violation(Violation {
                    invariant: Invariant::PhaseNesting,
                    rep: self.reps_validated,
                    message,
                    event: Some(e.clone()),
                    witness: Some(witness),
                });
                // Recover: close the matching open span if one exists,
                // so a single mismatch does not cascade.
                if let Some(pos) = self.phase_stack.iter().rposition(|(n, _)| n == name) {
                    self.phase_stack.truncate(pos);
                }
            }
            None => {
                self.push_violation(Violation {
                    invariant: Invariant::PhaseNesting,
                    rep: self.reps_validated,
                    message: format!("span end {name:?} with no open span"),
                    event: Some(e.clone()),
                    witness: None,
                });
            }
        }
        if is_rep_span(name) {
            self.finalize_rep();
        } else {
            self.buf.push(e.clone());
        }
    }
}

impl EventSink for MonitorSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: &Event) {
        self.events_seen += 1;
        if self.tripped {
            return;
        }
        match &event.kind {
            EventKind::PhaseBegin { name } => {
                let name = name.clone();
                self.on_phase_begin(event, &name);
            }
            EventKind::PhaseEnd { name } => {
                let name = name.clone();
                self.on_phase_end(event, &name);
            }
            _ => self.buf.push(event.clone()),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Per-repetition checking pass (raw-order checks, then sorted
/// cross-rank matching).
struct RepChecker<'a> {
    cfg: &'a MonitorConfig,
    rep: u32,
    violations: Vec<Violation>,
}

impl<'a> RepChecker<'a> {
    fn new(cfg: &'a MonitorConfig, rep: u32) -> Self {
        RepChecker {
            cfg,
            rep,
            violations: Vec::new(),
        }
    }

    fn violation(
        &mut self,
        invariant: Invariant,
        message: String,
        event: Option<&Event>,
        witness: Option<&Event>,
    ) {
        self.violations.push(Violation {
            invariant,
            rep: self.rep,
            message,
            event: event.cloned(),
            witness: witness.cloned(),
        });
    }

    fn run(&mut self, buf: &[Event]) {
        let wall = buf.iter().any(|e| e.wall_us.is_some());

        // Raw emission order: nondecreasing timestamps.
        let mut max_seen: Option<usize> = None;
        for (i, e) in buf.iter().enumerate() {
            if let Some(m) = max_seen {
                if e.time < buf[m].time {
                    self.violation(
                        Invariant::TimeMonotone,
                        format!(
                            "timestamp {} after {} in emission order",
                            e.time.steps(),
                            buf[m].time.steps()
                        ),
                        Some(e),
                        Some(&buf[m]),
                    );
                }
            }
            if max_seen.is_none_or(|m| e.time > buf[m].time) {
                max_seen = Some(i);
            }
        }

        // Effective dead mask and process count.
        let inferred_dead: Vec<Rank> = buf
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::DropDead { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        let p = self.cfg.p.unwrap_or_else(|| {
            buf.iter().fold(0, |acc, e| match &e.kind {
                EventKind::SendStart { from, to, .. }
                | EventKind::Arrive { from, to, .. }
                | EventKind::Deliver { from, to, .. }
                | EventKind::DropDead { from, to, .. } => acc.max(from + 1).max(to + 1),
                EventKind::Colored { rank, .. } => acc.max(rank + 1),
                _ => acc,
            })
        });
        let dead = |r: Rank| -> bool {
            match &self.cfg.failed {
                Some(mask) => mask.get(r as usize).copied().unwrap_or(false),
                None => inferred_dead.contains(&r),
            }
        };

        // Stable causal sort; see EventKind::order_class.
        let mut order: Vec<usize> = (0..buf.len()).collect();
        order.sort_by_key(|&i| (buf[i].time, buf[i].kind.order_class(), i));

        let timing = if wall { None } else { self.cfg.logp };
        // Cross-rank state is keyed by broadcast id so multiplexed
        // streams are checked per broadcast; unlabeled events share
        // id 0.
        let bid = |e: &Event| e.bcast.unwrap_or(0);
        // Outstanding sends / undelivered arrivals per channel.
        let mut on_wire: BTreeMap<(u64, Rank, Rank), VecDeque<usize>> = BTreeMap::new();
        let mut arrived: BTreeMap<(u64, Rank, Rank), VecDeque<usize>> = BTreeMap::new();
        let mut colored_at: BTreeMap<(u64, Rank), usize> = BTreeMap::new();
        let mut tree_delivered: BTreeMap<(u64, Rank), usize> = BTreeMap::new();
        // Every broadcast id with protocol events; reliability is
        // judged per id.
        let bcasts: std::collections::BTreeSet<u64> = buf
            .iter()
            .filter(|e| is_protocol_event(&e.kind))
            .map(bid)
            .collect();
        // "in broadcast N" suffix for multiplexed streams; empty for
        // the single implicit broadcast so existing reports are
        // unchanged.
        let tag = |b: u64| -> String {
            if bcasts.len() > 1 || b != 0 {
                format!(" in broadcast {b}")
            } else {
                String::new()
            }
        };

        for &i in &order {
            let e = &buf[i];
            let b = bid(e);
            match &e.kind {
                EventKind::SendStart { from, to, .. } => {
                    if dead(*from) {
                        self.violation(
                            Invariant::DeadSilent,
                            format!("dead rank {from} sent to {to}"),
                            Some(e),
                            None,
                        );
                    }
                    on_wire.entry((b, *from, *to)).or_default().push_back(i);
                }
                EventKind::Arrive { from, to, payload } => {
                    if dead(*to) {
                        self.violation(
                            Invariant::DeadSilent,
                            format!("arrival at dead rank {to} (expected drop)"),
                            Some(e),
                            None,
                        );
                    }
                    self.match_wire(buf, &mut on_wire, i, (b, *from, *to), *payload, timing);
                    arrived.entry((b, *from, *to)).or_default().push_back(i);
                }
                EventKind::DropDead { from, to, payload } => {
                    if !dead(*to) {
                        self.violation(
                            Invariant::DropDeadTarget,
                            format!("drop at live rank {to}"),
                            Some(e),
                            None,
                        );
                    }
                    self.match_wire(buf, &mut on_wire, i, (b, *from, *to), *payload, timing);
                }
                EventKind::Deliver { from, to, payload } => {
                    if dead(*to) {
                        self.violation(
                            Invariant::DeadSilent,
                            format!("delivery at dead rank {to}"),
                            Some(e),
                            None,
                        );
                    }
                    match arrived
                        .get_mut(&(b, *from, *to))
                        .and_then(VecDeque::pop_front)
                    {
                        None => self.violation(
                            Invariant::DeliverUnmatched,
                            format!(
                                "delivery on channel {from}->{to} with no pending arrival{}",
                                tag(b)
                            ),
                            Some(e),
                            None,
                        ),
                        Some(a) => {
                            let arr = &buf[a];
                            if payload_of(&arr.kind) != Some(*payload) {
                                self.violation(
                                    Invariant::DeliverUnmatched,
                                    format!(
                                        "delivery payload mismatches pending arrival on {from}->{to}"
                                    ),
                                    Some(e),
                                    Some(arr),
                                );
                            }
                            if let Some(logp) = timing {
                                if e.time.steps() < arr.time.steps() + logp.o() {
                                    self.violation(
                                        Invariant::WireLatency,
                                        format!(
                                            "deliver at {} before arrive {} + o {}",
                                            e.time.steps(),
                                            arr.time.steps(),
                                            logp.o()
                                        ),
                                        Some(e),
                                        Some(arr),
                                    );
                                }
                            }
                        }
                    }
                    if *payload == Payload::Tree {
                        if let Some(&first) = tree_delivered.get(&(b, *to)) {
                            self.violation(
                                Invariant::DeliverOnce,
                                format!("rank {to} delivered the tree payload twice{}", tag(b)),
                                Some(e),
                                Some(&buf[first]),
                            );
                        } else {
                            tree_delivered.insert((b, *to), i);
                        }
                    }
                }
                EventKind::Colored { rank, .. } => {
                    if dead(*rank) {
                        self.violation(
                            Invariant::DeadSilent,
                            format!("dead rank {rank} colored"),
                            Some(e),
                            None,
                        );
                    }
                    if let Some(&first) = colored_at.get(&(b, *rank)) {
                        self.violation(
                            Invariant::ColoredOnce,
                            format!("rank {rank} colored twice{}", tag(b)),
                            Some(e),
                            Some(&buf[first]),
                        );
                    } else {
                        colored_at.insert((b, *rank), i);
                    }
                }
                EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => {}
            }
        }

        // End of repetition: nothing still on the wire (simulator only —
        // the cluster's Stop legitimately truncates in-flight messages).
        if !wall {
            for ((b, from, to), pending) in &on_wire {
                if let Some(&first) = pending.front() {
                    self.violation(
                        Invariant::WireComplete,
                        format!(
                            "{} send(s) on {from}->{to} never arrived or dropped{}",
                            pending.len(),
                            tag(*b)
                        ),
                        None,
                        Some(&buf[first]),
                    );
                }
            }
        }

        // End of repetition: every live rank colored (§2.1), judged
        // once per broadcast id present in the stream.
        if self.cfg.check_reliability {
            for &b in &bcasts {
                for r in 0..p {
                    if !dead(r) && !colored_at.contains_key(&(b, r)) {
                        self.violation(
                            Invariant::Reliability,
                            format!("live rank {r} never colored{}", tag(b)),
                            None,
                            None,
                        );
                    }
                }
            }
        }
    }

    /// Pop the channel's oldest outstanding send for this wire event
    /// (`Arrive` or `DropDead`), checking FIFO payload order and — on
    /// simulator streams — the exact `send + (o + L)` wire latency.
    fn match_wire(
        &mut self,
        buf: &[Event],
        on_wire: &mut BTreeMap<(u64, Rank, Rank), VecDeque<usize>>,
        i: usize,
        (b, from, to): (u64, Rank, Rank),
        payload: Payload,
        timing: Option<LogP>,
    ) {
        let e = &buf[i];
        match on_wire
            .get_mut(&(b, from, to))
            .and_then(VecDeque::pop_front)
        {
            None => self.violation(
                Invariant::FifoOrder,
                format!("wire event on {from}->{to} with no outstanding send"),
                Some(e),
                None,
            ),
            Some(s) => {
                let send = &buf[s];
                if payload_of(&send.kind) != Some(payload) {
                    self.violation(
                        Invariant::FifoOrder,
                        format!("payload mismatches oldest outstanding send on {from}->{to}"),
                        Some(e),
                        Some(send),
                    );
                }
                if let Some(logp) = timing {
                    let wire = logp.o() + logp.l();
                    if e.time.steps() != send.time.steps() + wire {
                        self.violation(
                            Invariant::WireLatency,
                            format!(
                                "wire event at {} but send {} + (o + L) {}",
                                e.time.steps(),
                                send.time.steps(),
                                wire
                            ),
                            Some(e),
                            Some(send),
                        );
                    }
                }
            }
        }
    }
}

fn payload_of(kind: &EventKind) -> Option<Payload> {
    match kind {
        EventKind::SendStart { payload, .. }
        | EventKind::Arrive { payload, .. }
        | EventKind::Deliver { payload, .. }
        | EventKind::DropDead { payload, .. } => Some(*payload),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::protocol::ColoredVia;
    use ct_logp::Time;

    fn send(t: u64, from: Rank, to: Rank) -> Event {
        Event::sim(
            Time::new(t),
            EventKind::SendStart {
                from,
                to,
                payload: Payload::Tree,
            },
        )
    }

    fn arrive(t: u64, from: Rank, to: Rank) -> Event {
        Event::sim(
            Time::new(t),
            EventKind::Arrive {
                from,
                to,
                payload: Payload::Tree,
            },
        )
    }

    fn deliver(t: u64, from: Rank, to: Rank) -> Event {
        Event::sim(
            Time::new(t),
            EventKind::Deliver {
                from,
                to,
                payload: Payload::Tree,
            },
        )
    }

    fn colored(t: u64, rank: Rank, via: ColoredVia) -> Event {
        Event::sim(Time::new(t), EventKind::Colored { rank, via })
    }

    fn phase(t: u64, name: &str, begin: bool) -> Event {
        Event::sim(
            Time::new(t),
            if begin {
                EventKind::PhaseBegin { name: name.into() }
            } else {
                EventKind::PhaseEnd { name: name.into() }
            },
        )
    }

    /// A minimal clean 2-rank broadcast under LogP::PAPER (o=1, L=2).
    fn clean_run() -> Vec<Event> {
        vec![
            phase(0, "broadcast", true),
            colored(0, 0, ColoredVia::Root),
            send(0, 0, 1),
            arrive(3, 0, 1),
            deliver(4, 0, 1),
            colored(4, 1, ColoredVia::Dissemination),
            phase(4, "broadcast", false),
        ]
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig::new().with_p(2).with_logp(LogP::PAPER)
    }

    fn ids(report: &MonitorReport) -> Vec<&'static str> {
        report.violations.iter().map(|v| v.invariant.id()).collect()
    }

    #[test]
    fn clean_run_is_ok() {
        let report = MonitorSink::check(&clean_run(), &cfg());
        assert!(report.is_ok(), "{}", report.render_text());
        assert_eq!(report.reps, 1);
    }

    #[test]
    fn missing_arrive_is_wire_incomplete() {
        let mut events = clean_run();
        events.retain(|e| !matches!(e.kind, EventKind::Arrive { .. }));
        let report = MonitorSink::check(&events, &cfg());
        assert!(
            ids(&report).contains(&"wire-complete"),
            "{ids:?}",
            ids = ids(&report)
        );
        assert!(ids(&report).contains(&"deliver-unmatched"));
    }

    #[test]
    fn wrong_wire_latency_is_flagged() {
        let mut events = clean_run();
        for e in &mut events {
            if matches!(e.kind, EventKind::Arrive { .. }) {
                e.time = Time::new(2); // should be send + (o + L) = 3
            }
        }
        let report = MonitorSink::check(&events, &cfg());
        assert!(ids(&report).contains(&"wire-latency"));
    }

    #[test]
    fn double_color_and_double_deliver_are_flagged() {
        let mut events = clean_run();
        events.insert(6, colored(4, 1, ColoredVia::Correction));
        events.insert(6, deliver(5, 0, 1));
        let report = MonitorSink::check(&events, &cfg());
        let got = ids(&report);
        assert!(got.contains(&"colored-once"), "{got:?}");
        assert!(got.contains(&"deliver-once"), "{got:?}");
        assert!(got.contains(&"deliver-unmatched"), "{got:?}");
    }

    #[test]
    fn dead_rank_activity_is_flagged() {
        let mut events = clean_run();
        events.insert(3, send(1, 1, 0));
        let c = MonitorConfig::new()
            .with_p(2)
            .with_logp(LogP::PAPER)
            .with_failed(vec![false, true]);
        let report = MonitorSink::check(&events, &c);
        let got = ids(&report);
        assert!(got.contains(&"dead-silent"), "{got:?}");
    }

    #[test]
    fn drop_at_live_rank_is_flagged() {
        let events = vec![
            colored(0, 0, ColoredVia::Root),
            send(0, 0, 1),
            Event::sim(
                Time::new(3),
                EventKind::DropDead {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
        ];
        let c = MonitorConfig::new()
            .with_p(2)
            .with_failed(vec![false, false])
            .without_reliability();
        let report = MonitorSink::check(&events, &c);
        assert_eq!(ids(&report), vec!["drop-dead-target"]);
    }

    #[test]
    fn uncolored_live_rank_is_unreliable() {
        let events = vec![
            colored(0, 0, ColoredVia::Root),
            send(0, 0, 1),
            arrive(3, 0, 1),
        ];
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(2));
        assert!(ids(&report).contains(&"reliability"));
    }

    #[test]
    fn non_monotone_and_bad_nesting_are_flagged() {
        let events = vec![
            phase(0, "a", true),
            send(5, 0, 1),
            arrive(3, 0, 1),
            phase(8, "b", false),
        ];
        let report = MonitorSink::check(
            &events,
            &MonitorConfig::new().with_p(2).without_reliability(),
        );
        let got = ids(&report);
        assert!(got.contains(&"time-monotone"), "{got:?}");
        assert!(got.contains(&"phase-nesting"), "{got:?}");
    }

    #[test]
    fn fail_fast_stops_at_first_violation() {
        let mut events = clean_run();
        events.retain(|e| !matches!(e.kind, EventKind::Arrive { .. }));
        let report = MonitorSink::check(&events, &cfg().with_fail_fast());
        assert_eq!(report.violations.len(), 1);
    }

    /// Satellite: wall-clock interleaving must not cause false
    /// positives. Cluster workers stamp causally ordered events with
    /// equal microseconds and the coordinator merges per-worker buffers
    /// by time only, so the raw order may show the arrival before its
    /// send; the monitor's stable `(time, order_class, index)` sort must
    /// repair it.
    #[test]
    fn equal_timestamp_interleaving_is_repaired_by_stable_sort() {
        let w = |t: u64, kind: EventKind| Event::wall(Time::new(t), t, kind);
        let events = vec![
            w(
                0,
                EventKind::PhaseBegin {
                    name: "broadcast".into(),
                },
            ),
            w(
                0,
                EventKind::Colored {
                    rank: 0,
                    via: ColoredVia::Root,
                },
            ),
            // Arrival and delivery surface *before* the send they
            // consume, all stamped in the same microsecond.
            w(
                7,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                7,
                EventKind::Arrive {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                7,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                7,
                EventKind::Colored {
                    rank: 1,
                    via: ColoredVia::Dissemination,
                },
            ),
            w(
                9,
                EventKind::PhaseEnd {
                    name: "broadcast".into(),
                },
            ),
        ];
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(2));
        assert!(report.is_ok(), "{}", report.render_text());
    }

    /// A clean 2-rank wall-clock broadcast labeled with broadcast `b`.
    fn labeled_run(b: u64) -> Vec<Event> {
        let w = |t: u64, kind: EventKind| Event::wall(Time::new(t), t, kind).with_bcast(b);
        vec![
            w(
                0,
                EventKind::Colored {
                    rank: 0,
                    via: ColoredVia::Root,
                },
            ),
            w(
                0,
                EventKind::SendStart {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                3,
                EventKind::Arrive {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                4,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            ),
            w(
                4,
                EventKind::Colored {
                    rank: 1,
                    via: ColoredVia::Dissemination,
                },
            ),
        ]
    }

    #[test]
    fn concurrent_broadcasts_are_checked_independently() {
        // Two interleaved topics: each rank colored once per topic, each
        // delivery matching its own topic's arrival — clean.
        let mut events: Vec<Event> = Vec::new();
        for (a, b) in labeled_run(1).into_iter().zip(labeled_run(2)) {
            events.push(a);
            events.push(b);
        }
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(2));
        assert!(report.is_ok(), "{}", report.render_text());
    }

    #[test]
    fn double_coloring_within_one_broadcast_is_still_flagged() {
        let mut events = labeled_run(1);
        events.extend(labeled_run(2));
        events.sort_by_key(|e| e.time);
        events.push(
            Event::wall(
                Time::new(5),
                5,
                EventKind::Colored {
                    rank: 1,
                    via: ColoredVia::Correction,
                },
            )
            .with_bcast(2),
        );
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(2));
        let got = ids(&report);
        assert_eq!(got, vec!["colored-once"], "{}", report.render_text());
        assert!(
            report.violations[0].message.contains("in broadcast 2"),
            "{}",
            report.violations[0].message
        );
    }

    #[test]
    fn cross_broadcast_delivery_is_unmatched() {
        // Topic 2's delivery consumes topic 1's arrival: the sorted
        // stream has a pending arrival on the channel, but for the
        // wrong broadcast — must be flagged per topic.
        let mut events = labeled_run(1);
        // Remove topic 1's delivery so its arrival stays pending.
        events.retain(|e| !matches!(e.kind, EventKind::Deliver { .. }));
        events.push(
            Event::wall(
                Time::new(4),
                4,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    payload: Payload::Tree,
                },
            )
            .with_bcast(2),
        );
        let report = MonitorSink::check(
            &events,
            &MonitorConfig::new().with_p(2).without_reliability(),
        );
        let got = ids(&report);
        assert!(got.contains(&"deliver-unmatched"), "{got:?}");
    }

    #[test]
    fn reliability_is_judged_per_broadcast() {
        // Topic 1 completes; topic 2 never colors rank 1.
        let mut events = labeled_run(1);
        events.extend(
            labeled_run(2)
                .into_iter()
                .filter(|e| !matches!(e.kind, EventKind::Colored { rank: 1, .. })),
        );
        events.sort_by_key(|e| e.time);
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(2));
        let got = ids(&report);
        assert_eq!(got, vec!["reliability"], "{}", report.render_text());
        assert!(
            report.violations[0].message.contains("in broadcast 2"),
            "{}",
            report.violations[0].message
        );
    }

    #[test]
    fn rep_spans_reset_state() {
        let mut events = vec![phase(0, "campaign", true), phase(0, "rep 0", true)];
        events.extend(clean_run());
        events.push(phase(9, "rep 0", false));
        events.push(phase(0, "rep 1", true));
        events.extend(clean_run());
        events.push(phase(9, "rep 1", false));
        events.push(phase(9, "campaign", false));
        let report = MonitorSink::check(&events, &cfg());
        assert!(report.is_ok(), "{}", report.render_text());
        assert_eq!(report.reps, 2);
    }

    #[test]
    fn unclosed_span_is_flagged_at_finish() {
        let mut events = clean_run();
        events.pop(); // drop the broadcast PhaseEnd
        let report = MonitorSink::check(&events, &cfg());
        assert!(ids(&report).contains(&"phase-nesting"));
    }

    #[test]
    fn report_json_is_stable() {
        let events = vec![
            colored(0, 0, ColoredVia::Root),
            colored(1, 0, ColoredVia::Correction),
        ];
        let report = MonitorSink::check(&events, &MonitorConfig::new().with_p(1));
        assert_eq!(
            report.to_json(),
            "{\"violations\":1,\"events\":2,\"reps\":1,\"records\":[\
             {\"invariant\":\"colored-once\",\"rep\":0,\"message\":\"rank 0 colored twice\",\
             \"event\":{\"t\":1,\"kind\":\"colored\",\"rank\":0,\"via\":\"correction\"},\
             \"witness\":{\"t\":0,\"kind\":\"colored\",\"rank\":0,\"via\":\"root\"}}]}"
        );
    }
}
