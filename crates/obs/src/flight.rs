//! Black-box flight recorder: bounded rings of recent runtime events.
//!
//! The telemetry hub ([`crate::telemetry`]) counts *how much* work the
//! scheduler did; the stall report says *who* is stuck. Neither can say
//! *what happened last* — when the PR-5 lost-wakeup race tripped the
//! watchdog, there was no recent-event history to read. This module is
//! the missing black box: every worker owns a fixed-capacity ring of
//! compact fixed-size records (kind, rank, aux payload, logical step,
//! wall-clock µs, plus a wrap-detecting sequence number). Writers
//! overwrite the oldest slot, so steady-state cost is a handful of
//! relaxed atomic stores per event and memory stays bounded no matter
//! how long the run is. Each shard has exactly one writer (its worker
//! thread), so no CAS loops or locks appear on the hot path; the
//! recorder is attached via the same `Option` discipline as the
//! telemetry hub and costs nothing when absent.
//!
//! On a watchdog stall, worker panic or monitor violation the runtime
//! calls [`FlightRecorder::freeze`] — recording stops, the rings keep
//! their final contents — and [`FlightRecorder::dump`] extracts a
//! [`FlightDump`]: per-shard tails in write order plus merge/filter
//! helpers used to build the `ct-postmortem-v1` bundle.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::json::JsonObject;

/// Sentinel for records that concern no particular rank (for example
/// iteration markers and coordinator batches); rendered as JSON `null`.
pub const NO_RANK: u32 = u32::MAX;

/// Words of ring storage per record: sequence number, packed
/// kind/rank, aux payload, logical step, wall-clock µs.
const RECORD_WORDS: usize = 5;

/// What a flight record describes. One schema is shared by the cluster
/// runtime and the LogP simulator so post-mortem tooling reads both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightKind {
    /// A broadcast iteration was installed (`aux` = broadcast id on the
    /// cluster, seed in the simulator).
    IterStart,
    /// A broadcast iteration finished (`aux` = 1 if every live rank was
    /// colored, 0 otherwise; `step` = latency in µs / LogP steps).
    IterEnd,
    /// A worker began a scheduling quantum for `rank` (`aux` =
    /// broadcast id — or 0 when the quantum served several concurrent
    /// broadcasts — `step` = µs into the iteration).
    QuantumStart,
    /// A worker finished a scheduling quantum for `rank`.
    QuantumEnd,
    /// A quantum found no installed iteration for `rank` and was
    /// discarded as stale.
    StaleQuantum,
    /// A message was pushed into `rank`'s mailbox; `aux` packs
    /// `broadcast_id << 32 | pushing_rank` so a stall can be attributed
    /// to the topic that caused it (decode with
    /// [`FlightRecord::push_peer`] / [`FlightRecord::push_bcast`]).
    MailboxPush,
    /// `rank` drained its mailbox (`aux` = messages taken).
    MailboxDrain,
    /// `rank` armed a timer (`aux` = absolute deadline in µs on the
    /// cluster timeline, `step` = requested wake time).
    TimerArm,
    /// A timer fired and re-enqueued `rank`.
    TimerFire,
    /// `rank` was woken (made runnable); `aux` names the waking rank.
    Wake,
    /// The end-of-quantum recheck re-armed `rank` (lost-wakeup guard).
    Recheck,
    /// A worker flushed a coordinator batch (`aux` = ranks in the
    /// batch).
    CoordBatch,
}

impl FlightKind {
    /// Every kind, in code order.
    pub const ALL: [FlightKind; 12] = [
        FlightKind::IterStart,
        FlightKind::IterEnd,
        FlightKind::QuantumStart,
        FlightKind::QuantumEnd,
        FlightKind::StaleQuantum,
        FlightKind::MailboxPush,
        FlightKind::MailboxDrain,
        FlightKind::TimerArm,
        FlightKind::TimerFire,
        FlightKind::Wake,
        FlightKind::Recheck,
        FlightKind::CoordBatch,
    ];

    /// Stable wire name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::IterStart => "iter_start",
            FlightKind::IterEnd => "iter_end",
            FlightKind::QuantumStart => "quantum_start",
            FlightKind::QuantumEnd => "quantum_end",
            FlightKind::StaleQuantum => "stale_quantum",
            FlightKind::MailboxPush => "mailbox_push",
            FlightKind::MailboxDrain => "mailbox_drain",
            FlightKind::TimerArm => "timer_arm",
            FlightKind::TimerFire => "timer_fire",
            FlightKind::Wake => "wake",
            FlightKind::Recheck => "recheck",
            FlightKind::CoordBatch => "coord_batch",
        }
    }

    fn code(self) -> u32 {
        self as u32
    }

    fn from_code(code: u32) -> Option<FlightKind> {
        FlightKind::ALL.get(code as usize).copied()
    }
}

/// One decoded flight-recorder entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Per-shard sequence number (0-based write index). Gaps between
    /// `written - records.len()` and the first retained `seq` are
    /// records lost to ring wrap.
    pub seq: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The rank concerned, or [`NO_RANK`].
    pub rank: u32,
    /// Kind-specific payload (pusher/waker rank, drain count, deadline,
    /// batch size, broadcast id, completion flag — see [`FlightKind`]).
    pub aux: u64,
    /// Logical step: µs into the iteration on the cluster, LogP steps
    /// in the simulator.
    pub step: u64,
    /// Wall-clock µs since the cluster base (0 in the simulator, which
    /// has no wall clock).
    pub wall_us: u64,
}

impl FlightRecord {
    /// The pushing rank of a [`FlightKind::MailboxPush`] record (the
    /// low half of its packed `aux`).
    pub fn push_peer(&self) -> u32 {
        self.aux as u32
    }

    /// The broadcast id of a [`FlightKind::MailboxPush`] record (the
    /// high half of its packed `aux`); 0 on records written before the
    /// id was threaded through.
    pub fn push_bcast(&self) -> u64 {
        self.aux >> 32
    }

    /// Whether this record concerns `rank` — as the subject, or as the
    /// named peer of a push/wake.
    pub fn involves(&self, rank: u32) -> bool {
        if self.rank == rank {
            return true;
        }
        match self.kind {
            // The push peer shares the aux word with the broadcast id.
            FlightKind::MailboxPush => self.push_peer() == rank,
            FlightKind::Wake => self.aux == u64::from(rank),
            _ => false,
        }
    }

    /// Render as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("seq", self.seq);
        obj.field_str("kind", self.kind.name());
        if self.rank == NO_RANK {
            obj.field_null("rank");
        } else {
            obj.field_u64("rank", u64::from(self.rank));
        }
        obj.field_u64("aux", self.aux);
        obj.field_u64("step", self.step);
        obj.field_u64("wall_us", self.wall_us);
        obj.finish()
    }
}

/// One writer shard: a ring of `cap` record slots plus the count of
/// records ever written (which doubles as the next sequence number).
struct Shard {
    slots: Vec<AtomicU64>,
    written: AtomicU64,
}

impl Shard {
    fn new(cap: usize) -> Shard {
        let mut slots = Vec::with_capacity(cap * RECORD_WORDS);
        slots.resize_with(cap * RECORD_WORDS, || AtomicU64::new(0));
        Shard {
            slots,
            written: AtomicU64::new(0),
        }
    }
}

/// The recorder: one single-writer ring per worker (plus one extra
/// shard for the coordinator thread), shared read-only with the dump
/// path. See the module docs for the design.
pub struct FlightRecorder {
    shards: Vec<Shard>,
    cap: usize,
    frozen: AtomicBool,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.shards.len())
            .field("cap", &self.cap)
            .field("frozen", &self.is_frozen())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `shards` independent rings of `cap` records
    /// each. Both are clamped to at least 1.
    pub fn new(shards: usize, cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        let shards = (0..shards.max(1)).map(|_| Shard::new(cap)).collect();
        FlightRecorder {
            shards,
            cap,
            frozen: AtomicBool::new(false),
        }
    }

    /// Ring capacity per shard, in records.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of writer shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Append one record to `shard`'s ring (wrapping the shard index,
    /// overwriting the oldest slot). The caller must be the shard's
    /// only writer; the hot path is then five relaxed stores and two
    /// flag loads. No-op once frozen.
    pub fn record(
        &self,
        shard: usize,
        kind: FlightKind,
        rank: u32,
        aux: u64,
        step: u64,
        wall_us: u64,
    ) {
        if self.frozen.load(Ordering::Relaxed) {
            return;
        }
        let sh = &self.shards[shard % self.shards.len()];
        let seq = sh.written.load(Ordering::Relaxed);
        let base = (seq as usize % self.cap) * RECORD_WORDS;
        sh.slots[base].store(seq, Ordering::Relaxed);
        sh.slots[base + 1].store(
            (u64::from(kind.code()) << 32) | u64::from(rank),
            Ordering::Relaxed,
        );
        sh.slots[base + 2].store(aux, Ordering::Relaxed);
        sh.slots[base + 3].store(step, Ordering::Relaxed);
        sh.slots[base + 4].store(wall_us, Ordering::Relaxed);
        sh.written.store(seq + 1, Ordering::Release);
    }

    /// Stop all recording permanently; the rings keep their final
    /// contents for [`FlightRecorder::dump`].
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    /// Whether [`FlightRecorder::freeze`] has been called.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// Decode every shard's retained tail, oldest first. Slots whose
    /// embedded sequence number does not match the expected one (a
    /// writer racing the dump mid-record) are skipped; after `freeze`
    /// plus worker teardown the decode is exact.
    pub fn dump(&self) -> FlightDump {
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, sh) in self.shards.iter().enumerate() {
            let written = sh.written.load(Ordering::Acquire);
            let first = written.saturating_sub(self.cap as u64);
            let mut records = Vec::with_capacity((written - first) as usize);
            for seq in first..written {
                let base = (seq as usize % self.cap) * RECORD_WORDS;
                if sh.slots[base].load(Ordering::Relaxed) != seq {
                    continue;
                }
                let packed = sh.slots[base + 1].load(Ordering::Relaxed);
                let Some(kind) = FlightKind::from_code((packed >> 32) as u32) else {
                    continue;
                };
                records.push(FlightRecord {
                    seq,
                    kind,
                    rank: packed as u32,
                    aux: sh.slots[base + 2].load(Ordering::Relaxed),
                    step: sh.slots[base + 3].load(Ordering::Relaxed),
                    wall_us: sh.slots[base + 4].load(Ordering::Relaxed),
                });
            }
            shards.push(ShardTail {
                shard: i,
                written,
                lost: first,
                records,
            });
        }
        FlightDump {
            cap: self.cap as u64,
            shards,
        }
    }
}

/// The retained tail of one writer shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardTail {
    /// Shard index (worker index; the last shard is the coordinator).
    pub shard: usize,
    /// Records ever written to this shard.
    pub written: u64,
    /// Records lost to ring wrap (`written - records retained`).
    pub lost: u64,
    /// The retained records, oldest first.
    pub records: Vec<FlightRecord>,
}

impl ShardTail {
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("shard", self.shard as u64);
        obj.field_u64("written", self.written);
        obj.field_u64("lost", self.lost);
        let mut arr = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            arr.push_str(&r.to_json());
        }
        arr.push(']');
        obj.field_raw("records", &arr);
        obj.finish()
    }
}

/// Frozen recorder contents: every shard's tail plus merge/filter
/// helpers for post-mortem assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightDump {
    /// Ring capacity per shard, in records.
    pub cap: u64,
    /// Per-shard tails, shard index ascending.
    pub shards: Vec<ShardTail>,
}

impl FlightDump {
    /// All retained records across shards merged into one timeline,
    /// ordered by (wall-µs, shard, seq) — deterministic for any fixed
    /// ring contents. Each entry carries its shard index.
    pub fn merged(&self) -> Vec<(usize, FlightRecord)> {
        let mut all: Vec<(usize, FlightRecord)> = Vec::new();
        for tail in &self.shards {
            all.extend(tail.records.iter().map(|r| (tail.shard, *r)));
        }
        all.sort_by_key(|(shard, r)| (r.wall_us, *shard, r.seq));
        all
    }

    /// The last `n` entries of [`FlightDump::merged`].
    pub fn merged_tail(&self, n: usize) -> Vec<(usize, FlightRecord)> {
        let mut all = self.merged();
        let keep = all.len().saturating_sub(n);
        all.drain(..keep);
        all
    }

    /// The last `k` merged records involving `rank` (as subject or as
    /// push/wake peer), oldest first.
    pub fn rank_tail(&self, rank: u32, k: usize) -> Vec<(usize, FlightRecord)> {
        let mut hits: Vec<(usize, FlightRecord)> = self
            .merged()
            .into_iter()
            .filter(|(_, r)| r.involves(rank))
            .collect();
        let keep = hits.len().saturating_sub(k);
        hits.drain(..keep);
        hits
    }

    /// Records ever written across all shards.
    pub fn total_written(&self) -> u64 {
        self.shards.iter().map(|s| s.written).sum()
    }

    /// Records lost to ring wrap across all shards.
    pub fn total_lost(&self) -> u64 {
        self.shards.iter().map(|s| s.lost).sum()
    }

    /// Render as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("cap", self.cap);
        let mut arr = String::from("[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            arr.push_str(&s.to_json());
        }
        arr.push(']');
        obj.field_raw("shards", &arr);
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_exactly_the_most_recent_cap_records() {
        let rec = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            rec.record(0, FlightKind::Wake, i as u32, i, i, 100 + i);
        }
        let dump = rec.dump();
        let tail = &dump.shards[0];
        assert_eq!(tail.written, 10);
        assert_eq!(tail.lost, 6);
        let seqs: Vec<u64> = tail.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(tail.records[0].rank, 6);
        assert_eq!(tail.records[3].wall_us, 109);
    }

    #[test]
    fn freeze_stops_recording() {
        let rec = FlightRecorder::new(2, 8);
        rec.record(0, FlightKind::IterStart, NO_RANK, 1, 0, 0);
        rec.freeze();
        rec.record(0, FlightKind::IterEnd, NO_RANK, 1, 0, 0);
        assert!(rec.is_frozen());
        let dump = rec.dump();
        assert_eq!(dump.shards[0].written, 1);
        assert_eq!(dump.shards[0].records[0].kind, FlightKind::IterStart);
        assert_eq!(dump.shards[1].written, 0);
    }

    #[test]
    fn merged_orders_by_wall_then_shard() {
        let rec = FlightRecorder::new(2, 8);
        rec.record(1, FlightKind::QuantumStart, 2, 0, 0, 50);
        rec.record(0, FlightKind::QuantumStart, 1, 0, 0, 40);
        rec.record(0, FlightKind::MailboxPush, 3, 1, 0, 60);
        let merged = rec.dump().merged();
        let order: Vec<(u64, usize)> = merged.iter().map(|(s, r)| (r.wall_us, *s)).collect();
        assert_eq!(order, vec![(40, 0), (50, 1), (60, 0)]);
    }

    #[test]
    fn rank_tail_sees_pushes_to_and_from_the_rank() {
        let rec = FlightRecorder::new(1, 16);
        rec.record(0, FlightKind::MailboxPush, 3, 1, 0, 10); // 1 -> 3
        rec.record(0, FlightKind::MailboxPush, 5, 3, 0, 20); // 3 -> 5
        rec.record(0, FlightKind::MailboxPush, 2, 0, 0, 30); // 0 -> 2
        let tail = rec.dump().rank_tail(3, 8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].1.wall_us, 10);
        assert_eq!(tail[1].1.wall_us, 20);
    }

    #[test]
    fn json_is_deterministic_and_marks_no_rank_as_null() {
        let rec = FlightRecorder::new(1, 4);
        rec.record(0, FlightKind::IterStart, NO_RANK, 7, 0, 1_000);
        rec.record(0, FlightKind::MailboxPush, 3, 1, 12, 1_010);
        let json = rec.dump().to_json();
        assert!(
            json.starts_with("{\"cap\":4,\"shards\":[{\"shard\":0"),
            "{json}"
        );
        assert!(
            json.contains("{\"seq\":0,\"kind\":\"iter_start\",\"rank\":null,\"aux\":7,\"step\":0,\"wall_us\":1000}"),
            "{json}"
        );
        assert!(
            json.contains("{\"seq\":1,\"kind\":\"mailbox_push\",\"rank\":3,\"aux\":1,\"step\":12,\"wall_us\":1010}"),
            "{json}"
        );
        assert_eq!(json, rec.dump().to_json());
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in FlightKind::ALL {
            assert_eq!(FlightKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(FlightKind::from_code(FlightKind::ALL.len() as u32), None);
    }
}
