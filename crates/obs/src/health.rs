//! Health rules over telemetry sample windows.
//!
//! A [`HealthEngine`] is fed one [`SeriesSample`](crate::series::SeriesSample)
//! per window (by the background [`Sampler`](crate::series::Sampler) or
//! by a replay tool) and evaluates a fixed set of anomaly rules against
//! the window's deltas and gauges. Each rule that crosses its boundary
//! produces a structured [`HealthEvent`] — rule id, severity, the
//! window that fired it, the offending values and a human sentence —
//! exactly once per episode: the event fires on the rising edge, stays
//! *active* while the condition holds, and re-arms when the condition
//! clears.
//!
//! The flagship rule is `stall_precursor`: an installed iteration whose
//! uncolored live ranks see zero deliveries and zero coloring progress
//! for K consecutive windows. With the default K=3 and a 250 ms sample
//! interval it fires less than a second into a wedged broadcast —
//! minutes before a production-scale watchdog (default 30 s) would.
//!
//! Events ride `RunReport.health`, are appended to `ct-postmortem-v1`
//! dumps as a precursor timeline, interleave into the `ct-series-v1`
//! JSONL export, and are stamped into campaign manifests.

use crate::json::JsonObject;
use crate::series::SeriesSample;

/// How bad a fired rule is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look; the run is still making progress.
    Info,
    /// Degradation that will hurt at scale or under load.
    Warning,
    /// The run is (or is about to be) wedged.
    Critical,
}

impl Severity {
    /// Stable lowercase name used in JSON and text renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parse the stable name back; `None` for anything else.
    pub fn parse(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// One fired health rule: what, when, how bad, and the numbers that
/// tripped it.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// Stable rule id (`stall_precursor`, `mailbox_spill_spike`, ...).
    pub rule: String,
    /// How bad it is.
    pub severity: Severity,
    /// Sample-window sequence number that fired the rule.
    pub seq: u64,
    /// Sampler-clock milliseconds (monotonic, since sampler start) of
    /// the firing window.
    pub t_ms: u64,
    /// The offending values, in rule-defined order.
    pub values: Vec<(String, u64)>,
    /// One human sentence describing the anomaly.
    pub message: String,
}

impl HealthEvent {
    /// Render as one deterministic JSON object. The line is tagged
    /// `"schema":"ct-series-v1","kind":"health"` so it can interleave
    /// with samples in the same JSONL export.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", crate::series::SCHEMA);
        obj.field_str("kind", "health");
        obj.field_str("rule", &self.rule);
        obj.field_str("severity", self.severity.name());
        obj.field_u64("seq", self.seq);
        obj.field_u64("t_ms", self.t_ms);
        let mut vals = JsonObject::new();
        for (name, v) in &self.values {
            vals.field_u64(name, *v);
        }
        obj.field_raw("values", &vals.finish());
        obj.field_str("message", &self.message);
        obj.finish()
    }
}

/// Thresholds for the rule engine. The defaults are deliberately
/// conservative: quiet on every healthy workload in the test suite,
/// loud within a second of a genuine wedge.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// `stall_precursor`: consecutive zero-progress windows (with an
    /// iteration installed and uncolored live ranks present) before
    /// firing.
    pub stall_windows: u32,
    /// `mailbox_spill_spike`: spills per second above which the window
    /// is anomalous.
    pub spill_rate: f64,
    /// `runq_saturation`: consecutive windows with run-queue depth at
    /// or above the rank count before firing.
    pub runq_windows: u32,
    /// `worker_busy_imbalance`: max/mean busy-time ratio above which
    /// the window is anomalous. Note max/mean is bounded by the worker
    /// count, so the threshold must sit below the pool size to be
    /// reachable (the default 3.0 needs four or more workers).
    pub imbalance_ratio: f64,
    /// `worker_busy_imbalance`: minimum total busy µs in the window
    /// before imbalance is judged at all (idle windows are noise).
    pub imbalance_min_busy_us: u64,
    /// `timer_cascade_storm`: cascades per second above which the
    /// window is anomalous.
    pub cascade_rate: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            stall_windows: 3,
            spill_rate: 1_000.0,
            runq_windows: 3,
            imbalance_ratio: 3.0,
            imbalance_min_busy_us: 10_000,
            cascade_rate: 1_000.0,
        }
    }
}

/// Rule ids, in evaluation order.
const RULE_STALL: &str = "stall_precursor";
const RULE_SPILL: &str = "mailbox_spill_spike";
const RULE_RUNQ: &str = "runq_saturation";
const RULE_IMBALANCE: &str = "worker_busy_imbalance";
const RULE_CASCADE: &str = "timer_cascade_storm";

/// Per-window rule evaluator with rising-edge/active/re-arm state; see
/// the module docs.
#[derive(Clone, Debug)]
pub struct HealthEngine {
    cfg: HealthConfig,
    stall_streak: u32,
    runq_streak: u32,
    active: Vec<HealthEvent>,
}

impl HealthEngine {
    /// An engine with the given thresholds and no history.
    pub fn new(cfg: HealthConfig) -> HealthEngine {
        HealthEngine {
            cfg,
            stall_streak: 0,
            runq_streak: 0,
            active: Vec::new(),
        }
    }

    /// Events currently active (fired and not yet cleared).
    pub fn active(&self) -> &[HealthEvent] {
        &self.active
    }

    fn is_active(&self, rule: &str) -> bool {
        self.active.iter().any(|e| e.rule == rule)
    }

    /// Evaluate every rule against one sample window; returns the
    /// events that fired on this window (rising edges only).
    pub fn observe(&mut self, s: &SeriesSample) -> Vec<HealthEvent> {
        let mut fired = Vec::new();

        // stall_precursor — installed iteration(s) with uncolored live
        // ranks making zero delivery and zero coloring progress for K
        // consecutive windows. `iter.active` is a count (several
        // broadcasts may be in flight under pub/sub); any installed
        // iteration arms the rule.
        let live = s.gauge("iter.live");
        let colored = s.gauge("iter.colored");
        let wedged = s.gauge("iter.active") >= 1
            && colored < live
            && s.delta("msgs.delivered") == 0
            && s.delta("coord.colored") == 0;
        if wedged {
            self.stall_streak += 1;
        } else {
            self.stall_streak = 0;
        }
        let k = self.cfg.stall_windows.max(1);
        if self.stall_streak >= k {
            if !self.is_active(RULE_STALL) {
                let span_ms = u64::from(k) * s.dt_ms;
                let e = HealthEvent {
                    rule: RULE_STALL.to_owned(),
                    severity: Severity::Critical,
                    seq: s.seq,
                    t_ms: s.t_ms,
                    values: vec![
                        ("iter.colored".to_owned(), colored),
                        ("iter.live".to_owned(), live),
                        ("windows".to_owned(), u64::from(k)),
                    ],
                    message: format!(
                        "broadcast wedged: {colored}/{live} live ranks colored with zero \
                         deliveries for {k} consecutive windows (~{span_ms} ms) — \
                         stall likely before the watchdog fires"
                    ),
                };
                self.active.push(e.clone());
                fired.push(e);
            }
        } else {
            self.active.retain(|e| e.rule != RULE_STALL);
        }

        // mailbox_spill_spike — ring overflow rate above threshold.
        let spill_rate = s.rate("mailbox.spills");
        if spill_rate > self.cfg.spill_rate {
            if !self.is_active(RULE_SPILL) {
                let e = HealthEvent {
                    rule: RULE_SPILL.to_owned(),
                    severity: Severity::Warning,
                    seq: s.seq,
                    t_ms: s.t_ms,
                    values: vec![
                        ("mailbox.spills".to_owned(), s.delta("mailbox.spills")),
                        ("rate_per_s".to_owned(), spill_rate as u64),
                    ],
                    message: format!(
                        "mailbox rings overflowing into the spill heap at \
                         {spill_rate:.0}/s — raise CT_MAILBOX_CAP or reduce fan-in"
                    ),
                };
                self.active.push(e.clone());
                fired.push(e);
            }
        } else {
            self.active.retain(|e| e.rule != RULE_SPILL);
        }

        // runq_saturation — run queue at or beyond the rank count for K
        // consecutive windows: workers are not draining what arrives.
        let depth = s.gauge("runq.depth");
        let saturated = s.ranks > 0 && depth >= s.ranks;
        if saturated {
            self.runq_streak += 1;
        } else {
            self.runq_streak = 0;
        }
        if self.runq_streak >= self.cfg.runq_windows.max(1) {
            if !self.is_active(RULE_RUNQ) {
                let e = HealthEvent {
                    rule: RULE_RUNQ.to_owned(),
                    severity: Severity::Warning,
                    seq: s.seq,
                    t_ms: s.t_ms,
                    values: vec![
                        ("runq.depth".to_owned(), depth),
                        ("ranks".to_owned(), s.ranks),
                    ],
                    message: format!(
                        "run queue saturated: depth {depth} >= {} ranks across \
                         {} consecutive windows — workers cannot keep up",
                        s.ranks, self.cfg.runq_windows
                    ),
                };
                self.active.push(e.clone());
                fired.push(e);
            }
        } else {
            self.active.retain(|e| e.rule != RULE_RUNQ);
        }

        // worker_busy_imbalance — one worker doing several times the
        // mean busy time of the pool in a non-idle window.
        let total_busy: u64 = s.worker_busy_us.iter().sum();
        let workers = s.worker_busy_us.len() as u64;
        let mut imbalanced = false;
        let mut max_busy = 0u64;
        let mut mean_busy = 0u64;
        if workers >= 2 && total_busy >= self.cfg.imbalance_min_busy_us {
            max_busy = s.worker_busy_us.iter().copied().max().unwrap_or(0);
            mean_busy = total_busy / workers;
            imbalanced =
                mean_busy > 0 && (max_busy as f64) / (mean_busy as f64) > self.cfg.imbalance_ratio;
        }
        if imbalanced {
            if !self.is_active(RULE_IMBALANCE) {
                let e = HealthEvent {
                    rule: RULE_IMBALANCE.to_owned(),
                    severity: Severity::Info,
                    seq: s.seq,
                    t_ms: s.t_ms,
                    values: vec![
                        ("max_busy_us".to_owned(), max_busy),
                        ("mean_busy_us".to_owned(), mean_busy),
                        ("workers".to_owned(), workers),
                    ],
                    message: format!(
                        "worker busy-time imbalance: hottest worker {max_busy} µs vs \
                         pool mean {mean_busy} µs this window — check shard affinity"
                    ),
                };
                self.active.push(e.clone());
                fired.push(e);
            }
        } else {
            self.active.retain(|e| e.rule != RULE_IMBALANCE);
        }

        // timer_cascade_storm — overflow-heap migrations above
        // threshold: the wheel horizon is too short for the workload.
        let cascade_rate = s.rate("timer.cascades");
        if cascade_rate > self.cfg.cascade_rate {
            if !self.is_active(RULE_CASCADE) {
                let e = HealthEvent {
                    rule: RULE_CASCADE.to_owned(),
                    severity: Severity::Warning,
                    seq: s.seq,
                    t_ms: s.t_ms,
                    values: vec![
                        ("timer.cascades".to_owned(), s.delta("timer.cascades")),
                        ("rate_per_s".to_owned(), cascade_rate as u64),
                    ],
                    message: format!(
                        "timer-wheel cascade storm: {cascade_rate:.0} overflow \
                         migrations/s — arms land beyond the wheel horizon"
                    ),
                };
                self.active.push(e.clone());
                fired.push(e);
            }
        } else {
            self.active.retain(|e| e.rule != RULE_CASCADE);
        }

        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A synthetic window with every counter/gauge zeroed and one
    /// worker; tests mutate just what a rule reads.
    fn window(seq: u64) -> SeriesSample {
        SeriesSample {
            source: "test".to_owned(),
            seq,
            t_ms: seq * 100,
            dt_ms: 100,
            workers: 1,
            ranks: 8,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            worker_busy_us: vec![0],
        }
    }

    fn wedged(seq: u64) -> SeriesSample {
        let mut s = window(seq);
        s.gauges.insert("iter.active".to_owned(), 1);
        s.gauges.insert("iter.live".to_owned(), 7);
        s.gauges.insert("iter.colored".to_owned(), 4);
        s
    }

    #[test]
    fn stall_precursor_fires_after_k_windows_and_only_once() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        assert!(eng.observe(&wedged(0)).is_empty());
        assert!(eng.observe(&wedged(1)).is_empty());
        let fired = eng.observe(&wedged(2));
        assert_eq!(fired.len(), 1);
        let e = &fired[0];
        assert_eq!(e.rule, "stall_precursor");
        assert_eq!(e.severity, Severity::Critical);
        assert_eq!(e.seq, 2);
        assert!(e.message.contains("4/7"), "{}", e.message);
        // Still wedged: active, but no re-fire.
        assert!(eng.observe(&wedged(3)).is_empty());
        assert_eq!(eng.active().len(), 1);
    }

    #[test]
    fn stall_precursor_covers_concurrent_broadcasts() {
        // Under pub/sub iter.active is a topic count; a wedge with
        // several iterations installed must still fire.
        let mut eng = HealthEngine::new(HealthConfig::default());
        let multi = |seq| {
            let mut s = window(seq);
            s.gauges.insert("iter.active".to_owned(), 4);
            s.gauges.insert("iter.live".to_owned(), 28);
            s.gauges.insert("iter.colored".to_owned(), 13);
            s
        };
        assert!(eng.observe(&multi(0)).is_empty());
        assert!(eng.observe(&multi(1)).is_empty());
        let fired = eng.observe(&multi(2));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "stall_precursor");
        assert!(fired[0].message.contains("13/28"), "{}", fired[0].message);
    }

    #[test]
    fn stall_precursor_resets_on_any_progress() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        eng.observe(&wedged(0));
        eng.observe(&wedged(1));
        // One delivery breaks the streak...
        let mut progressing = wedged(2);
        progressing.counters.insert("msgs.delivered".to_owned(), 1);
        assert!(eng.observe(&progressing).is_empty());
        // ...so two more wedged windows are still below K.
        assert!(eng.observe(&wedged(3)).is_empty());
        assert!(eng.observe(&wedged(4)).is_empty());
        assert_eq!(eng.observe(&wedged(5)).len(), 1);
    }

    #[test]
    fn stall_precursor_ignores_idle_and_completed_iterations() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        // No iteration installed.
        for seq in 0..6 {
            assert!(eng.observe(&window(seq)).is_empty());
        }
        // Iteration installed but fully colored.
        let mut done = window(6);
        done.gauges.insert("iter.active".to_owned(), 1);
        done.gauges.insert("iter.live".to_owned(), 7);
        done.gauges.insert("iter.colored".to_owned(), 7);
        for _ in 0..6 {
            assert!(eng.observe(&done).is_empty());
        }
    }

    #[test]
    fn stall_precursor_rearms_after_clearing() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        for seq in 0..3 {
            eng.observe(&wedged(seq));
        }
        assert_eq!(eng.active().len(), 1);
        // Iteration completes: active clears...
        assert!(eng.observe(&window(3)).is_empty());
        assert!(eng.active().is_empty());
        // ...and a fresh wedge fires a fresh event.
        eng.observe(&wedged(4));
        eng.observe(&wedged(5));
        assert_eq!(eng.observe(&wedged(6)).len(), 1);
    }

    #[test]
    fn spill_spike_boundary() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        // 100 spills in 100 ms = 1000/s: at the threshold, not over.
        let mut at = window(0);
        at.counters.insert("mailbox.spills".to_owned(), 100);
        assert!(eng.observe(&at).is_empty());
        // 101 spills in 100 ms = 1010/s: over.
        let mut over = window(1);
        over.counters.insert("mailbox.spills".to_owned(), 101);
        let fired = eng.observe(&over);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "mailbox_spill_spike");
        assert_eq!(fired[0].severity, Severity::Warning);
        // Quiet window clears it; the next spike re-fires.
        assert!(eng.observe(&window(2)).is_empty());
        assert!(eng.active().is_empty());
        let mut again = window(3);
        again.counters.insert("mailbox.spills".to_owned(), 500);
        assert_eq!(eng.observe(&again).len(), 1);
    }

    #[test]
    fn runq_saturation_needs_consecutive_windows() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        let mut deep = window(0);
        deep.gauges.insert("runq.depth".to_owned(), 8);
        assert!(eng.observe(&deep).is_empty());
        // A drained window resets the streak.
        assert!(eng.observe(&window(1)).is_empty());
        let mut fired = Vec::new();
        for seq in 2..5 {
            let mut s = window(seq);
            s.gauges.insert("runq.depth".to_owned(), 9);
            fired.extend(eng.observe(&s));
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "runq_saturation");
        // Depth below the rank count never counts.
        let mut eng2 = HealthEngine::new(HealthConfig::default());
        for seq in 0..6 {
            let mut s = window(seq);
            s.gauges.insert("runq.depth".to_owned(), 7);
            assert!(eng2.observe(&s).is_empty());
        }
    }

    #[test]
    fn imbalance_boundary_and_idle_guard() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        // Idle pool (below min busy): ratio is ignored.
        let mut idle = window(0);
        idle.worker_busy_us = vec![900, 0, 0, 0];
        assert!(eng.observe(&idle).is_empty());
        // Busy but balanced: max/mean = 3.0 exactly is not over.
        let mut at = window(1);
        at.worker_busy_us = vec![30_000, 10_000, 0, 0];
        assert!(eng.observe(&at).is_empty());
        // One hot worker beyond 3x the mean fires once.
        let mut over = window(2);
        over.worker_busy_us = vec![50_000, 1_000, 1_000, 1_000];
        let fired = eng.observe(&over);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "worker_busy_imbalance");
        assert_eq!(fired[0].severity, Severity::Info);
    }

    #[test]
    fn cascade_storm_boundary() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        let mut at = window(0);
        at.counters.insert("timer.cascades".to_owned(), 100);
        assert!(eng.observe(&at).is_empty());
        let mut over = window(1);
        over.counters.insert("timer.cascades".to_owned(), 200);
        let fired = eng.observe(&over);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "timer_cascade_storm");
    }

    #[test]
    fn event_json_is_deterministic_and_tagged() {
        let e = HealthEvent {
            rule: "stall_precursor".to_owned(),
            severity: Severity::Critical,
            seq: 7,
            t_ms: 1750,
            values: vec![("iter.colored".to_owned(), 4), ("iter.live".to_owned(), 7)],
            message: "broadcast wedged".to_owned(),
        };
        assert_eq!(
            e.to_json(),
            "{\"schema\":\"ct-series-v1\",\"kind\":\"health\",\
             \"rule\":\"stall_precursor\",\"severity\":\"critical\",\
             \"seq\":7,\"t_ms\":1750,\
             \"values\":{\"iter.colored\":4,\"iter.live\":7},\
             \"message\":\"broadcast wedged\"}"
        );
        assert_eq!(e.to_json(), e.to_json());
    }
}
