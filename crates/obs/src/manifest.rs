//! Run manifests: the provenance record written next to every campaign
//! CSV as `results/<name>.meta.json`.
//!
//! A result file without its seed, parameters and code revision cannot
//! be reproduced ("all our simulations are fully reproducible as we
//! keep the random generator seed of every experiment", §4) — the
//! manifest keeps that metadata attached to the data it describes.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::JsonObject;

/// Provenance of one experiment output file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunManifest {
    /// Experiment name (the CSV stem, e.g. `fig6_quick`).
    pub name: String,
    /// Protocol label(s) the experiment ran (factory labels).
    pub protocol: Option<String>,
    /// Process count, when the experiment has a single `P`.
    pub p: Option<u32>,
    /// LogP parameters, rendered as `L=..,o=..,g=..`.
    pub logp: Option<String>,
    /// Base seed driving the run(s).
    pub seed: Option<u64>,
    /// Repetitions per configuration.
    pub reps: Option<u32>,
    /// Fault-injection summary (e.g. `count=3` or `ranks=[1,2,40]`).
    pub faults: Option<String>,
    /// `git rev-parse HEAD` of the producing tree, when available.
    pub git_rev: Option<String>,
    /// Wall-clock duration of the experiment, in seconds.
    pub wall_secs: Option<f64>,
    /// Unix timestamp (seconds) the manifest was written.
    pub created_unix: Option<u64>,
    /// Free-form extra fields, name-sorted in the output.
    pub extra: BTreeMap<String, String>,
    /// Extra fields whose values are pre-rendered JSON (objects/arrays),
    /// embedded verbatim — e.g. the `analysis` block campaigns attach.
    /// Name-sorted in the output, after [`RunManifest::extra`].
    pub extra_json: BTreeMap<String, String>,
}

impl RunManifest {
    /// Start a manifest for the experiment `name`.
    pub fn new(name: impl Into<String>) -> RunManifest {
        RunManifest {
            name: name.into(),
            ..RunManifest::default()
        }
    }

    /// Set the protocol label(s).
    pub fn protocol(mut self, label: impl Into<String>) -> Self {
        self.protocol = Some(label.into());
        self
    }

    /// Set the process count.
    pub fn p(mut self, p: u32) -> Self {
        self.p = Some(p);
        self
    }

    /// Set the LogP parameters (anything `Display`able; `ct_logp::LogP`
    /// renders as `L=..,o=..,g=..`).
    pub fn logp(mut self, logp: impl ToString) -> Self {
        self.logp = Some(logp.to_string());
        self
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Set the repetition count.
    pub fn reps(mut self, reps: u32) -> Self {
        self.reps = Some(reps);
        self
    }

    /// Set the fault-injection summary.
    pub fn faults(mut self, summary: impl Into<String>) -> Self {
        self.faults = Some(summary.into());
        self
    }

    /// Set the experiment wall-clock duration.
    pub fn wall_secs(mut self, secs: f64) -> Self {
        self.wall_secs = Some(secs);
        self
    }

    /// Add one free-form field.
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.insert(key.into(), value.into());
        self
    }

    /// Add one extra field whose value is already-rendered JSON; it is
    /// embedded verbatim (not escaped as a string), so structured
    /// blocks like per-rep analysis stats stay machine-readable.
    pub fn with_extra_json(mut self, key: impl Into<String>, json: impl Into<String>) -> Self {
        self.extra_json.insert(key.into(), json.into());
        self
    }

    /// Fill `git_rev` and `created_unix` from the environment (both
    /// best-effort; missing git stays `None`) and attach the
    /// [`host_provenance`] fields, so every stamped manifest records
    /// which machine shape produced it.
    pub fn stamped(mut self) -> Self {
        self.git_rev = current_git_rev();
        self.created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .ok()
            .map(|d| d.as_secs());
        for (k, v) in host_provenance() {
            self.extra.entry(k).or_insert(v);
        }
        self
    }

    /// Render as a JSON object (fixed field order; absent fields are
    /// `null` so the schema is self-describing).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("name", &self.name);
        match &self.protocol {
            Some(v) => obj.field_str("protocol", v),
            None => obj.field_null("protocol"),
        };
        match self.p {
            Some(v) => obj.field_u64("p", u64::from(v)),
            None => obj.field_null("p"),
        };
        match &self.logp {
            Some(v) => obj.field_str("logp", v),
            None => obj.field_null("logp"),
        };
        match self.seed {
            Some(v) => obj.field_u64("seed", v),
            None => obj.field_null("seed"),
        };
        match self.reps {
            Some(v) => obj.field_u64("reps", u64::from(v)),
            None => obj.field_null("reps"),
        };
        match &self.faults {
            Some(v) => obj.field_str("faults", v),
            None => obj.field_null("faults"),
        };
        match &self.git_rev {
            Some(v) => obj.field_str("git_rev", v),
            None => obj.field_null("git_rev"),
        };
        match self.wall_secs {
            Some(v) => obj.field_f64("wall_secs", v),
            None => obj.field_null("wall_secs"),
        };
        match self.created_unix {
            Some(v) => obj.field_u64("created_unix", v),
            None => obj.field_null("created_unix"),
        };
        let mut extra = JsonObject::new();
        for (k, v) in &self.extra {
            extra.field_str(k, v);
        }
        for (k, v) in &self.extra_json {
            extra.field_raw(k, v);
        }
        obj.field_raw("extra", &extra.finish());
        obj.finish()
    }

    /// The manifest path for a given output file: same directory and
    /// stem, `.meta.json` extension (`results/fig6.csv` →
    /// `results/fig6.meta.json`).
    pub fn path_for(output: &Path) -> PathBuf {
        output.with_extension("meta.json")
    }

    /// Write the manifest next to `output` (see [`RunManifest::path_for`])
    /// and return the path written.
    pub fn write_next_to(&self, output: &Path) -> io::Result<PathBuf> {
        let path = Self::path_for(output);
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Summarize a fault mask: `"none"`, or `"k/p failed: [r0,r1,…]"` with
/// at most eight ranks listed.
pub fn summarize_fault_mask(mask: &[bool]) -> String {
    let failed: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(r, &f)| f.then_some(r))
        .collect();
    if failed.is_empty() {
        return "none".to_owned();
    }
    let shown: Vec<String> = failed.iter().take(8).map(|r| r.to_string()).collect();
    let ellipsis = if failed.len() > 8 { ",…" } else { "" };
    format!(
        "{}/{} failed: [{}{}]",
        failed.len(),
        mask.len(),
        shown.join(","),
        ellipsis
    )
}

/// Host-shape provenance: the fields that make perf baselines from
/// different machines distinguishable. Returns sorted key/value pairs:
///
/// * `host.available_parallelism` — what the OS reports (or `unknown`);
/// * `host.ct_threads` / `host.ct_mailbox_cap` — the raw environment
///   overrides, or `unset`;
/// * `host.worker_threads` — the worker-pool size those defaults
///   resolve to (`CT_THREADS` if set and positive, else available
///   parallelism, else 4 — mirroring `ct_runtime::default_threads`,
///   which cannot be called from here without a dependency cycle);
/// * `host.peak_rss_kb` — the process's high-water resident set at the
///   time of stamping ([`peak_rss_kb`]; `0` off Linux).
pub fn host_provenance() -> Vec<(String, String)> {
    let avail = std::thread::available_parallelism().ok().map(|n| n.get());
    let ct_threads = std::env::var("CT_THREADS").ok();
    let ct_mailbox = std::env::var("CT_MAILBOX_CAP").ok();
    let workers = ct_threads
        .as_deref()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .or(avail)
        .unwrap_or(4);
    vec![
        (
            "host.available_parallelism".to_owned(),
            avail.map_or_else(|| "unknown".to_owned(), |n| n.to_string()),
        ),
        (
            "host.ct_mailbox_cap".to_owned(),
            ct_mailbox.unwrap_or_else(|| "unset".to_owned()),
        ),
        (
            "host.ct_threads".to_owned(),
            ct_threads.unwrap_or_else(|| "unset".to_owned()),
        ),
        ("host.peak_rss_kb".to_owned(), peak_rss_kb().to_string()),
        ("host.worker_threads".to_owned(), workers.to_string()),
    ]
}

/// Peak resident-set size of this process in KiB: `VmHWM` from
/// `/proc/self/status` on Linux, `0` elsewhere (a recognizable "not
/// measured" sentinel rather than a platform-dependent guess). The
/// kernel's high-water mark is monotone over the process lifetime, so
/// sample it right after the workload whose footprint you want.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            return parse_vm_hwm_kb(&status).unwrap_or(0);
        }
    }
    0
}

/// Extract `VmHWM:    123456 kB` from `/proc/self/status` contents.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// `git rev-parse HEAD` of the current directory's repository, if any.
pub fn current_git_rev() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    (!rev.is_empty()).then(|| rev.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_fixed_field_order_and_nulls() {
        let m = RunManifest::new("fig6_quick")
            .protocol("lame2+opportunistic(4)")
            .p(512)
            .logp("L=2,o=1,g=1")
            .seed(42)
            .reps(10)
            .faults("count=3");
        let json = m.to_json();
        assert!(
            json.starts_with(r#"{"name":"fig6_quick","protocol":"#),
            "{json}"
        );
        assert!(json.contains(r#""p":512"#), "{json}");
        assert!(json.contains(r#""seed":42"#), "{json}");
        assert!(json.contains(r#""git_rev":null"#), "{json}");
        assert!(json.contains(r#""wall_secs":null"#), "{json}");
        assert!(json.ends_with(r#""extra":{}}"#), "{json}");
    }

    #[test]
    fn extra_fields_are_sorted() {
        let m = RunManifest::new("x")
            .with_extra("zz", "1")
            .with_extra("aa", "2");
        let json = m.to_json();
        let a = json.find("\"aa\"").unwrap();
        let z = json.find("\"zz\"").unwrap();
        assert!(a < z, "{json}");
    }

    #[test]
    fn extra_json_embeds_verbatim() {
        let m = RunManifest::new("x")
            .with_extra("note", "hi")
            .with_extra_json("analysis", r#"{"critpath":{"len":24}}"#);
        let json = m.to_json();
        assert!(
            json.contains(r#""analysis":{"critpath":{"len":24}}"#),
            "{json}"
        );
        assert!(json.contains(r#""note":"hi""#), "{json}");
    }

    #[test]
    fn manifest_path_swaps_extension() {
        assert_eq!(
            RunManifest::path_for(Path::new("results/fig6.csv")),
            PathBuf::from("results/fig6.meta.json")
        );
    }

    #[test]
    fn fault_mask_summaries() {
        assert_eq!(summarize_fault_mask(&[false, false]), "none");
        assert_eq!(
            summarize_fault_mask(&[false, true, true, false]),
            "2/4 failed: [1,2]"
        );
        let mask: Vec<bool> = (0..16).map(|r| r < 10).collect();
        let s = summarize_fault_mask(&mask);
        assert!(s.starts_with("10/16 failed: [0,1,2,3,4,5,6,7,…]"), "{s}");
    }

    #[test]
    fn stamped_fills_timestamp() {
        let m = RunManifest::new("x").stamped();
        assert!(m.created_unix.is_some());
        // git_rev is best-effort; either way to_json must not panic.
        let _ = m.to_json();
    }

    #[test]
    fn stamped_attaches_host_provenance() {
        let m = RunManifest::new("x").stamped();
        for key in [
            "host.available_parallelism",
            "host.ct_mailbox_cap",
            "host.ct_threads",
            "host.peak_rss_kb",
            "host.worker_threads",
        ] {
            assert!(m.extra.contains_key(key), "missing {key}");
        }
        // An explicit value wins over the environment-derived one.
        let m = RunManifest::new("x")
            .with_extra("host.worker_threads", "99")
            .stamped();
        assert_eq!(m.extra["host.worker_threads"], "99");
    }

    #[test]
    fn vm_hwm_parses_from_proc_status_format() {
        let status = "Name:\tct\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 88 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(123456));
        assert_eq!(parse_vm_hwm_kb("Name:\tct\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_probe_reports_nonzero_on_linux() {
        assert!(peak_rss_kb() > 0, "a running process has a resident set");
    }

    #[test]
    fn write_next_to_creates_sibling() {
        let dir = std::env::temp_dir().join("ct-obs-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("demo.csv");
        let path = RunManifest::new("demo").write_next_to(&csv).unwrap();
        assert_eq!(path, dir.join("demo.meta.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with(r#"{"name":"demo""#), "{body}");
        assert!(body.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
