//! # ct-obs — unified observability layer
//!
//! One event schema, one metrics registry and one run-manifest format
//! shared by the LogP simulator (`ct-sim`) and the threaded cluster
//! runtime (`ct-runtime`), so that a simulated broadcast and a real one
//! can be compared event-by-event and every campaign CSV carries its
//! full provenance.
//!
//! The layer is opt-in and zero-overhead when disabled: producers hoist
//! a single [`EventSink::enabled`] check out of their hot loops and the
//! default [`NullSink`] makes every run behave exactly like the
//! pre-instrumentation code path.
//!
//! * [`event`] — the [`Event`] schema (protocol events, coloring,
//!   phase spans) stamped with logical [`ct_logp::Time`] and, on the
//!   cluster runtime, wall-clock microseconds.
//! * [`sink`] — the [`EventSink`] trait plus [`NullSink`], [`VecSink`]
//!   and the streaming [`JsonlSink`].
//! * [`monitor`] — [`MonitorSink`], a streaming protocol checker that
//!   validates the event stream online against the paper's invariants
//!   (§2.1 reliability/no-duplicates, §4.3 fail-stop, LogP wire timing)
//!   and reports structured [`monitor::Violation`] records.
//! * [`metrics`] — [`MetricsRegistry`]: named counters and fixed-bucket
//!   histograms with cross-run merge. No external dependencies.
//! * [`manifest`] — [`RunManifest`], written as
//!   `results/<name>.meta.json` next to every campaign CSV.
//! * [`chrome`] — export a recorded event stream as a
//!   `chrome://tracing` / Perfetto JSON document.
//! * [`telemetry`] — [`TelemetryHub`], the lock-free sharded store of
//!   live scheduler/runtime counters behind `ct top`, `ct stats` and
//!   the `telemetry` manifest block.
//! * [`flight`] — [`FlightRecorder`], the always-on black box: bounded
//!   per-worker rings of recent scheduler/mailbox/timer events, frozen
//!   and dumped into `ct-postmortem-v1` bundles on stall or panic.
//! * [`series`] — [`Sampler`] and the `ct-series-v1` time-series ring:
//!   a background thread turning hub snapshots into per-window deltas
//!   behind `ct serve`, `ct monitor` and `ct top`.
//! * [`health`] — [`HealthEngine`], per-window anomaly rules (stall
//!   precursor, spill spike, run-queue saturation, busy imbalance,
//!   timer-cascade storm) producing structured [`HealthEvent`]s.
//! * [`http`] — [`HttpServer`], a minimal hand-rolled HTTP/1.1 server
//!   exposing `/metrics`, `/series.jsonl` and `/health` to a real
//!   Prometheus scraper.
//! * [`json`] — the tiny hand-rolled JSON writer backing all of the
//!   above (deterministic field order, no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod flight;
pub mod health;
pub mod http;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod monitor;
pub mod series;
pub mod sink;
pub mod telemetry;

pub use chrome::chrome_trace;
pub use event::{Event, EventKind};
pub use flight::{FlightDump, FlightKind, FlightRecord, FlightRecorder};
pub use health::{HealthConfig, HealthEngine, HealthEvent, Severity};
pub use http::{monitor_handler, HttpServer, Response};
pub use manifest::RunManifest;
pub use metrics::{Histogram, MetricsRegistry};
pub use monitor::{Invariant, MonitorConfig, MonitorReport, MonitorSink, Violation};
pub use series::{Sampler, SeriesRing, SeriesSample, SeriesStore};
pub use sink::{EventSink, JsonlSink, MetricsSink, NullSink, VecSink};
pub use telemetry::{TelemetryHub, TelemetrySnapshot};
